// sarn — command-line interface to the library.
//
//   sarn generate --city CD --scale 0.05 --out network.csv
//   sarn train    --network network.csv [--epochs 40] [--dim 64]
//                 --weights model.ckpt --embeddings embeddings.csv
//   sarn export   --network network.csv --embeddings embeddings.csv
//                 --out atlas.geojson
//   sarn eval     --network network.csv --embeddings embeddings.csv
//                 [--task property|spd|traj|all]
//   sarn serve    --embeddings embeddings.csv | --snapshot model.sarnsnap
//                 [--network network.csv]
//                 (newline-delimited JSON queries on stdin, see src/serve/)
//   sarn snapshot save --embeddings embeddings.csv --out model.sarnsnap
//   sarn snapshot load --in model.sarnsnap
//   sarn import-osm --in extract.osm --out network.csv
//
// Every command declares its flags in a FlagSet (common/flags.h):
// `sarn <command> --help` prints the generated usage. Networks are stored
// in the roadnet CSV format; embeddings as a headerless CSV of n rows x d
// columns.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <fstream>
#include <future>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/csv.h"
#include "common/flag_binding.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "core/sarn_model.h"
#include "core/variant_registry.h"
#include "geo/spatial_index.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/metrics_sink.h"
#include "obs/prom_export.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "plan/plan.h"
#include "roadnet/geojson.h"
#include "roadnet/io.h"
#include "roadnet/osm_import.h"
#include "roadnet/synthetic_city.h"
#include "serve/protocol.h"
#include "serve/query_engine.h"
#include "snapshot/snapshot.h"
#include "tasks/embedding_source.h"
#include "tensor/simd/simd.h"
#include "tasks/road_property_task.h"
#include "tasks/spd_task.h"
#include "tasks/traj_similarity_task.h"
#include "tensor/pca.h"
#include "traj/map_matching.h"
#include "traj/trajectory_generator.h"

namespace sarn::cli {
namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "sarn: %s\n", message.c_str());
  return 1;
}

bool EndsWith(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Binary snapshot files are recognised by extension on the reload path so
/// one "reload" op serves both formats.
constexpr char kSnapshotExtension[] = ".sarnsnap";

std::optional<tasks::IndexMetric> ParseMetric(const std::string& name) {
  if (name == "cosine") return tasks::IndexMetric::kCosine;
  if (name == "l1") return tasks::IndexMetric::kL1;
  return std::nullopt;
}

bool SaveEmbeddingsCsv(const tensor::Tensor& embeddings, const std::string& path) {
  CsvTable table;
  for (int64_t i = 0; i < embeddings.shape()[0]; ++i) {
    std::vector<std::string> row;
    for (int64_t j = 0; j < embeddings.shape()[1]; ++j) {
      row.push_back(FormatDouble(embeddings.at(i, j), 6));
    }
    table.rows.push_back(std::move(row));
  }
  return WriteCsvFile(path, table);
}

// All model-state reads go through the SarnModel::Load factory (typed
// errors); this wrapper keeps the optional-shaped call sites readable.
std::optional<tensor::Tensor> LoadEmbeddingsCsv(const std::string& path) {
  core::ModelLoadSource source;
  source.kind = core::ModelLoadSource::Kind::kEmbeddingsCsv;
  source.path = path;
  core::ModelLoadResult result = core::SarnModel::Load(source);
  if (!result.ok()) {
    SARN_LOG(Warning) << "[" << core::ModelLoadErrorName(result.error) << "] "
                      << result.message;
    return std::nullopt;
  }
  return result.embeddings;
}

/// SarnModel::Load's .sarnsnap branch. The snapshot reader sits above
/// sarn_core in the link graph, so the CLI installs this hook at startup
/// (Main); it adopts the embedded model matrix of a serving snapshot.
core::ModelLoadResult LoadSnapshotEmbeddings(const std::string& path) {
  core::ModelLoadResult result;
  snapshot::LoadedSnapshot loaded;
  snapshot::SnapshotStatus status = snapshot::LoadServingSnapshot(
      path, tasks::IndexPrecision::kFloat32, &loaded);
  if (!status.ok()) {
    result.error = status.error == snapshot::SnapshotError::kIoError
                       ? core::ModelLoadError::kFileNotFound
                       : core::ModelLoadError::kParseError;
    result.message = std::string("[") + snapshot::SnapshotErrorName(status.error) +
                     "] " + status.message;
    return result;
  }
  if (loaded.model_embeddings.empty()) {
    result.error = core::ModelLoadError::kUnsupportedFormat;
    result.message = path + " has no embedded model matrix (saved with "
                     "--include-model false)";
    return result;
  }
  result.embeddings = tensor::Tensor::FromVector(
      {loaded.meta.n, loaded.meta.d},
      std::vector<float>(loaded.model_embeddings.begin(),
                         loaded.model_embeddings.end()));
  return result;
}

std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& name : names) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

// The variant-plane flags (DESIGN.md §16), shared by `train` and
// `snapshot save --checkpoint` (the latter must recompose the checkpoint's
// variant to restore it). Names are validated against the registry so the
// error message — like the --help text — always lists exactly the set this
// binary registered.
struct VariantArgs {
  std::string encoder;
  std::string augmentation;
  std::string negatives;

  FlagBindings& Bind(FlagBindings& b) {
    const core::VariantRegistry& registry = core::VariantRegistry::Instance();
    b.String("encoder", &encoder,
             "graph encoder variant: " + JoinNames(registry.EncoderNames()) +
                 " (default gat)")
        .String("augmentation", &augmentation,
                "graph-view augmentation variant: " +
                    JoinNames(registry.AugmentationNames()) +
                    " (default spatial-importance)")
        .String("negatives", &negatives,
                "negative-sampling/loss variant: " +
                    JoinNames(registry.SamplerNames()) + " (default spatial)");
    return b;
  }

  /// Writes the non-empty names into `config`; returns an error string for
  /// unknown names, listing the registered set.
  std::optional<std::string> Apply(core::SarnConfig& config) const {
    const core::VariantRegistry& registry = core::VariantRegistry::Instance();
    if (!encoder.empty()) {
      if (!registry.HasEncoder(encoder)) {
        return "unknown --encoder \"" + encoder +
               "\" (registered: " + JoinNames(registry.EncoderNames()) + ")";
      }
      config.encoder = encoder;
    }
    if (!augmentation.empty()) {
      if (!registry.HasAugmentation(augmentation)) {
        return "unknown --augmentation \"" + augmentation +
               "\" (registered: " + JoinNames(registry.AugmentationNames()) + ")";
      }
      config.augmentation = augmentation;
    }
    if (!negatives.empty()) {
      if (!registry.HasSampler(negatives)) {
        return "unknown --negatives \"" + negatives +
               "\" (registered: " + JoinNames(registry.SamplerNames()) + ")";
      }
      config.negatives = negatives;
    }
    return std::nullopt;
  }
};

// Each command owns one Args struct: the fields are the flag targets, and
// Bindings() is the single place a flag's name, default and help live
// (declared into the FlagSet and applied back by the registry harness).

struct GenerateArgs {
  std::string city = "CD";
  double scale = 0.05;
  std::string out;
  FlagBindings Bindings() {
    FlagBindings b;
    b.String("city", &city, "city template: CD, BJ or SF")
        .Double("scale", &scale, "fraction of the full city to generate")
        .String("out", &out, "output network CSV", /*required=*/true);
    return b;
  }
};

int CmdGenerate(const GenerateArgs& args) {
  roadnet::RoadNetwork network = roadnet::GenerateSyntheticCity(
      roadnet::CityConfigByName(args.city, args.scale));
  if (!roadnet::SaveRoadNetworkCsv(network, args.out)) {
    return Fail("generate: cannot write " + args.out);
  }
  std::printf("generated %s-like network: %lld segments -> %s\n", args.city.c_str(),
              static_cast<long long>(network.num_segments()), args.out.c_str());
  return 0;
}

struct ImportOsmArgs {
  std::string in;
  std::string out;
  FlagBindings Bindings() {
    FlagBindings b;
    b.String("in", &in, "OSM XML file", /*required=*/true)
        .String("out", &out, "output network CSV", /*required=*/true);
    return b;
  }
};

int CmdImportOsm(const ImportOsmArgs& args) {
  const std::string& in = args.in;
  const std::string& out = args.out;
  roadnet::OsmImportStats stats;
  auto network = roadnet::LoadOsmFile(in, &stats);
  if (!network.has_value()) return Fail("import-osm: cannot parse " + in);
  if (!roadnet::SaveRoadNetworkCsv(*network, out)) {
    return Fail("import-osm: cannot write " + out);
  }
  std::printf("imported %lld nodes, kept %lld/%lld ways, %lld segments -> %s\n",
              static_cast<long long>(stats.nodes_parsed),
              static_cast<long long>(stats.ways_kept),
              static_cast<long long>(stats.ways_parsed),
              static_cast<long long>(stats.segments_created), out.c_str());
  return 0;
}

struct TrainArgs {
  std::string network;
  int epochs = 40;
  int64_t dim = 64;
  int64_t seed = 42;
  std::string weights;
  std::string embeddings;
  core::TrainOptions options;  // checkpoint-dir / -every / keep-last / stop-after.
  VariantArgs variant;         // --encoder / --augmentation / --negatives.
  std::string metrics_file;
  std::string trace_file;
  std::string plan;  // "" defers to the SARN_PLAN environment variable.
  FlagBindings Bindings() {
    FlagBindings b;
    b.String("network", &network, "network CSV", /*required=*/true)
        .Int("epochs", &epochs, "training epochs")
        .Int("dim", &dim, "embedding dimension")
        .Int("seed", &seed, "RNG seed");
    variant.Bind(b)
        .String("weights", &weights, "write model weights here")
        .String("embeddings", &embeddings, "write embeddings CSV here")
        .String("checkpoint-dir", &options.checkpoint_dir,
                "rolling checkpoint directory")
        .Int("checkpoint-every", &options.checkpoint_every,
             "checkpoint every N epochs")
        .Int("keep-last", &options.keep_last, "checkpoints to keep")
        .Int("stop-after", &options.max_epochs,
             "stop once this many total epochs are done")
        .String("metrics-file", &metrics_file, "append one JSON line per epoch here")
        .String("trace-file", &trace_file, "write a Chrome trace of training phases")
        .String("plan", &plan,
                "step-plan engine: off, record or replay (default: the "
                "SARN_PLAN env var, else off; bitwise identical either way)");
    return b;
  }
};

int CmdTrain(const TrainArgs& args) {
  auto network = roadnet::LoadRoadNetworkCsv(args.network);
  if (!network.has_value()) return Fail("train: cannot load " + args.network);

  core::SarnConfig config;
  config.max_epochs = args.epochs;
  int64_t dim = args.dim;
  config.embedding_dim = dim;
  config.hidden_dim = dim;
  config.projection_dim = std::max<int64_t>(8, dim / 2);
  config.seed = static_cast<uint64_t>(args.seed);
  if (auto error = args.variant.Apply(config)) return Fail("train: " + *error);
  core::FitCellSideToNetwork(config, *network);

  core::TrainOptions options = args.options;
  if (!args.plan.empty()) {
    std::optional<plan::PlanMode> mode = plan::ParsePlanMode(args.plan);
    if (!mode.has_value()) {
      return Fail("train: --plan must be off, record or replay");
    }
    options.plan_mode = mode;
  }

  std::unique_ptr<obs::JsonlMetricsSink> sink;
  const std::string& metrics_file = args.metrics_file;
  if (!metrics_file.empty()) {
    sink = std::make_unique<obs::JsonlMetricsSink>(metrics_file);
    if (!sink->ok()) return Fail("train: cannot open " + metrics_file);
    options.metrics_sink = sink.get();
  }
  const std::string& trace_file = args.trace_file;
  if (!trace_file.empty()) obs::Tracer::Instance().SetEnabled(true);

  core::SarnModel model(*network, config);
  std::printf("training SARN on %lld segments (d=%lld, epochs=%d, %s)...\n",
              static_cast<long long>(network->num_segments()),
              static_cast<long long>(dim), config.max_epochs,
              core::VariantTagString(model.variant_tag()).c_str());
  core::TrainStats stats = model.Train(options);
  if (!trace_file.empty()) {
    std::vector<obs::TraceEvent> events = obs::Tracer::Instance().Drain();
    obs::Tracer::Instance().SetEnabled(false);
    // A resumed run merges its spans into the prior lifetime's trace so one
    // file shows the whole (killed + resumed) training timeline; a fresh run
    // starts the file over.
    const bool merged = stats.resumed_from_epoch > 0
                            ? obs::Tracer::AppendChromeTrace(trace_file, events)
                            : obs::Tracer::WriteChromeTrace(trace_file, events);
    if (!merged) {
      return Fail("train: cannot write " + trace_file);
    }
    std::printf("trace -> %s (%zu events; load in chrome://tracing)\n",
                trace_file.c_str(), events.size());
    for (const auto& phase : obs::Tracer::Aggregate(events)) {
      std::printf("  %-24s %8llu spans  %8.3fs\n", phase.name.c_str(),
                  static_cast<unsigned long long>(phase.count), phase.seconds);
    }
  }
  if (sink != nullptr) {
    std::printf("metrics -> %s\n", metrics_file.c_str());
  }
  if (stats.aborted) {
    return Fail("train: aborted (" + stats.abort_reason +
                "); last checkpoint is the restart point");
  }
  if (stats.resumed_from_epoch > 0) {
    std::printf("resumed from checkpoint at epoch %d\n", stats.resumed_from_epoch);
  }
  std::printf("done: %d epochs, loss %.4f, %.1fs\n", stats.epochs_run, stats.final_loss,
              stats.seconds);

  if (!args.weights.empty()) {
    if (!model.SaveWeights(args.weights)) {
      return Fail("train: cannot write " + args.weights);
    }
    std::printf("weights -> %s\n", args.weights.c_str());
  }
  if (!args.embeddings.empty()) {
    if (!SaveEmbeddingsCsv(model.Embeddings(), args.embeddings)) {
      return Fail("train: cannot write " + args.embeddings);
    }
    std::printf("embeddings -> %s\n", args.embeddings.c_str());
  }
  return 0;
}

struct ExportArgs {
  std::string network;
  std::string embeddings;
  std::string out = "atlas.geojson";
  FlagBindings Bindings() {
    FlagBindings b;
    b.String("network", &network, "network CSV", /*required=*/true)
        .String("embeddings", &embeddings, "embeddings CSV", /*required=*/true)
        .String("out", &out, "output GeoJSON");
    return b;
  }
};

int CmdExport(const ExportArgs& args) {
  auto network = roadnet::LoadRoadNetworkCsv(args.network);
  if (!network.has_value()) return Fail("export: cannot load --network");
  auto embeddings = LoadEmbeddingsCsv(args.embeddings);
  if (!embeddings.has_value()) return Fail("export: cannot load --embeddings");
  if (embeddings->shape()[0] != network->num_segments()) {
    return Fail("export: embeddings row count != segment count");
  }
  const std::string& out = args.out;
  tensor::PcaResult pca = tensor::Pca(*embeddings, 1);
  roadnet::GeoJsonOptions options;
  for (int64_t i = 0; i < network->num_segments(); ++i) {
    options.values.push_back(pca.projections.at(i, 0));
  }
  if (!ExportGeoJson(*network, out, options)) return Fail("export: cannot write " + out);
  std::printf("wrote %s (colored by first principal component)\n", out.c_str());
  return 0;
}

struct EvalArgs {
  std::string network;
  std::string embeddings;
  std::string task = "all";
  FlagBindings Bindings() {
    FlagBindings b;
    b.String("network", &network, "network CSV", /*required=*/true)
        .String("embeddings", &embeddings, "embeddings CSV", /*required=*/true)
        .String("task", &task, "property, spd, traj or all");
    return b;
  }
};

int CmdEval(const EvalArgs& args) {
  auto network = roadnet::LoadRoadNetworkCsv(args.network);
  if (!network.has_value()) return Fail("eval: cannot load --network");
  auto embeddings = LoadEmbeddingsCsv(args.embeddings);
  if (!embeddings.has_value()) return Fail("eval: cannot load --embeddings");
  if (embeddings->shape()[0] != network->num_segments()) {
    return Fail("eval: embeddings row count != segment count");
  }
  const std::string& which = args.task;
  tasks::FrozenEmbeddingSource source(*embeddings);

  if (which == "property" || which == "all") {
    tasks::RoadPropertyTask task(*network, {});
    tasks::RoadPropertyResult r = task.Evaluate(source);
    std::printf("road property:   F1 %.2f%%  AUC %.2f%%  (%lld labeled, %lld classes)\n",
                100.0 * r.f1, 100.0 * r.auc, static_cast<long long>(r.num_labeled),
                static_cast<long long>(r.num_classes));
  }
  if (which == "spd" || which == "all") {
    tasks::SpdTask task(*network, {});
    tasks::SpdResult r = task.Evaluate(source);
    std::printf("shortest path:   MRE %.2f%%  MAE %.0f m  (%lld pairs)\n", 100.0 * r.mre,
                r.mae_meters, static_cast<long long>(r.num_test_pairs));
  }
  if (which == "traj" || which == "all") {
    traj::TrajectoryGeneratorConfig generator_config;
    generator_config.min_route_segments = 8;
    traj::TrajectoryGenerator generator(*network, generator_config);
    traj::MapMatcher matcher(*network);
    std::vector<traj::MatchedTrajectory> matched;
    for (const auto& trip : generator.Generate(200)) {
      traj::MatchedTrajectory m = matcher.Match(trip.gps);
      if (m.segments.size() >= 2) matched.push_back(traj::TruncateSegments(m, 60));
    }
    tasks::TrajectorySimilarityTask task(*network, matched, {});
    tasks::TrajSimResult r = task.Evaluate(source);
    std::printf("trajectory sim:  HR@5 %.1f%%  HR@20 %.1f%%  R5@20 %.1f%%\n",
                100.0 * r.hr5, 100.0 * r.hr20, 100.0 * r.r5_20);
  }
  return 0;
}

// Validates telemetry artifacts: a whole-file JSON value (Chrome trace) or,
// with --lines true, one JSON value per non-empty line (metrics JSONL).
struct CheckJsonArgs {
  std::string in;
  bool lines = false;
  FlagBindings Bindings() {
    FlagBindings b;
    b.String("in", &in, "file to validate", /*required=*/true)
        .Bool("lines", &lines, "validate as JSON lines instead of one document");
    return b;
  }
};

int CmdCheckJson(const CheckJsonArgs& args) {
  const std::string& in = args.in;
  std::ifstream file(in, std::ios::binary);
  if (!file.is_open()) return Fail("check-json: cannot open " + in);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  std::string text = buffer.str();
  bool lines = args.lines;
  std::string error;
  bool valid = lines ? obs::JsonLinesValid(text, &error)
                     : obs::JsonValid(text, &error);
  if (!valid) return Fail("check-json: " + in + ": " + error);
  std::printf("%s: valid %s (%zu bytes)\n", in.c_str(),
              lines ? "JSON lines" : "JSON", text.size());
  return 0;
}

// Locator grid cell side matched to the mean segment spacing so Nearest()
// probes O(1) cells. Also persisted into snapshots so a loaded locator is
// built exactly as the live one was.
double LocatorCellSideMeters(const std::vector<geo::LatLng>& midpoints) {
  geo::BoundingBox box = geo::BoundingBox::Empty();
  for (const geo::LatLng& p : midpoints) box.Extend(p);
  double area = box.WidthMeters() * box.HeightMeters();
  double spacing = midpoints.empty()
                       ? 100.0
                       : std::sqrt(area / static_cast<double>(midpoints.size()));
  return std::min(2000.0, std::max(25.0, spacing));
}

// Nearest-segment locator over the network's midpoints.
std::shared_ptr<const geo::SpatialIndex> BuildLocator(
    const roadnet::RoadNetwork& network) {
  std::vector<geo::LatLng> midpoints = network.Midpoints();
  double cell = LocatorCellSideMeters(midpoints);
  return std::make_shared<geo::SpatialIndex>(std::move(midpoints), cell);
}

// Serialises embeddings (from a CSV or a training checkpoint) plus the
// prepared index payloads into one mmap-able snapshot file (src/snapshot/).
struct SnapshotSaveArgs {
  std::string out;
  std::string embeddings;
  std::string checkpoint;
  std::string network;
  int64_t dim = 64;
  VariantArgs variant;  // Must match the checkpoint's variant tag.
  std::string metric = "cosine";
  std::string precision = "both";
  bool include_model = true;
  FlagBindings Bindings() {
    FlagBindings b;
    b.String("out", &out, "output snapshot file (.sarnsnap)", /*required=*/true)
        .String("embeddings", &embeddings, "embeddings CSV to snapshot")
        .String("checkpoint", &checkpoint, "training checkpoint to export instead")
        .String("network", &network,
                "network CSV; embeds the serve locator (required with "
                "--checkpoint)")
        .Int("dim", &dim, "embedding dimension (--checkpoint only)");
    variant.Bind(b)
        .String("metric", &metric, "similarity metric: cosine or l1")
        .String("precision", &precision, "index payloads: float32, int8 or both")
        .Bool("include-model", &include_model,
              "embed the raw [n, d] embedding matrix alongside the index");
    return b;
  }
};

int CmdSnapshotSave(const SnapshotSaveArgs& args) {
  const std::string& out = args.out;
  auto metric = ParseMetric(args.metric);
  if (!metric.has_value()) {
    return Fail("snapshot save: --metric must be cosine or l1");
  }
  if (args.embeddings.empty() == args.checkpoint.empty()) {
    return Fail("snapshot save: pass exactly one of --embeddings or --checkpoint");
  }

  std::optional<roadnet::RoadNetwork> network;
  if (!args.network.empty()) {
    network = roadnet::LoadRoadNetworkCsv(args.network);
    if (!network.has_value()) {
      return Fail("snapshot save: cannot load " + args.network);
    }
  }

  // Both sources flow through the SarnModel::Load factory; the checkpoint
  // branch rebuilds the architecture, restores the online encoder and
  // exports Embeddings().
  core::ModelLoadSource source;
  if (!args.embeddings.empty()) {
    source.kind = core::ModelLoadSource::Kind::kEmbeddingsCsv;
    source.path = args.embeddings;
  } else {
    if (!network.has_value()) {
      return Fail("snapshot save: --checkpoint needs --network (the graph the "
                  "encoder runs on)");
    }
    source.kind = core::ModelLoadSource::Kind::kTrainingCheckpoint;
    source.path = args.checkpoint;
    source.network = &*network;
    source.config.embedding_dim = args.dim;
    source.config.hidden_dim = args.dim;
    source.config.projection_dim = std::max<int64_t>(8, args.dim / 2);
    if (auto error = args.variant.Apply(source.config)) {
      return Fail("snapshot save: " + *error);
    }
    core::FitCellSideToNetwork(source.config, *network);
  }
  core::ModelLoadResult loaded = core::SarnModel::Load(source);
  if (!loaded.ok()) {
    return Fail(std::string("snapshot save: [") +
                core::ModelLoadErrorName(loaded.error) + "] " + loaded.message);
  }
  std::optional<tensor::Tensor> embeddings = loaded.embeddings;
  if (network.has_value() &&
      network->num_segments() != embeddings->shape()[0]) {
    return Fail("snapshot save: embeddings row count != segment count");
  }

  const std::string& precision = args.precision;
  const bool want_float = precision == "both" || precision == "float32";
  const bool want_int8 = precision == "both" || precision == "int8";
  if (!want_float && !want_int8) {
    return Fail("snapshot save: --precision must be float32, int8 or both");
  }
  std::optional<tasks::EmbeddingIndex> float_index;
  std::optional<tasks::EmbeddingIndex> int8_index;
  if (want_float) {
    float_index.emplace(*embeddings, *metric, tasks::IndexPrecision::kFloat32);
  }
  if (want_int8) {
    int8_index.emplace(*embeddings, *metric, tasks::IndexPrecision::kInt8);
  }

  snapshot::SnapshotContents contents;
  contents.n = embeddings->shape()[0];
  contents.d = embeddings->shape()[1];
  contents.metric = *metric;
  if (args.include_model) contents.model_embeddings = &*embeddings;
  if (float_index.has_value()) contents.float_index = &*float_index;
  if (int8_index.has_value()) contents.int8_index = &*int8_index;
  std::vector<geo::LatLng> midpoints;
  if (network.has_value()) {
    midpoints = network->Midpoints();
    contents.midpoints = &midpoints;
    contents.locator_cell_side_meters = LocatorCellSideMeters(midpoints);
  }

  snapshot::SnapshotStatus status = snapshot::SaveServingSnapshot(out, contents);
  if (!status.ok()) return Fail("snapshot save: " + status.message);
  std::error_code ec;
  const auto bytes = std::filesystem::file_size(out, ec);
  std::printf("snapshot -> %s (%lld rows x %lld dims, %s, %s%s%s, %llu bytes)\n",
              out.c_str(), static_cast<long long>(contents.n),
              static_cast<long long>(contents.d),
              args.metric.c_str(),
              want_float ? "float32" : "", want_float && want_int8 ? "+" : "",
              want_int8 ? "int8" : "",
              static_cast<unsigned long long>(ec ? 0 : bytes));
  return 0;
}

// Maps a snapshot, prints its layout and load metrics, and optionally runs
// one query — the smoke-test half of the snapshot round trip.
struct SnapshotLoadArgs {
  std::string in;
  bool quantized = false;
  bool verify_crc = true;
  int64_t query_id = -1;
  int64_t k = 10;
  FlagBindings Bindings() {
    FlagBindings b;
    b.String("in", &in, "snapshot file to map", /*required=*/true)
        .Bool("quantized", &quantized, "adopt the int8 payload instead of float32")
        .Bool("verify-crc", &verify_crc, "verify section payload CRCs while mapping")
        .Int("query-id", &query_id, "run one top-k query for this row (-1 = off)")
        .Int("k", &k, "neighbors for --query-id");
    return b;
  }
};

int CmdSnapshotLoad(const SnapshotLoadArgs& args) {
  const std::string& in = args.in;
  const tasks::IndexPrecision precision = args.quantized
                                              ? tasks::IndexPrecision::kInt8
                                              : tasks::IndexPrecision::kFloat32;
  snapshot::MappedSnapshot::Options options;
  options.verify_payload_crc = args.verify_crc;
  snapshot::LoadedSnapshot loaded;
  snapshot::SnapshotStatus status =
      snapshot::LoadServingSnapshot(in, precision, &loaded, options);
  if (!status.ok()) {
    return Fail(std::string("snapshot load: [") +
                snapshot::SnapshotErrorName(status.error) + "] " +
                status.message);
  }
  std::printf("%s: v%u.%u, %lld rows x %lld dims, %s, %zu bytes "
              "(%zu mapped zero-copy, %zu copied), %.3f ms\n",
              in.c_str(), loaded.mapping->version_major(),
              loaded.mapping->version_minor(),
              static_cast<long long>(loaded.meta.n),
              static_cast<long long>(loaded.meta.d),
              loaded.meta.metric == tasks::IndexMetric::kCosine ? "cosine" : "l1",
              loaded.mapping->file_bytes(), loaded.mapped_bytes,
              loaded.copied_bytes, loaded.load_ms);
  for (const auto& section : loaded.mapping->sections()) {
    std::printf("  %-20s %10zu bytes\n", std::string(section.name).c_str(),
                section.bytes);
  }
  const int64_t query_id = args.query_id;
  if (query_id >= 0) {
    const int k = static_cast<int>(args.k);
    for (const tasks::Neighbor& neighbor :
         loaded.index->QueryById(query_id, k)) {
      std::printf("  neighbor %lld score %.6f\n",
                  static_cast<long long>(neighbor.id), neighbor.score);
    }
  }
  return 0;
}

// The serve loop: newline-delimited JSON requests on stdin, one response
// line per request on stdout (stderr carries human-readable status), in
// input order. Query lines are admitted asynchronously so the engine can
// micro-batch them; "stats" acts as a barrier. "reload" is asynchronous:
// the new index is parsed (CSV) or mmap-validated (.sarnsnap) on a
// background thread and hot-swapped in, so in-flight and subsequent queries
// never wait on a load.
/// Background Prometheus exporter for `sarn serve --prom-file`: atomically
/// rewrites the file (tmp + rename) from a registry snapshot every interval,
/// and once more on shutdown so the final state is always published.
class PeriodicPromWriter {
 public:
  PeriodicPromWriter(std::string path, double interval_ms)
      : path_(std::move(path)), interval_ms_(interval_ms) {
    thread_ = std::thread([this] { Run(); });
  }

  ~PeriodicPromWriter() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
    Write();  // Final state, after workers have drained.
  }

 private:
  void Run() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      cv_.wait_for(lock,
                   std::chrono::duration<double, std::milli>(interval_ms_),
                   [this] { return stop_; });
      if (stop_) return;
      lock.unlock();
      Write();
      lock.lock();
    }
  }

  void Write() {
    if (!obs::WritePromFile(obs::MetricsRegistry::Default().Snapshot(), path_)) {
      SARN_LOG(Error) << "cannot write prometheus file " << path_;
    }
  }

  std::string path_;
  double interval_ms_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

struct ServeArgs {
  std::string embeddings;
  std::string snapshot;
  std::string network;
  std::string metric = "cosine";
  // threads / batch-size / batch-window-ms / cache-capacity targets. The CLI
  // default (2 workers) intentionally differs from the library default (1).
  serve::ServeOptions options = {.threads = 2};
  int64_t k = 10;
  bool quantized = false;
  int64_t trace_sample = 16;
  std::string prom_file;
  double prom_interval_ms = 1000.0;
  double slo_p99_ms = 0.0;
  double slo_window_s = 10.0;
  std::string metrics_file;
  FlagBindings Bindings() {
    FlagBindings b;
    b.String("embeddings", &embeddings, "embeddings CSV to serve")
        .String("snapshot", &snapshot,
                "mmap snapshot to serve instead of --embeddings (zero-copy "
                "cold start)")
        .String("network", &network,
                "network CSV enabling lat/lng queries (nearest segment)")
        .String("metric", &metric, "similarity metric: cosine or l1")
        .Int("threads", &options.threads, "serve worker threads (0 = synchronous)")
        .Int("k", &k, "default top-k when a query omits \"k\"")
        .Int("batch-size", &options.max_batch,
             "flush a micro-batch at this many requests")
        .Double("batch-window-ms", &options.batch_window_ms,
                "flush when the oldest waits this long")
        .Int("cache-capacity", &options.cache_capacity,
             "LRU result-cache entries (0 = off)")
        .Bool("quantized", &quantized,
              "serve an int8 quantized index (~4x smaller, recall@10 >= 0.99)")
        .Int("trace-sample", &trace_sample,
             "trace every Nth request's per-stage timeline (1 = all, 0 = off)")
        .String("prom-file", &prom_file,
                "periodically write Prometheus text exposition here")
        .Double("prom-interval-ms", &prom_interval_ms, "--prom-file rewrite period")
        .Double("slo-p99-ms", &slo_p99_ms,
                "p99 latency budget; breaches emit slo events (0 = off)")
        .Double("slo-window-s", &slo_window_s, "sliding window for the SLO watchdog")
        .String("metrics-file", &metrics_file,
                "append SLO burn events as JSON lines here");
    return b;
  }
};

int CmdServe(const ServeArgs& args) {
  const std::string& embeddings_path = args.embeddings;
  const std::string& snapshot_path = args.snapshot;
  if (embeddings_path.empty() == snapshot_path.empty()) {
    return Fail("serve: pass exactly one of --embeddings or --snapshot");
  }
  const std::string& metric_name = args.metric;
  auto parsed_metric = ParseMetric(metric_name);
  if (!parsed_metric.has_value()) {
    return Fail("serve: --metric must be cosine or l1");
  }
  const tasks::IndexMetric metric = *parsed_metric;
  const tasks::IndexPrecision precision = args.quantized
                                              ? tasks::IndexPrecision::kInt8
                                              : tasks::IndexPrecision::kFloat32;

  std::shared_ptr<const tasks::EmbeddingIndex> index;
  std::shared_ptr<const geo::SpatialIndex> locator;
  if (!snapshot_path.empty()) {
    // Cold start straight off the mapped file: the scan payload is adopted
    // zero-copy, so startup cost is validation + page faults, not parsing.
    snapshot::LoadedSnapshot loaded;
    snapshot::SnapshotStatus status =
        snapshot::LoadServingSnapshot(snapshot_path, precision, &loaded);
    if (!status.ok()) {
      return Fail(std::string("serve: [") +
                  snapshot::SnapshotErrorName(status.error) + "] " +
                  status.message);
    }
    if (loaded.meta.metric != metric) {
      return Fail("serve: snapshot was built for metric " +
                  std::string(loaded.meta.metric == tasks::IndexMetric::kCosine
                                  ? "cosine"
                                  : "l1") +
                  ", not --metric " + metric_name);
    }
    index = loaded.index;
    locator = loaded.locator;
    std::fprintf(stderr,
                 "serve: snapshot %s mapped in %.2fms (%zu bytes, %zu zero-copy)\n",
                 snapshot_path.c_str(), loaded.load_ms,
                 loaded.mapping->file_bytes(), loaded.mapped_bytes);
  } else {
    auto embeddings = LoadEmbeddingsCsv(embeddings_path);
    if (!embeddings.has_value()) {
      return Fail("serve: cannot load " + embeddings_path);
    }
    index =
        std::make_shared<tasks::EmbeddingIndex>(*embeddings, metric, precision);
  }

  const std::string& network_path = args.network;
  if (!network_path.empty()) {
    auto network = roadnet::LoadRoadNetworkCsv(network_path);
    if (!network.has_value()) return Fail("serve: cannot load " + network_path);
    if (network->num_segments() != index->size()) {
      return Fail("serve: embeddings row count != segment count");
    }
    locator = BuildLocator(*network);
  }

  serve::ServeOptions options = args.options;
  if (options.threads < 0 || options.max_batch <= 0) {
    return Fail("serve: --threads must be >= 0 and --batch-size >= 1");
  }
  if (args.trace_sample < 0) {
    return Fail("serve: --trace-sample must be >= 0 (0 disables tracing)");
  }
  options.trace_sample_every = static_cast<uint32_t>(args.trace_sample);
  const int default_k = static_cast<int>(args.k);

  // SLO burn events go to the JSONL metrics stream when one is configured.
  std::unique_ptr<obs::JsonlMetricsSink> metrics_sink;
  const std::string& metrics_file = args.metrics_file;
  if (!metrics_file.empty()) {
    metrics_sink = std::make_unique<obs::JsonlMetricsSink>(metrics_file);
    if (!metrics_sink->ok()) return Fail("serve: cannot open " + metrics_file);
  }
  std::unique_ptr<obs::SloWatchdog> watchdog;
  if (args.slo_p99_ms > 0.0) {
    obs::SloWatchdog::Options slo;
    slo.budget_p99_ms = args.slo_p99_ms;
    slo.window_seconds = args.slo_window_s;
    if (slo.window_seconds <= 0.0) {
      return Fail("serve: --slo-window-s must be > 0");
    }
    slo.tick_seconds = std::min(1.0, slo.window_seconds / 4.0);
    watchdog = std::make_unique<obs::SloWatchdog>(slo, metrics_sink.get());
  }
  std::unique_ptr<PeriodicPromWriter> prom_writer;
  if (!args.prom_file.empty()) {
    if (args.prom_interval_ms <= 0.0) {
      return Fail("serve: --prom-interval-ms must be > 0");
    }
    prom_writer =
        std::make_unique<PeriodicPromWriter>(args.prom_file, args.prom_interval_ms);
  }

  serve::QueryEngine engine(index, locator, options);
  std::fprintf(stderr,
               "serve: %lld rows x %lld dims (%s, %s, %zu bytes, %s kernels), "
               "%d threads, batch %d/%.1fms, cache %zu — reading NDJSON from stdin\n",
               static_cast<long long>(index->size()),
               static_cast<long long>(index->dim()), metric_name.c_str(),
               tasks::PrecisionName(index->precision()), index->index_bytes(),
               tensor::simd::TierName(tensor::simd::ActiveTier()),
               options.threads, options.max_batch, options.batch_window_ms,
               options.cache_capacity);

  struct Outstanding {
    uint64_t seq = 0;
    std::future<serve::ServeResponse> future;   // Query in flight.
    std::future<uint64_t> reload_future;        // Reload in flight.
    std::shared_ptr<std::string> reload_error;  // Set by the loader thread.
    std::string line;                           // Final when neither future is valid.
  };
  std::deque<Outstanding> outstanding;
  auto emit = [](const std::string& line) {
    std::fputs(line.c_str(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
  };
  auto ready = [](const auto& future) {
    return future.wait_for(std::chrono::seconds(0)) ==
           std::future_status::ready;
  };
  // Prints responses whose turn has come; `block` waits for all of them
  // (barrier before stats and at EOF).
  auto drain = [&](bool block) {
    while (!outstanding.empty()) {
      Outstanding& front = outstanding.front();
      if (front.future.valid()) {
        if (!block && !ready(front.future)) return;
        front.line = serve::FormatResponseLine(front.seq, front.future.get());
      } else if (front.reload_future.valid()) {
        if (!block && !ready(front.reload_future)) return;
        const uint64_t epoch = front.reload_future.get();
        front.line = serve::FormatReloadLine(front.seq, epoch != 0, epoch,
                                             *front.reload_error);
        if (epoch != 0) {
          std::fprintf(stderr, "serve: published snapshot epoch %llu\n",
                       static_cast<unsigned long long>(epoch));
        }
      }
      emit(front.line);
      outstanding.pop_front();
    }
  };

  std::string line;
  uint64_t seq = 0;
  while (std::getline(std::cin, line)) {
    if (Trim(line).empty()) continue;
    const uint64_t this_seq = seq++;
    serve::ParsedLine parsed = serve::ParseRequestLine(line, default_k);
    switch (parsed.op) {
      case serve::ParsedLine::Op::kQuery: {
        Outstanding entry;
        entry.seq = this_seq;
        entry.future = engine.Submit(std::move(parsed.request));
        outstanding.push_back(std::move(entry));
        break;
      }
      case serve::ParsedLine::Op::kStats:
        drain(/*block=*/true);
        emit(serve::FormatStatsLine(this_seq, engine.Stats()));
        break;
      case serve::ParsedLine::Op::kStatsz:
        drain(/*block=*/true);
        emit(serve::FormatStatszLine(this_seq, engine.TraceStats()));
        break;
      case serve::ParsedLine::Op::kReload: {
        // No barrier: the load (CSV parse or snapshot mmap + validation)
        // runs on a PublishAsync loader thread while workers keep serving
        // the old epoch; the response line is emitted in sequence order
        // once the swap (or failure) lands.
        const std::string path = parsed.reload_path;
        auto error = std::make_shared<std::string>();
        const int64_t expected_dim = index->dim();
        auto loader = [path, metric, precision, expected_dim,
                       error]() -> std::shared_ptr<const tasks::EmbeddingIndex> {
          if (EndsWith(path, kSnapshotExtension)) {
            snapshot::LoadedSnapshot loaded;
            snapshot::SnapshotStatus status =
                snapshot::LoadServingSnapshot(path, precision, &loaded);
            if (!status.ok()) {
              *error = std::string("[") +
                       snapshot::SnapshotErrorName(status.error) + "] " +
                       status.message;
              return nullptr;
            }
            if (loaded.meta.metric != metric) {
              *error = "snapshot metric does not match the serving metric";
              return nullptr;
            }
            if (loaded.meta.d != expected_dim) {
              *error = "dim mismatch: expected " + std::to_string(expected_dim);
              return nullptr;
            }
            return loaded.index;
          }
          auto reloaded = LoadEmbeddingsCsv(path);
          if (!reloaded.has_value()) {
            *error = "cannot load " + path;
            return nullptr;
          }
          if (reloaded->shape()[1] != expected_dim) {
            *error = "dim mismatch: expected " + std::to_string(expected_dim);
            return nullptr;
          }
          return std::make_shared<tasks::EmbeddingIndex>(*reloaded, metric,
                                                         precision);
        };
        Outstanding entry;
        entry.seq = this_seq;
        entry.reload_future = engine.PublishAsync(std::move(loader));
        entry.reload_error = std::move(error);
        outstanding.push_back(std::move(entry));
        break;
      }
      case serve::ParsedLine::Op::kInvalid: {
        Outstanding entry;
        entry.seq = this_seq;
        entry.line = serve::FormatErrorLine(this_seq, parsed.error);
        outstanding.push_back(std::move(entry));
        break;
      }
    }
    drain(/*block=*/false);
  }
  drain(/*block=*/true);
  serve::ServeStats stats = engine.Stats();
  std::fprintf(stderr,
               "serve: %llu requests (%llu errors), %llu batches, cache %llu/%llu "
               "hit/miss, p50 %.3fms p99 %.3fms\n",
               static_cast<unsigned long long>(stats.requests),
               static_cast<unsigned long long>(stats.errors),
               static_cast<unsigned long long>(stats.batches),
               static_cast<unsigned long long>(stats.cache_hits),
               static_cast<unsigned long long>(stats.cache_misses),
               stats.latency_p50_ms, stats.latency_p99_ms);
  return 0;
}

struct MetricsExportArgs {
  std::string out;
  std::string snapshot;
  bool quantized = false;
  FlagBindings Bindings() {
    FlagBindings b;
    b.String("out", &out, "write here instead of stdout")
        .String("snapshot", &snapshot,
                "load this .sarnsnap first so sarn.snapshot.* metrics are "
                "populated")
        .Bool("quantized", &quantized, "adopt the int8 payload of --snapshot");
    return b;
  }
};

int CmdMetricsExport(const MetricsExportArgs& args) {
  const std::string& snapshot_path = args.snapshot;
  if (!snapshot_path.empty()) {
    // Loading populates sarn.snapshot.* (loads, bytes, mapped/copied split),
    // which makes the export meaningful for a fresh process.
    const tasks::IndexPrecision precision = args.quantized
                                                ? tasks::IndexPrecision::kInt8
                                                : tasks::IndexPrecision::kFloat32;
    snapshot::LoadedSnapshot loaded;
    snapshot::SnapshotStatus status =
        snapshot::LoadServingSnapshot(snapshot_path, precision, &loaded);
    if (!status.ok()) {
      return Fail(std::string("metrics-export: [") +
                  snapshot::SnapshotErrorName(status.error) + "] " +
                  status.message);
    }
  }
  const std::string text =
      obs::PrometheusText(obs::MetricsRegistry::Default().Snapshot());
  const std::string& out_path = args.out;
  if (out_path.empty()) {
    std::fputs(text.c_str(), stdout);
    return 0;
  }
  if (!obs::WritePromFile(obs::MetricsRegistry::Default().Snapshot(), out_path)) {
    return Fail("metrics-export: cannot write " + out_path);
  }
  std::printf("metrics -> %s\n", out_path.c_str());
  return 0;
}

// ---------------------------------------------------------------------------
// Command registry: one declarative FlagSet per command.

struct Command {
  const char* name;
  const char* summary;
  void (*declare)(FlagSet&);
  int (*run)(const FlagSet&);
};

/// Table glue: declare defaults from a default-constructed Args struct, and
/// run by applying the parsed flags into a fresh one. Every flag's name,
/// default and help string lives in exactly one place — the Args::Bindings()
/// of its command.
template <typename Args, int (*Run)(const Args&)>
constexpr Command MakeCommand(const char* name, const char* summary) {
  return {name, summary,
          [](FlagSet& f) { Args().Bindings().Declare(f); },
          [](const FlagSet& f) {
            Args args;
            args.Bindings().Apply(f);
            return Run(args);
          }};
}

const Command kCommands[] = {
    MakeCommand<GenerateArgs, CmdGenerate>(
        "generate", "synthesise a city-like road network"),
    MakeCommand<ImportOsmArgs, CmdImportOsm>(
        "import-osm", "convert an OSM XML extract to the network CSV format"),
    MakeCommand<TrainArgs, CmdTrain>("train", "train SARN embeddings on a network"),
    MakeCommand<ExportArgs, CmdExport>(
        "export", "color a network GeoJSON by the embeddings' first PC"),
    MakeCommand<EvalArgs, CmdEval>(
        "eval", "evaluate embeddings on the paper's downstream tasks"),
    MakeCommand<CheckJsonArgs, CmdCheckJson>(
        "check-json", "validate a JSON / JSONL telemetry artifact"),
    MakeCommand<SnapshotSaveArgs, CmdSnapshotSave>(
        "snapshot save",
        "serialise embeddings + index payloads into one mmap-able file"),
    MakeCommand<SnapshotLoadArgs, CmdSnapshotLoad>(
        "snapshot load", "map a snapshot, print its layout and optionally query it"),
    MakeCommand<ServeArgs, CmdServe>(
        "serve", "serve batched top-k embedding queries over stdin/stdout NDJSON"),
    MakeCommand<MetricsExportArgs, CmdMetricsExport>(
        "metrics-export", "dump the process metrics registry as Prometheus text"),
};

int Usage() {
  std::printf("usage: sarn <command> [--flag value ...]\n");
  for (const Command& command : kCommands) {
    std::printf("  %-10s %s\n", command.name, command.summary);
  }
  std::printf(
      "run 'sarn <command> --help' for that command's flags\n"
      "global: --log-level debug|info|warning|error  (overrides SARN_LOG_LEVEL)\n");
  return 2;
}

int Main(int argc, char** argv) {
  InitLogLevelFromEnv();
  // The CLI links the snapshot reader, so SarnModel::Load can cover the
  // .sarnsnap branch of its unified source enum here.
  core::SarnModel::SetSnapshotLoader(&LoadSnapshotEmbeddings);
  if (argc < 2) return Usage();
  std::string name = argv[1];
  if (name == "--help" || name == "-h" || name == "help") {
    Usage();
    return 0;
  }
  // Two-word commands ("snapshot save"): join the subcommand, flags follow.
  int first_flag = 2;
  if (name == "snapshot" && argc >= 3 && argv[2][0] != '-') {
    name += std::string(" ") + argv[2];
    first_flag = 3;
  }
  for (const Command& command : kCommands) {
    if (name != command.name) continue;
    FlagSet flags(command.name, command.summary);
    command.declare(flags);
    flags.String("log-level", "", "debug, info, warning or error");
    std::string error;
    if (!flags.Parse(argc, argv, first_flag, &error)) return Fail(error);
    if (flags.help_requested()) {
      std::fputs(flags.Usage().c_str(), stdout);
      return 0;
    }
    std::string log_level = flags.GetString("log-level");
    if (!log_level.empty()) {
      std::optional<LogLevel> level = ParseLogLevel(log_level);
      if (!level.has_value()) return Fail("unknown --log-level " + log_level);
      SetLogLevel(*level);
    }
    return command.run(flags);
  }
  return Usage();
}

}  // namespace
}  // namespace sarn::cli

int main(int argc, char** argv) { return sarn::cli::Main(argc, argv); }
