// sarn — command-line interface to the library.
//
//   sarn generate --city CD --scale 0.05 --out network.csv
//   sarn train    --network network.csv [--epochs 40] [--dim 64]
//                 --weights model.ckpt --embeddings embeddings.csv
//   sarn export   --network network.csv --embeddings embeddings.csv
//                 --out atlas.geojson
//   sarn eval     --network network.csv --embeddings embeddings.csv
//                 [--task property|spd|traj|all]
//   sarn serve    --embeddings embeddings.csv | --snapshot model.sarnsnap
//                 [--network network.csv]
//                 (newline-delimited JSON queries on stdin, see src/serve/)
//   sarn snapshot save --embeddings embeddings.csv --out model.sarnsnap
//   sarn snapshot load --in model.sarnsnap
//   sarn import-osm --in extract.osm --out network.csv
//
// Every command declares its flags in a FlagSet (common/flags.h):
// `sarn <command> --help` prints the generated usage. Networks are stored
// in the roadnet CSV format; embeddings as a headerless CSV of n rows x d
// columns.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <fstream>
#include <future>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/csv.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "core/sarn_model.h"
#include "geo/spatial_index.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/metrics_sink.h"
#include "obs/prom_export.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "roadnet/geojson.h"
#include "roadnet/io.h"
#include "roadnet/osm_import.h"
#include "roadnet/synthetic_city.h"
#include "serve/protocol.h"
#include "serve/query_engine.h"
#include "snapshot/snapshot.h"
#include "tasks/embedding_source.h"
#include "tensor/simd/simd.h"
#include "tasks/road_property_task.h"
#include "tasks/spd_task.h"
#include "tasks/traj_similarity_task.h"
#include "tensor/pca.h"
#include "traj/map_matching.h"
#include "traj/trajectory_generator.h"

namespace sarn::cli {
namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "sarn: %s\n", message.c_str());
  return 1;
}

bool EndsWith(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Binary snapshot files are recognised by extension on the reload path so
/// one "reload" op serves both formats.
constexpr char kSnapshotExtension[] = ".sarnsnap";

std::optional<tasks::IndexMetric> ParseMetric(const std::string& name) {
  if (name == "cosine") return tasks::IndexMetric::kCosine;
  if (name == "l1") return tasks::IndexMetric::kL1;
  return std::nullopt;
}

bool SaveEmbeddingsCsv(const tensor::Tensor& embeddings, const std::string& path) {
  CsvTable table;
  for (int64_t i = 0; i < embeddings.shape()[0]; ++i) {
    std::vector<std::string> row;
    for (int64_t j = 0; j < embeddings.shape()[1]; ++j) {
      row.push_back(FormatDouble(embeddings.at(i, j), 6));
    }
    table.rows.push_back(std::move(row));
  }
  return WriteCsvFile(path, table);
}

std::optional<tensor::Tensor> LoadEmbeddingsCsv(const std::string& path) {
  auto table = ReadCsvFile(path, /*has_header=*/false);
  if (!table.has_value() || table->rows.empty()) return std::nullopt;
  int64_t n = static_cast<int64_t>(table->rows.size());
  int64_t d = static_cast<int64_t>(table->rows[0].size());
  std::vector<float> data;
  data.reserve(static_cast<size_t>(n * d));
  for (const auto& row : table->rows) {
    if (static_cast<int64_t>(row.size()) != d) return std::nullopt;
    for (const std::string& cell : row) {
      auto value = ParseDouble(cell);
      if (!value) return std::nullopt;
      data.push_back(static_cast<float>(*value));
    }
  }
  return tensor::Tensor::FromVector({n, d}, std::move(data));
}

int CmdGenerate(const FlagSet& flags) {
  std::string city = flags.GetString("city");
  double scale = flags.GetDouble("scale");
  std::string out = flags.GetString("out");
  roadnet::RoadNetwork network =
      roadnet::GenerateSyntheticCity(roadnet::CityConfigByName(city, scale));
  if (!roadnet::SaveRoadNetworkCsv(network, out)) {
    return Fail("generate: cannot write " + out);
  }
  std::printf("generated %s-like network: %lld segments -> %s\n", city.c_str(),
              static_cast<long long>(network.num_segments()), out.c_str());
  return 0;
}

int CmdImportOsm(const FlagSet& flags) {
  std::string in = flags.GetString("in");
  std::string out = flags.GetString("out");
  roadnet::OsmImportStats stats;
  auto network = roadnet::LoadOsmFile(in, &stats);
  if (!network.has_value()) return Fail("import-osm: cannot parse " + in);
  if (!roadnet::SaveRoadNetworkCsv(*network, out)) {
    return Fail("import-osm: cannot write " + out);
  }
  std::printf("imported %lld nodes, kept %lld/%lld ways, %lld segments -> %s\n",
              static_cast<long long>(stats.nodes_parsed),
              static_cast<long long>(stats.ways_kept),
              static_cast<long long>(stats.ways_parsed),
              static_cast<long long>(stats.segments_created), out.c_str());
  return 0;
}

int CmdTrain(const FlagSet& flags) {
  std::string network_path = flags.GetString("network");
  auto network = roadnet::LoadRoadNetworkCsv(network_path);
  if (!network.has_value()) return Fail("train: cannot load " + network_path);

  core::SarnConfig config;
  config.max_epochs = static_cast<int>(flags.GetInt("epochs"));
  int64_t dim = flags.GetInt("dim");
  config.embedding_dim = dim;
  config.hidden_dim = dim;
  config.projection_dim = std::max<int64_t>(8, dim / 2);
  config.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  core::FitCellSideToNetwork(config, *network);

  core::TrainOptions options;
  options.checkpoint_dir = flags.GetString("checkpoint-dir");
  options.checkpoint_every = static_cast<int>(flags.GetInt("checkpoint-every"));
  options.keep_last = static_cast<int>(flags.GetInt("keep-last"));
  options.max_epochs = static_cast<int>(flags.GetInt("stop-after"));

  std::unique_ptr<obs::JsonlMetricsSink> sink;
  std::string metrics_file = flags.GetString("metrics-file");
  if (!metrics_file.empty()) {
    sink = std::make_unique<obs::JsonlMetricsSink>(metrics_file);
    if (!sink->ok()) return Fail("train: cannot open " + metrics_file);
    options.metrics_sink = sink.get();
  }
  std::string trace_file = flags.GetString("trace-file");
  if (!trace_file.empty()) obs::Tracer::Instance().SetEnabled(true);

  std::printf("training SARN on %lld segments (d=%lld, epochs=%d)...\n",
              static_cast<long long>(network->num_segments()),
              static_cast<long long>(dim), config.max_epochs);
  core::SarnModel model(*network, config);
  core::TrainStats stats = model.Train(options);
  if (!trace_file.empty()) {
    std::vector<obs::TraceEvent> events = obs::Tracer::Instance().Drain();
    obs::Tracer::Instance().SetEnabled(false);
    // A resumed run merges its spans into the prior lifetime's trace so one
    // file shows the whole (killed + resumed) training timeline; a fresh run
    // starts the file over.
    const bool merged = stats.resumed_from_epoch > 0
                            ? obs::Tracer::AppendChromeTrace(trace_file, events)
                            : obs::Tracer::WriteChromeTrace(trace_file, events);
    if (!merged) {
      return Fail("train: cannot write " + trace_file);
    }
    std::printf("trace -> %s (%zu events; load in chrome://tracing)\n",
                trace_file.c_str(), events.size());
    for (const auto& phase : obs::Tracer::Aggregate(events)) {
      std::printf("  %-24s %8llu spans  %8.3fs\n", phase.name.c_str(),
                  static_cast<unsigned long long>(phase.count), phase.seconds);
    }
  }
  if (sink != nullptr) {
    std::printf("metrics -> %s\n", metrics_file.c_str());
  }
  if (stats.aborted) {
    return Fail("train: aborted (" + stats.abort_reason +
                "); last checkpoint is the restart point");
  }
  if (stats.resumed_from_epoch > 0) {
    std::printf("resumed from checkpoint at epoch %d\n", stats.resumed_from_epoch);
  }
  std::printf("done: %d epochs, loss %.4f, %.1fs\n", stats.epochs_run, stats.final_loss,
              stats.seconds);

  std::string weights = flags.GetString("weights");
  if (!weights.empty()) {
    if (!model.SaveWeights(weights)) return Fail("train: cannot write " + weights);
    std::printf("weights -> %s\n", weights.c_str());
  }
  std::string embeddings_path = flags.GetString("embeddings");
  if (!embeddings_path.empty()) {
    if (!SaveEmbeddingsCsv(model.Embeddings(), embeddings_path)) {
      return Fail("train: cannot write " + embeddings_path);
    }
    std::printf("embeddings -> %s\n", embeddings_path.c_str());
  }
  return 0;
}

int CmdExport(const FlagSet& flags) {
  auto network = roadnet::LoadRoadNetworkCsv(flags.GetString("network"));
  if (!network.has_value()) return Fail("export: cannot load --network");
  auto embeddings = LoadEmbeddingsCsv(flags.GetString("embeddings"));
  if (!embeddings.has_value()) return Fail("export: cannot load --embeddings");
  if (embeddings->shape()[0] != network->num_segments()) {
    return Fail("export: embeddings row count != segment count");
  }
  std::string out = flags.GetString("out");
  tensor::PcaResult pca = tensor::Pca(*embeddings, 1);
  roadnet::GeoJsonOptions options;
  for (int64_t i = 0; i < network->num_segments(); ++i) {
    options.values.push_back(pca.projections.at(i, 0));
  }
  if (!ExportGeoJson(*network, out, options)) return Fail("export: cannot write " + out);
  std::printf("wrote %s (colored by first principal component)\n", out.c_str());
  return 0;
}

int CmdEval(const FlagSet& flags) {
  auto network = roadnet::LoadRoadNetworkCsv(flags.GetString("network"));
  if (!network.has_value()) return Fail("eval: cannot load --network");
  auto embeddings = LoadEmbeddingsCsv(flags.GetString("embeddings"));
  if (!embeddings.has_value()) return Fail("eval: cannot load --embeddings");
  if (embeddings->shape()[0] != network->num_segments()) {
    return Fail("eval: embeddings row count != segment count");
  }
  std::string which = flags.GetString("task");
  tasks::FrozenEmbeddingSource source(*embeddings);

  if (which == "property" || which == "all") {
    tasks::RoadPropertyTask task(*network, {});
    tasks::RoadPropertyResult r = task.Evaluate(source);
    std::printf("road property:   F1 %.2f%%  AUC %.2f%%  (%lld labeled, %lld classes)\n",
                100.0 * r.f1, 100.0 * r.auc, static_cast<long long>(r.num_labeled),
                static_cast<long long>(r.num_classes));
  }
  if (which == "spd" || which == "all") {
    tasks::SpdTask task(*network, {});
    tasks::SpdResult r = task.Evaluate(source);
    std::printf("shortest path:   MRE %.2f%%  MAE %.0f m  (%lld pairs)\n", 100.0 * r.mre,
                r.mae_meters, static_cast<long long>(r.num_test_pairs));
  }
  if (which == "traj" || which == "all") {
    traj::TrajectoryGeneratorConfig generator_config;
    generator_config.min_route_segments = 8;
    traj::TrajectoryGenerator generator(*network, generator_config);
    traj::MapMatcher matcher(*network);
    std::vector<traj::MatchedTrajectory> matched;
    for (const auto& trip : generator.Generate(200)) {
      traj::MatchedTrajectory m = matcher.Match(trip.gps);
      if (m.segments.size() >= 2) matched.push_back(traj::TruncateSegments(m, 60));
    }
    tasks::TrajectorySimilarityTask task(*network, matched, {});
    tasks::TrajSimResult r = task.Evaluate(source);
    std::printf("trajectory sim:  HR@5 %.1f%%  HR@20 %.1f%%  R5@20 %.1f%%\n",
                100.0 * r.hr5, 100.0 * r.hr20, 100.0 * r.r5_20);
  }
  return 0;
}

// Validates telemetry artifacts: a whole-file JSON value (Chrome trace) or,
// with --lines true, one JSON value per non-empty line (metrics JSONL).
int CmdCheckJson(const FlagSet& flags) {
  std::string in = flags.GetString("in");
  std::ifstream file(in, std::ios::binary);
  if (!file.is_open()) return Fail("check-json: cannot open " + in);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  std::string text = buffer.str();
  bool lines = flags.GetBool("lines");
  std::string error;
  bool valid = lines ? obs::JsonLinesValid(text, &error)
                     : obs::JsonValid(text, &error);
  if (!valid) return Fail("check-json: " + in + ": " + error);
  std::printf("%s: valid %s (%zu bytes)\n", in.c_str(),
              lines ? "JSON lines" : "JSON", text.size());
  return 0;
}

// Locator grid cell side matched to the mean segment spacing so Nearest()
// probes O(1) cells. Also persisted into snapshots so a loaded locator is
// built exactly as the live one was.
double LocatorCellSideMeters(const std::vector<geo::LatLng>& midpoints) {
  geo::BoundingBox box = geo::BoundingBox::Empty();
  for (const geo::LatLng& p : midpoints) box.Extend(p);
  double area = box.WidthMeters() * box.HeightMeters();
  double spacing = midpoints.empty()
                       ? 100.0
                       : std::sqrt(area / static_cast<double>(midpoints.size()));
  return std::min(2000.0, std::max(25.0, spacing));
}

// Nearest-segment locator over the network's midpoints.
std::shared_ptr<const geo::SpatialIndex> BuildLocator(
    const roadnet::RoadNetwork& network) {
  std::vector<geo::LatLng> midpoints = network.Midpoints();
  double cell = LocatorCellSideMeters(midpoints);
  return std::make_shared<geo::SpatialIndex>(std::move(midpoints), cell);
}

// Serialises embeddings (from a CSV or a training checkpoint) plus the
// prepared index payloads into one mmap-able snapshot file (src/snapshot/).
int CmdSnapshotSave(const FlagSet& flags) {
  const std::string out = flags.GetString("out");
  auto metric = ParseMetric(flags.GetString("metric"));
  if (!metric.has_value()) {
    return Fail("snapshot save: --metric must be cosine or l1");
  }
  const std::string embeddings_path = flags.GetString("embeddings");
  const std::string checkpoint_path = flags.GetString("checkpoint");
  if (embeddings_path.empty() == checkpoint_path.empty()) {
    return Fail("snapshot save: pass exactly one of --embeddings or --checkpoint");
  }

  std::optional<roadnet::RoadNetwork> network;
  const std::string network_path = flags.GetString("network");
  if (!network_path.empty()) {
    network = roadnet::LoadRoadNetworkCsv(network_path);
    if (!network.has_value()) {
      return Fail("snapshot save: cannot load " + network_path);
    }
  }

  std::optional<tensor::Tensor> embeddings;
  if (!embeddings_path.empty()) {
    embeddings = LoadEmbeddingsCsv(embeddings_path);
    if (!embeddings.has_value()) {
      return Fail("snapshot save: cannot load " + embeddings_path);
    }
  } else {
    // Checkpoint interop: rebuild the model architecture, restore the
    // online branch from the training checkpoint, and export Embeddings().
    if (!network.has_value()) {
      return Fail("snapshot save: --checkpoint needs --network (the graph the "
                  "encoder runs on)");
    }
    core::SarnConfig config;
    const int64_t dim = flags.GetInt("dim");
    config.embedding_dim = dim;
    config.hidden_dim = dim;
    config.projection_dim = std::max<int64_t>(8, dim / 2);
    core::FitCellSideToNetwork(config, *network);
    core::SarnModel model(*network, config);
    if (!model.LoadFromTrainingCheckpoint(checkpoint_path)) {
      return Fail("snapshot save: cannot restore " + checkpoint_path +
                  " (wrong --dim?)");
    }
    embeddings = model.Embeddings();
  }
  if (network.has_value() &&
      network->num_segments() != embeddings->shape()[0]) {
    return Fail("snapshot save: embeddings row count != segment count");
  }

  const std::string precision = flags.GetString("precision");
  const bool want_float = precision == "both" || precision == "float32";
  const bool want_int8 = precision == "both" || precision == "int8";
  if (!want_float && !want_int8) {
    return Fail("snapshot save: --precision must be float32, int8 or both");
  }
  std::optional<tasks::EmbeddingIndex> float_index;
  std::optional<tasks::EmbeddingIndex> int8_index;
  if (want_float) {
    float_index.emplace(*embeddings, *metric, tasks::IndexPrecision::kFloat32);
  }
  if (want_int8) {
    int8_index.emplace(*embeddings, *metric, tasks::IndexPrecision::kInt8);
  }

  snapshot::SnapshotContents contents;
  contents.n = embeddings->shape()[0];
  contents.d = embeddings->shape()[1];
  contents.metric = *metric;
  if (flags.GetBool("include-model")) contents.model_embeddings = &*embeddings;
  if (float_index.has_value()) contents.float_index = &*float_index;
  if (int8_index.has_value()) contents.int8_index = &*int8_index;
  std::vector<geo::LatLng> midpoints;
  if (network.has_value()) {
    midpoints = network->Midpoints();
    contents.midpoints = &midpoints;
    contents.locator_cell_side_meters = LocatorCellSideMeters(midpoints);
  }

  snapshot::SnapshotStatus status = snapshot::SaveServingSnapshot(out, contents);
  if (!status.ok()) return Fail("snapshot save: " + status.message);
  std::error_code ec;
  const auto bytes = std::filesystem::file_size(out, ec);
  std::printf("snapshot -> %s (%lld rows x %lld dims, %s, %s%s%s, %llu bytes)\n",
              out.c_str(), static_cast<long long>(contents.n),
              static_cast<long long>(contents.d),
              flags.GetString("metric").c_str(),
              want_float ? "float32" : "", want_float && want_int8 ? "+" : "",
              want_int8 ? "int8" : "",
              static_cast<unsigned long long>(ec ? 0 : bytes));
  return 0;
}

// Maps a snapshot, prints its layout and load metrics, and optionally runs
// one query — the smoke-test half of the snapshot round trip.
int CmdSnapshotLoad(const FlagSet& flags) {
  const std::string in = flags.GetString("in");
  const tasks::IndexPrecision precision =
      flags.GetBool("quantized") ? tasks::IndexPrecision::kInt8
                                 : tasks::IndexPrecision::kFloat32;
  snapshot::MappedSnapshot::Options options;
  options.verify_payload_crc = flags.GetBool("verify-crc");
  snapshot::LoadedSnapshot loaded;
  snapshot::SnapshotStatus status =
      snapshot::LoadServingSnapshot(in, precision, &loaded, options);
  if (!status.ok()) {
    return Fail(std::string("snapshot load: [") +
                snapshot::SnapshotErrorName(status.error) + "] " +
                status.message);
  }
  std::printf("%s: v%u.%u, %lld rows x %lld dims, %s, %zu bytes "
              "(%zu mapped zero-copy, %zu copied), %.3f ms\n",
              in.c_str(), loaded.mapping->version_major(),
              loaded.mapping->version_minor(),
              static_cast<long long>(loaded.meta.n),
              static_cast<long long>(loaded.meta.d),
              loaded.meta.metric == tasks::IndexMetric::kCosine ? "cosine" : "l1",
              loaded.mapping->file_bytes(), loaded.mapped_bytes,
              loaded.copied_bytes, loaded.load_ms);
  for (const auto& section : loaded.mapping->sections()) {
    std::printf("  %-20s %10zu bytes\n", std::string(section.name).c_str(),
                section.bytes);
  }
  const int64_t query_id = flags.GetInt("query-id");
  if (query_id >= 0) {
    const int k = static_cast<int>(flags.GetInt("k"));
    for (const tasks::Neighbor& neighbor :
         loaded.index->QueryById(query_id, k)) {
      std::printf("  neighbor %lld score %.6f\n",
                  static_cast<long long>(neighbor.id), neighbor.score);
    }
  }
  return 0;
}

// The serve loop: newline-delimited JSON requests on stdin, one response
// line per request on stdout (stderr carries human-readable status), in
// input order. Query lines are admitted asynchronously so the engine can
// micro-batch them; "stats" acts as a barrier. "reload" is asynchronous:
// the new index is parsed (CSV) or mmap-validated (.sarnsnap) on a
// background thread and hot-swapped in, so in-flight and subsequent queries
// never wait on a load.
/// Background Prometheus exporter for `sarn serve --prom-file`: atomically
/// rewrites the file (tmp + rename) from a registry snapshot every interval,
/// and once more on shutdown so the final state is always published.
class PeriodicPromWriter {
 public:
  PeriodicPromWriter(std::string path, double interval_ms)
      : path_(std::move(path)), interval_ms_(interval_ms) {
    thread_ = std::thread([this] { Run(); });
  }

  ~PeriodicPromWriter() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
    Write();  // Final state, after workers have drained.
  }

 private:
  void Run() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      cv_.wait_for(lock,
                   std::chrono::duration<double, std::milli>(interval_ms_),
                   [this] { return stop_; });
      if (stop_) return;
      lock.unlock();
      Write();
      lock.lock();
    }
  }

  void Write() {
    if (!obs::WritePromFile(obs::MetricsRegistry::Default().Snapshot(), path_)) {
      SARN_LOG(Error) << "cannot write prometheus file " << path_;
    }
  }

  std::string path_;
  double interval_ms_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

int CmdServe(const FlagSet& flags) {
  const std::string embeddings_path = flags.GetString("embeddings");
  const std::string snapshot_path = flags.GetString("snapshot");
  if (embeddings_path.empty() == snapshot_path.empty()) {
    return Fail("serve: pass exactly one of --embeddings or --snapshot");
  }
  std::string metric_name = flags.GetString("metric");
  auto parsed_metric = ParseMetric(metric_name);
  if (!parsed_metric.has_value()) {
    return Fail("serve: --metric must be cosine or l1");
  }
  const tasks::IndexMetric metric = *parsed_metric;
  const tasks::IndexPrecision precision = flags.GetBool("quantized")
                                              ? tasks::IndexPrecision::kInt8
                                              : tasks::IndexPrecision::kFloat32;

  std::shared_ptr<const tasks::EmbeddingIndex> index;
  std::shared_ptr<const geo::SpatialIndex> locator;
  if (!snapshot_path.empty()) {
    // Cold start straight off the mapped file: the scan payload is adopted
    // zero-copy, so startup cost is validation + page faults, not parsing.
    snapshot::LoadedSnapshot loaded;
    snapshot::SnapshotStatus status =
        snapshot::LoadServingSnapshot(snapshot_path, precision, &loaded);
    if (!status.ok()) {
      return Fail(std::string("serve: [") +
                  snapshot::SnapshotErrorName(status.error) + "] " +
                  status.message);
    }
    if (loaded.meta.metric != metric) {
      return Fail("serve: snapshot was built for metric " +
                  std::string(loaded.meta.metric == tasks::IndexMetric::kCosine
                                  ? "cosine"
                                  : "l1") +
                  ", not --metric " + metric_name);
    }
    index = loaded.index;
    locator = loaded.locator;
    std::fprintf(stderr,
                 "serve: snapshot %s mapped in %.2fms (%zu bytes, %zu zero-copy)\n",
                 snapshot_path.c_str(), loaded.load_ms,
                 loaded.mapping->file_bytes(), loaded.mapped_bytes);
  } else {
    auto embeddings = LoadEmbeddingsCsv(embeddings_path);
    if (!embeddings.has_value()) {
      return Fail("serve: cannot load " + embeddings_path);
    }
    index =
        std::make_shared<tasks::EmbeddingIndex>(*embeddings, metric, precision);
  }

  std::string network_path = flags.GetString("network");
  if (!network_path.empty()) {
    auto network = roadnet::LoadRoadNetworkCsv(network_path);
    if (!network.has_value()) return Fail("serve: cannot load " + network_path);
    if (network->num_segments() != index->size()) {
      return Fail("serve: embeddings row count != segment count");
    }
    locator = BuildLocator(*network);
  }

  serve::ServeOptions options;
  options.threads = static_cast<int>(flags.GetInt("threads"));
  options.max_batch = static_cast<int>(flags.GetInt("batch-size"));
  options.batch_window_ms = flags.GetDouble("batch-window-ms");
  options.cache_capacity = static_cast<size_t>(flags.GetInt("cache-capacity"));
  if (options.threads < 0 || options.max_batch <= 0) {
    return Fail("serve: --threads must be >= 0 and --batch-size >= 1");
  }
  const int64_t trace_sample = flags.GetInt("trace-sample");
  if (trace_sample < 0) {
    return Fail("serve: --trace-sample must be >= 0 (0 disables tracing)");
  }
  options.trace_sample_every = static_cast<uint32_t>(trace_sample);
  const int default_k = static_cast<int>(flags.GetInt("k"));

  // SLO burn events go to the JSONL metrics stream when one is configured.
  std::unique_ptr<obs::JsonlMetricsSink> metrics_sink;
  const std::string metrics_file = flags.GetString("metrics-file");
  if (!metrics_file.empty()) {
    metrics_sink = std::make_unique<obs::JsonlMetricsSink>(metrics_file);
    if (!metrics_sink->ok()) return Fail("serve: cannot open " + metrics_file);
  }
  std::unique_ptr<obs::SloWatchdog> watchdog;
  const double slo_p99_ms = flags.GetDouble("slo-p99-ms");
  if (slo_p99_ms > 0.0) {
    obs::SloWatchdog::Options slo;
    slo.budget_p99_ms = slo_p99_ms;
    slo.window_seconds = flags.GetDouble("slo-window-s");
    if (slo.window_seconds <= 0.0) {
      return Fail("serve: --slo-window-s must be > 0");
    }
    slo.tick_seconds = std::min(1.0, slo.window_seconds / 4.0);
    watchdog = std::make_unique<obs::SloWatchdog>(slo, metrics_sink.get());
  }
  std::unique_ptr<PeriodicPromWriter> prom_writer;
  const std::string prom_file = flags.GetString("prom-file");
  if (!prom_file.empty()) {
    const double prom_interval_ms = flags.GetDouble("prom-interval-ms");
    if (prom_interval_ms <= 0.0) {
      return Fail("serve: --prom-interval-ms must be > 0");
    }
    prom_writer =
        std::make_unique<PeriodicPromWriter>(prom_file, prom_interval_ms);
  }

  serve::QueryEngine engine(index, locator, options);
  std::fprintf(stderr,
               "serve: %lld rows x %lld dims (%s, %s, %zu bytes, %s kernels), "
               "%d threads, batch %d/%.1fms, cache %zu — reading NDJSON from stdin\n",
               static_cast<long long>(index->size()),
               static_cast<long long>(index->dim()), metric_name.c_str(),
               tasks::PrecisionName(index->precision()), index->index_bytes(),
               tensor::simd::TierName(tensor::simd::ActiveTier()),
               options.threads, options.max_batch, options.batch_window_ms,
               options.cache_capacity);

  struct Outstanding {
    uint64_t seq = 0;
    std::future<serve::ServeResponse> future;   // Query in flight.
    std::future<uint64_t> reload_future;        // Reload in flight.
    std::shared_ptr<std::string> reload_error;  // Set by the loader thread.
    std::string line;                           // Final when neither future is valid.
  };
  std::deque<Outstanding> outstanding;
  auto emit = [](const std::string& line) {
    std::fputs(line.c_str(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
  };
  auto ready = [](const auto& future) {
    return future.wait_for(std::chrono::seconds(0)) ==
           std::future_status::ready;
  };
  // Prints responses whose turn has come; `block` waits for all of them
  // (barrier before stats and at EOF).
  auto drain = [&](bool block) {
    while (!outstanding.empty()) {
      Outstanding& front = outstanding.front();
      if (front.future.valid()) {
        if (!block && !ready(front.future)) return;
        front.line = serve::FormatResponseLine(front.seq, front.future.get());
      } else if (front.reload_future.valid()) {
        if (!block && !ready(front.reload_future)) return;
        const uint64_t epoch = front.reload_future.get();
        front.line = serve::FormatReloadLine(front.seq, epoch != 0, epoch,
                                             *front.reload_error);
        if (epoch != 0) {
          std::fprintf(stderr, "serve: published snapshot epoch %llu\n",
                       static_cast<unsigned long long>(epoch));
        }
      }
      emit(front.line);
      outstanding.pop_front();
    }
  };

  std::string line;
  uint64_t seq = 0;
  while (std::getline(std::cin, line)) {
    if (Trim(line).empty()) continue;
    const uint64_t this_seq = seq++;
    serve::ParsedLine parsed = serve::ParseRequestLine(line, default_k);
    switch (parsed.op) {
      case serve::ParsedLine::Op::kQuery: {
        Outstanding entry;
        entry.seq = this_seq;
        entry.future = engine.Submit(std::move(parsed.request));
        outstanding.push_back(std::move(entry));
        break;
      }
      case serve::ParsedLine::Op::kStats:
        drain(/*block=*/true);
        emit(serve::FormatStatsLine(this_seq, engine.Stats()));
        break;
      case serve::ParsedLine::Op::kStatsz:
        drain(/*block=*/true);
        emit(serve::FormatStatszLine(this_seq, engine.TraceStats()));
        break;
      case serve::ParsedLine::Op::kReload: {
        // No barrier: the load (CSV parse or snapshot mmap + validation)
        // runs on a PublishAsync loader thread while workers keep serving
        // the old epoch; the response line is emitted in sequence order
        // once the swap (or failure) lands.
        const std::string path = parsed.reload_path;
        auto error = std::make_shared<std::string>();
        const int64_t expected_dim = index->dim();
        auto loader = [path, metric, precision, expected_dim,
                       error]() -> std::shared_ptr<const tasks::EmbeddingIndex> {
          if (EndsWith(path, kSnapshotExtension)) {
            snapshot::LoadedSnapshot loaded;
            snapshot::SnapshotStatus status =
                snapshot::LoadServingSnapshot(path, precision, &loaded);
            if (!status.ok()) {
              *error = std::string("[") +
                       snapshot::SnapshotErrorName(status.error) + "] " +
                       status.message;
              return nullptr;
            }
            if (loaded.meta.metric != metric) {
              *error = "snapshot metric does not match the serving metric";
              return nullptr;
            }
            if (loaded.meta.d != expected_dim) {
              *error = "dim mismatch: expected " + std::to_string(expected_dim);
              return nullptr;
            }
            return loaded.index;
          }
          auto reloaded = LoadEmbeddingsCsv(path);
          if (!reloaded.has_value()) {
            *error = "cannot load " + path;
            return nullptr;
          }
          if (reloaded->shape()[1] != expected_dim) {
            *error = "dim mismatch: expected " + std::to_string(expected_dim);
            return nullptr;
          }
          return std::make_shared<tasks::EmbeddingIndex>(*reloaded, metric,
                                                         precision);
        };
        Outstanding entry;
        entry.seq = this_seq;
        entry.reload_future = engine.PublishAsync(std::move(loader));
        entry.reload_error = std::move(error);
        outstanding.push_back(std::move(entry));
        break;
      }
      case serve::ParsedLine::Op::kInvalid: {
        Outstanding entry;
        entry.seq = this_seq;
        entry.line = serve::FormatErrorLine(this_seq, parsed.error);
        outstanding.push_back(std::move(entry));
        break;
      }
    }
    drain(/*block=*/false);
  }
  drain(/*block=*/true);
  serve::ServeStats stats = engine.Stats();
  std::fprintf(stderr,
               "serve: %llu requests (%llu errors), %llu batches, cache %llu/%llu "
               "hit/miss, p50 %.3fms p99 %.3fms\n",
               static_cast<unsigned long long>(stats.requests),
               static_cast<unsigned long long>(stats.errors),
               static_cast<unsigned long long>(stats.batches),
               static_cast<unsigned long long>(stats.cache_hits),
               static_cast<unsigned long long>(stats.cache_misses),
               stats.latency_p50_ms, stats.latency_p99_ms);
  return 0;
}

int CmdMetricsExport(const FlagSet& flags) {
  const std::string snapshot_path = flags.GetString("snapshot");
  if (!snapshot_path.empty()) {
    // Loading populates sarn.snapshot.* (loads, bytes, mapped/copied split),
    // which makes the export meaningful for a fresh process.
    const tasks::IndexPrecision precision =
        flags.GetBool("quantized") ? tasks::IndexPrecision::kInt8
                                   : tasks::IndexPrecision::kFloat32;
    snapshot::LoadedSnapshot loaded;
    snapshot::SnapshotStatus status =
        snapshot::LoadServingSnapshot(snapshot_path, precision, &loaded);
    if (!status.ok()) {
      return Fail(std::string("metrics-export: [") +
                  snapshot::SnapshotErrorName(status.error) + "] " +
                  status.message);
    }
  }
  const std::string text =
      obs::PrometheusText(obs::MetricsRegistry::Default().Snapshot());
  const std::string out_path = flags.GetString("out");
  if (out_path.empty()) {
    std::fputs(text.c_str(), stdout);
    return 0;
  }
  if (!obs::WritePromFile(obs::MetricsRegistry::Default().Snapshot(), out_path)) {
    return Fail("metrics-export: cannot write " + out_path);
  }
  std::printf("metrics -> %s\n", out_path.c_str());
  return 0;
}

// ---------------------------------------------------------------------------
// Command registry: one declarative FlagSet per command.

struct Command {
  const char* name;
  const char* summary;
  void (*declare)(FlagSet&);
  int (*run)(const FlagSet&);
};

const Command kCommands[] = {
    {"generate", "synthesise a city-like road network",
     [](FlagSet& f) {
       f.String("city", "CD", "city template: CD, BJ or SF")
           .Double("scale", 0.05, "fraction of the full city to generate")
           .String("out", "", "output network CSV", /*required=*/true);
     },
     CmdGenerate},
    {"import-osm", "convert an OSM XML extract to the network CSV format",
     [](FlagSet& f) {
       f.String("in", "", "OSM XML file", /*required=*/true)
           .String("out", "", "output network CSV", /*required=*/true);
     },
     CmdImportOsm},
    {"train", "train SARN embeddings on a network",
     [](FlagSet& f) {
       f.String("network", "", "network CSV", /*required=*/true)
           .Int("epochs", 40, "training epochs")
           .Int("dim", 64, "embedding dimension")
           .Int("seed", 42, "RNG seed")
           .String("weights", "", "write model weights here")
           .String("embeddings", "", "write embeddings CSV here")
           .String("checkpoint-dir", "", "rolling checkpoint directory")
           .Int("checkpoint-every", 1, "checkpoint every N epochs")
           .Int("keep-last", 3, "checkpoints to keep")
           .Int("stop-after", -1, "stop once this many total epochs are done")
           .String("metrics-file", "", "append one JSON line per epoch here")
           .String("trace-file", "", "write a Chrome trace of training phases");
     },
     CmdTrain},
    {"export", "color a network GeoJSON by the embeddings' first PC",
     [](FlagSet& f) {
       f.String("network", "", "network CSV", /*required=*/true)
           .String("embeddings", "", "embeddings CSV", /*required=*/true)
           .String("out", "atlas.geojson", "output GeoJSON");
     },
     CmdExport},
    {"eval", "evaluate embeddings on the paper's downstream tasks",
     [](FlagSet& f) {
       f.String("network", "", "network CSV", /*required=*/true)
           .String("embeddings", "", "embeddings CSV", /*required=*/true)
           .String("task", "all", "property, spd, traj or all");
     },
     CmdEval},
    {"check-json", "validate a JSON / JSONL telemetry artifact",
     [](FlagSet& f) {
       f.String("in", "", "file to validate", /*required=*/true)
           .Bool("lines", false, "validate as JSON lines instead of one document");
     },
     CmdCheckJson},
    {"snapshot save", "serialise embeddings + index payloads into one mmap-able file",
     [](FlagSet& f) {
       f.String("out", "", "output snapshot file (.sarnsnap)", /*required=*/true)
           .String("embeddings", "", "embeddings CSV to snapshot")
           .String("checkpoint", "", "training checkpoint to export instead")
           .String("network", "",
                   "network CSV; embeds the serve locator (required with "
                   "--checkpoint)")
           .Int("dim", 64, "embedding dimension (--checkpoint only)")
           .String("metric", "cosine", "similarity metric: cosine or l1")
           .String("precision", "both", "index payloads: float32, int8 or both")
           .Bool("include-model", true,
                 "embed the raw [n, d] embedding matrix alongside the index");
     },
     CmdSnapshotSave},
    {"snapshot load", "map a snapshot, print its layout and optionally query it",
     [](FlagSet& f) {
       f.String("in", "", "snapshot file to map", /*required=*/true)
           .Bool("quantized", false, "adopt the int8 payload instead of float32")
           .Bool("verify-crc", true, "verify section payload CRCs while mapping")
           .Int("query-id", -1, "run one top-k query for this row (-1 = off)")
           .Int("k", 10, "neighbors for --query-id");
     },
     CmdSnapshotLoad},
    {"serve", "serve batched top-k embedding queries over stdin/stdout NDJSON",
     [](FlagSet& f) {
       f.String("embeddings", "", "embeddings CSV to serve")
           .String("snapshot", "",
                   "mmap snapshot to serve instead of --embeddings (zero-copy "
                   "cold start)")
           .String("network", "",
                   "network CSV enabling lat/lng queries (nearest segment)")
           .String("metric", "cosine", "similarity metric: cosine or l1")
           .Int("threads", 2, "serve worker threads (0 = synchronous)")
           .Int("k", 10, "default top-k when a query omits \"k\"")
           .Int("batch-size", 64, "flush a micro-batch at this many requests")
           .Double("batch-window-ms", 1.0, "flush when the oldest waits this long")
           .Int("cache-capacity", 4096, "LRU result-cache entries (0 = off)")
           .Bool("quantized", false,
                 "serve an int8 quantized index (~4x smaller, recall@10 >= 0.99)")
           .Int("trace-sample", 16,
                "trace every Nth request's per-stage timeline (1 = all, 0 = off)")
           .String("prom-file", "",
                   "periodically write Prometheus text exposition here")
           .Double("prom-interval-ms", 1000.0, "--prom-file rewrite period")
           .Double("slo-p99-ms", 0.0,
                   "p99 latency budget; breaches emit slo events (0 = off)")
           .Double("slo-window-s", 10.0, "sliding window for the SLO watchdog")
           .String("metrics-file", "",
                   "append SLO burn events as JSON lines here");
     },
     CmdServe},
    {"metrics-export", "dump the process metrics registry as Prometheus text",
     [](FlagSet& f) {
       f.String("out", "", "write here instead of stdout")
           .String("snapshot", "",
                   "load this .sarnsnap first so sarn.snapshot.* metrics are "
                   "populated")
           .Bool("quantized", false, "adopt the int8 payload of --snapshot");
     },
     CmdMetricsExport},
};

int Usage() {
  std::printf("usage: sarn <command> [--flag value ...]\n");
  for (const Command& command : kCommands) {
    std::printf("  %-10s %s\n", command.name, command.summary);
  }
  std::printf(
      "run 'sarn <command> --help' for that command's flags\n"
      "global: --log-level debug|info|warning|error  (overrides SARN_LOG_LEVEL)\n");
  return 2;
}

int Main(int argc, char** argv) {
  InitLogLevelFromEnv();
  if (argc < 2) return Usage();
  std::string name = argv[1];
  if (name == "--help" || name == "-h" || name == "help") {
    Usage();
    return 0;
  }
  // Two-word commands ("snapshot save"): join the subcommand, flags follow.
  int first_flag = 2;
  if (name == "snapshot" && argc >= 3 && argv[2][0] != '-') {
    name += std::string(" ") + argv[2];
    first_flag = 3;
  }
  for (const Command& command : kCommands) {
    if (name != command.name) continue;
    FlagSet flags(command.name, command.summary);
    command.declare(flags);
    flags.String("log-level", "", "debug, info, warning or error");
    std::string error;
    if (!flags.Parse(argc, argv, first_flag, &error)) return Fail(error);
    if (flags.help_requested()) {
      std::fputs(flags.Usage().c_str(), stdout);
      return 0;
    }
    std::string log_level = flags.GetString("log-level");
    if (!log_level.empty()) {
      std::optional<LogLevel> level = ParseLogLevel(log_level);
      if (!level.has_value()) return Fail("unknown --log-level " + log_level);
      SetLogLevel(*level);
    }
    return command.run(flags);
  }
  return Usage();
}

}  // namespace
}  // namespace sarn::cli

int main(int argc, char** argv) { return sarn::cli::Main(argc, argv); }
