// sarn — command-line interface to the library.
//
//   sarn generate --city CD --scale 0.05 --out network.csv
//   sarn train    --network network.csv [--epochs 40] [--dim 64]
//                 --weights model.ckpt --embeddings embeddings.csv
//   sarn export   --network network.csv --embeddings embeddings.csv
//                 --out atlas.geojson
//   sarn eval     --network network.csv --embeddings embeddings.csv
//                 [--task property|spd|traj|all]
//   sarn import-osm --in extract.osm --out network.csv
//
// Networks are stored in the roadnet CSV format; embeddings as a headerless
// CSV of n rows x d columns.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "core/sarn_model.h"
#include "obs/json.h"
#include "obs/metrics_sink.h"
#include "obs/trace.h"
#include "roadnet/geojson.h"
#include "roadnet/io.h"
#include "roadnet/osm_import.h"
#include "roadnet/synthetic_city.h"
#include "tasks/embedding_source.h"
#include "tasks/road_property_task.h"
#include "tasks/spd_task.h"
#include "tasks/traj_similarity_task.h"
#include "tensor/pca.h"
#include "traj/map_matching.h"
#include "traj/trajectory_generator.h"

namespace sarn::cli {
namespace {

using Args = std::map<std::string, std::string>;

Args ParseArgs(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i + 1 < argc; i += 2) {
    std::string key = argv[i];
    if (StartsWith(key, "--")) key = key.substr(2);
    args[key] = argv[i + 1];
  }
  return args;
}

std::string Get(const Args& args, const std::string& key,
                const std::string& fallback = "") {
  auto it = args.find(key);
  return it == args.end() ? fallback : it->second;
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "sarn: %s\n", message.c_str());
  return 1;
}

bool SaveEmbeddingsCsv(const tensor::Tensor& embeddings, const std::string& path) {
  CsvTable table;
  for (int64_t i = 0; i < embeddings.shape()[0]; ++i) {
    std::vector<std::string> row;
    for (int64_t j = 0; j < embeddings.shape()[1]; ++j) {
      row.push_back(FormatDouble(embeddings.at(i, j), 6));
    }
    table.rows.push_back(std::move(row));
  }
  return WriteCsvFile(path, table);
}

std::optional<tensor::Tensor> LoadEmbeddingsCsv(const std::string& path) {
  auto table = ReadCsvFile(path, /*has_header=*/false);
  if (!table.has_value() || table->rows.empty()) return std::nullopt;
  int64_t n = static_cast<int64_t>(table->rows.size());
  int64_t d = static_cast<int64_t>(table->rows[0].size());
  std::vector<float> data;
  data.reserve(static_cast<size_t>(n * d));
  for (const auto& row : table->rows) {
    if (static_cast<int64_t>(row.size()) != d) return std::nullopt;
    for (const std::string& cell : row) {
      auto value = ParseDouble(cell);
      if (!value) return std::nullopt;
      data.push_back(static_cast<float>(*value));
    }
  }
  return tensor::Tensor::FromVector({n, d}, std::move(data));
}

int CmdGenerate(const Args& args) {
  std::string city = Get(args, "city", "CD");
  double scale = std::atof(Get(args, "scale", "0.05").c_str());
  std::string out = Get(args, "out");
  if (out.empty()) return Fail("generate: --out is required");
  roadnet::RoadNetwork network =
      roadnet::GenerateSyntheticCity(roadnet::CityConfigByName(city, scale));
  if (!roadnet::SaveRoadNetworkCsv(network, out)) {
    return Fail("generate: cannot write " + out);
  }
  std::printf("generated %s-like network: %lld segments -> %s\n", city.c_str(),
              static_cast<long long>(network.num_segments()), out.c_str());
  return 0;
}

int CmdImportOsm(const Args& args) {
  std::string in = Get(args, "in");
  std::string out = Get(args, "out");
  if (in.empty() || out.empty()) return Fail("import-osm: --in and --out required");
  roadnet::OsmImportStats stats;
  auto network = roadnet::LoadOsmFile(in, &stats);
  if (!network.has_value()) return Fail("import-osm: cannot parse " + in);
  if (!roadnet::SaveRoadNetworkCsv(*network, out)) {
    return Fail("import-osm: cannot write " + out);
  }
  std::printf("imported %lld nodes, kept %lld/%lld ways, %lld segments -> %s\n",
              static_cast<long long>(stats.nodes_parsed),
              static_cast<long long>(stats.ways_kept),
              static_cast<long long>(stats.ways_parsed),
              static_cast<long long>(stats.segments_created), out.c_str());
  return 0;
}

int CmdTrain(const Args& args) {
  std::string network_path = Get(args, "network");
  if (network_path.empty()) return Fail("train: --network is required");
  auto network = roadnet::LoadRoadNetworkCsv(network_path);
  if (!network.has_value()) return Fail("train: cannot load " + network_path);

  core::SarnConfig config;
  config.max_epochs = std::atoi(Get(args, "epochs", "40").c_str());
  int64_t dim = std::atoll(Get(args, "dim", "64").c_str());
  config.embedding_dim = dim;
  config.hidden_dim = dim;
  config.projection_dim = std::max<int64_t>(8, dim / 2);
  config.seed = static_cast<uint64_t>(std::atoll(Get(args, "seed", "42").c_str()));
  core::FitCellSideToNetwork(config, *network);

  core::TrainOptions options;
  options.checkpoint_dir = Get(args, "checkpoint-dir");
  options.checkpoint_every = std::atoi(Get(args, "checkpoint-every", "1").c_str());
  options.keep_last = std::atoi(Get(args, "keep-last", "3").c_str());
  options.max_epochs = std::atoi(Get(args, "stop-after", "-1").c_str());

  std::unique_ptr<obs::JsonlMetricsSink> sink;
  std::string metrics_file = Get(args, "metrics-file");
  if (!metrics_file.empty()) {
    sink = std::make_unique<obs::JsonlMetricsSink>(metrics_file);
    if (!sink->ok()) return Fail("train: cannot open " + metrics_file);
    options.metrics_sink = sink.get();
  }
  std::string trace_file = Get(args, "trace-file");
  if (!trace_file.empty()) obs::Tracer::Instance().SetEnabled(true);

  std::printf("training SARN on %lld segments (d=%lld, epochs=%d)...\n",
              static_cast<long long>(network->num_segments()),
              static_cast<long long>(dim), config.max_epochs);
  core::SarnModel model(*network, config);
  core::TrainStats stats = model.Train(options);
  if (!trace_file.empty()) {
    std::vector<obs::TraceEvent> events = obs::Tracer::Instance().Drain();
    obs::Tracer::Instance().SetEnabled(false);
    if (!obs::Tracer::WriteChromeTrace(trace_file, events)) {
      return Fail("train: cannot write " + trace_file);
    }
    std::printf("trace -> %s (%zu events; load in chrome://tracing)\n",
                trace_file.c_str(), events.size());
    for (const auto& phase : obs::Tracer::Aggregate(events)) {
      std::printf("  %-24s %8llu spans  %8.3fs\n", phase.name.c_str(),
                  static_cast<unsigned long long>(phase.count), phase.seconds);
    }
  }
  if (sink != nullptr) {
    std::printf("metrics -> %s\n", metrics_file.c_str());
  }
  if (stats.aborted) {
    return Fail("train: aborted (" + stats.abort_reason +
                "); last checkpoint is the restart point");
  }
  if (stats.resumed_from_epoch > 0) {
    std::printf("resumed from checkpoint at epoch %d\n", stats.resumed_from_epoch);
  }
  std::printf("done: %d epochs, loss %.4f, %.1fs\n", stats.epochs_run, stats.final_loss,
              stats.seconds);

  std::string weights = Get(args, "weights");
  if (!weights.empty()) {
    if (!model.SaveWeights(weights)) return Fail("train: cannot write " + weights);
    std::printf("weights -> %s\n", weights.c_str());
  }
  std::string embeddings_path = Get(args, "embeddings");
  if (!embeddings_path.empty()) {
    if (!SaveEmbeddingsCsv(model.Embeddings(), embeddings_path)) {
      return Fail("train: cannot write " + embeddings_path);
    }
    std::printf("embeddings -> %s\n", embeddings_path.c_str());
  }
  return 0;
}

int CmdExport(const Args& args) {
  auto network = roadnet::LoadRoadNetworkCsv(Get(args, "network"));
  if (!network.has_value()) return Fail("export: cannot load --network");
  auto embeddings = LoadEmbeddingsCsv(Get(args, "embeddings"));
  if (!embeddings.has_value()) return Fail("export: cannot load --embeddings");
  if (embeddings->shape()[0] != network->num_segments()) {
    return Fail("export: embeddings row count != segment count");
  }
  std::string out = Get(args, "out", "atlas.geojson");
  tensor::PcaResult pca = tensor::Pca(*embeddings, 1);
  roadnet::GeoJsonOptions options;
  for (int64_t i = 0; i < network->num_segments(); ++i) {
    options.values.push_back(pca.projections.at(i, 0));
  }
  if (!ExportGeoJson(*network, out, options)) return Fail("export: cannot write " + out);
  std::printf("wrote %s (colored by first principal component)\n", out.c_str());
  return 0;
}

int CmdEval(const Args& args) {
  auto network = roadnet::LoadRoadNetworkCsv(Get(args, "network"));
  if (!network.has_value()) return Fail("eval: cannot load --network");
  auto embeddings = LoadEmbeddingsCsv(Get(args, "embeddings"));
  if (!embeddings.has_value()) return Fail("eval: cannot load --embeddings");
  if (embeddings->shape()[0] != network->num_segments()) {
    return Fail("eval: embeddings row count != segment count");
  }
  std::string which = Get(args, "task", "all");
  tasks::FrozenEmbeddingSource source(*embeddings);

  if (which == "property" || which == "all") {
    tasks::RoadPropertyTask task(*network, {});
    tasks::RoadPropertyResult r = task.Evaluate(source);
    std::printf("road property:   F1 %.2f%%  AUC %.2f%%  (%lld labeled, %lld classes)\n",
                100.0 * r.f1, 100.0 * r.auc, static_cast<long long>(r.num_labeled),
                static_cast<long long>(r.num_classes));
  }
  if (which == "spd" || which == "all") {
    tasks::SpdTask task(*network, {});
    tasks::SpdResult r = task.Evaluate(source);
    std::printf("shortest path:   MRE %.2f%%  MAE %.0f m  (%lld pairs)\n", 100.0 * r.mre,
                r.mae_meters, static_cast<long long>(r.num_test_pairs));
  }
  if (which == "traj" || which == "all") {
    traj::TrajectoryGeneratorConfig generator_config;
    generator_config.min_route_segments = 8;
    traj::TrajectoryGenerator generator(*network, generator_config);
    traj::MapMatcher matcher(*network);
    std::vector<traj::MatchedTrajectory> matched;
    for (const auto& trip : generator.Generate(200)) {
      traj::MatchedTrajectory m = matcher.Match(trip.gps);
      if (m.segments.size() >= 2) matched.push_back(traj::TruncateSegments(m, 60));
    }
    tasks::TrajectorySimilarityTask task(*network, matched, {});
    tasks::TrajSimResult r = task.Evaluate(source);
    std::printf("trajectory sim:  HR@5 %.1f%%  HR@20 %.1f%%  R5@20 %.1f%%\n",
                100.0 * r.hr5, 100.0 * r.hr20, 100.0 * r.r5_20);
  }
  return 0;
}

// Validates telemetry artifacts: a whole-file JSON value (Chrome trace) or,
// with --lines true, one JSON value per non-empty line (metrics JSONL).
int CmdCheckJson(const Args& args) {
  std::string in = Get(args, "in");
  if (in.empty()) return Fail("check-json: --in is required");
  std::ifstream file(in, std::ios::binary);
  if (!file.is_open()) return Fail("check-json: cannot open " + in);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  std::string text = buffer.str();
  bool lines = Get(args, "lines", "false") == "true";
  std::string error;
  bool valid = lines ? obs::JsonLinesValid(text, &error)
                     : obs::JsonValid(text, &error);
  if (!valid) return Fail("check-json: " + in + ": " + error);
  std::printf("%s: valid %s (%zu bytes)\n", in.c_str(),
              lines ? "JSON lines" : "JSON", text.size());
  return 0;
}

int Usage() {
  std::printf(
      "usage: sarn <command> [--key value ...]\n"
      "  generate   --city CD|BJ|SF --scale 0.05 --out net.csv\n"
      "  import-osm --in extract.osm --out net.csv\n"
      "  train      --network net.csv [--epochs N] [--dim D] [--seed S]\n"
      "             [--weights model.ckpt] [--embeddings emb.csv]\n"
      "             [--checkpoint-dir DIR] [--checkpoint-every N] [--keep-last K]\n"
      "             [--stop-after E]  (stop once E total epochs done; resume later)\n"
      "             [--metrics-file run.jsonl]  (one JSON line per epoch)\n"
      "             [--trace-file trace.json]   (Chrome trace of training phases)\n"
      "  export     --network net.csv --embeddings emb.csv --out atlas.geojson\n"
      "  eval       --network net.csv --embeddings emb.csv [--task property|spd|traj|all]\n"
      "  check-json --in file [--lines true]  (validate JSON / JSONL telemetry)\n"
      "global: --log-level debug|info|warning|error  (overrides SARN_LOG_LEVEL)\n");
  return 2;
}

int Main(int argc, char** argv) {
  InitLogLevelFromEnv();
  if (argc < 2) return Usage();
  std::string command = argv[1];
  Args args = ParseArgs(argc, argv, 2);
  std::string log_level = Get(args, "log-level");
  if (!log_level.empty()) {
    std::optional<LogLevel> level = ParseLogLevel(log_level);
    if (!level.has_value()) return Fail("unknown --log-level " + log_level);
    SetLogLevel(*level);
  }
  if (command == "generate") return CmdGenerate(args);
  if (command == "import-osm") return CmdImportOsm(args);
  if (command == "train") return CmdTrain(args);
  if (command == "export") return CmdExport(args);
  if (command == "eval") return CmdEval(args);
  if (command == "check-json") return CmdCheckJson(args);
  return Usage();
}

}  // namespace
}  // namespace sarn::cli

int main(int argc, char** argv) { return sarn::cli::Main(argc, argv); }
