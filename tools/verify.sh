#!/usr/bin/env bash
# Repo verification:
#   1. tier-1: full Release build + the whole ctest suite;
#   2. the checkpoint/resume suite (ctest -L checkpoint) run on its own, so a
#      resume-determinism or corrupt-file-handling regression is reported by
#      name even when something earlier in the suite also fails;
#   3. the concurrency-sensitive tests (parallel runtime, matmul kernels,
#      GAT fusion) plus the checkpoint suite rebuilt under ThreadSanitizer,
#      so a pool regression or a race in resumed training shows up as a
#      reported race instead of a rare flake.
#
# Usage: tools/verify.sh [--tsan-only|--no-tsan]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc)"
mode="${1:-all}"

if [[ "$mode" != "--tsan-only" ]]; then
  cmake -B build -S . > /dev/null
  cmake --build build -j"$jobs"
  (cd build && ctest --output-on-failure -j"$jobs")
  # Fault-injection + bitwise resume-determinism tests, isolated for clarity.
  (cd build && ctest --output-on-failure -L checkpoint)
fi

if [[ "$mode" != "--no-tsan" ]]; then
  cmake -B build-tsan -S . -DSARN_SANITIZE=thread > /dev/null
  cmake --build build-tsan -j"$jobs" \
    --target parallel_test ops_test nn_gat_test serialization_test sarn_model_test
  (cd build-tsan && ctest --output-on-failure \
    -R '^(parallel_test|ops_test|nn_gat_test|serialization_test|sarn_model_test)$')
fi

echo "verify: OK"
