#!/usr/bin/env bash
# Repo verification:
#   1. tier-1: full Release build + the whole ctest suite;
#   2. the checkpoint/resume suite (ctest -L checkpoint) run on its own, so a
#      resume-determinism or corrupt-file-handling regression is reported by
#      name even when something earlier in the suite also fails;
#   3. the observability suite (ctest -L obs: metrics math, request-trace
#      ring, Prometheus emitter, trace export, sink continuity) plus a
#      telemetry smoke run of the CLI: 2 training epochs with
#      --metrics-file/--trace-file, then check-json on both artifacts;
#   4. the query-serving suite (ctest -L serve: batch index equivalence,
#      engine hot-swap, NDJSON protocol, CLI flags) plus a serve smoke: three
#      NDJSON queries and a statsz introspection line piped through
#      `sarn serve` (with --prom-file exposition written and grepped), output
#      validated with check-json, run once at float32 and once with
#      --quantized, plus a `sarn metrics-export` Prometheus smoke;
#   5. the SIMD suite (ctest -L simd: scalar-vs-vector bitwise identity,
#      int8 kernel exactness, quantized recall@10 gate) in the default build,
#      then again in a -DSARN_NO_SIMD=ON build (build-nosimd) to prove the
#      scalar fallback configuration stays green on its own;
#   6. the concurrency-sensitive tests (parallel runtime, matmul kernels,
#      GAT fusion, buffer-pool acquire/release, metrics registry, the
#      request-trace seqlock ring, serve engine hot-swap, SIMD kernels) plus
#      the checkpoint suite rebuilt under ThreadSanitizer, so a pool
#      regression, a race in resumed training, a race on a telemetry
#      instrument, a torn trace record, or a torn snapshot swap shows up as a
#      reported race instead of a rare flake;
#   7. a leak gate: the storage-pool, SIMD-kernel and quantized-index suites
#      and a short CLI training run rebuilt under AddressSanitizer
#      (LeakSanitizer on by default), so a tensor buffer, tape closure or
#      quantized snapshot that never returns to the pool fails verification
#      instead of slowly growing memory;
#   8. the mmap snapshot suite (ctest -L snapshot: corruption fuzz typed-error
#      sweep, round-trip bitwise identity, golden v1 layout pin) plus a CLI
#      smoke (snapshot save -> load -> serve --snapshot), with the corruption
#      fuzz additionally rebuilt under ASan (a mutated arena must produce a
#      typed error, never an out-of-bounds read) and the concurrent mmap
#      hot-swap round trip under TSan;
#   9. the step-plan suite (ctest -L plan: replay-vs-dynamic bitwise pins at
#      1 and 4 threads, kill+resume, the invalidation matrix, compiled-kernel
#      fusion identity) plus a CLI smoke proving `--plan replay` writes
#      byte-identical embeddings to the dynamic tape; plan_test also rides
#      the TSan and ASan rebuilds so a race in the wavefront executor or a
#      leaked arena slot fails verification;
#  10. the pluggable encoder/augmentation plane (ctest -L encoder: variant
#      registry round-trip, pre-refactor golden-trace bitwise pin, PlanKey
#      variant identity, checkpoint variant-tag compat) plus CLI smokes:
#      2-epoch training runs of the RFN encoder and the Third-Law
#      augmentation, and a `--plan replay` vs dynamic-tape byte-identity
#      check on the non-default RFN variant; encoder_plane_test also rides
#      the TSan and ASan rebuilds so a race or leak in a variant factory,
#      the RFN relational kernels or the trainer's sampler staging fails
#      verification.
#
# Usage: tools/verify.sh [--tsan-only|--no-tsan|--no-asan]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc)"
mode="${1:-all}"

if [[ "$mode" != "--tsan-only" ]]; then
  cmake -B build -S . > /dev/null
  cmake --build build -j"$jobs"
  (cd build && ctest --output-on-failure -j"$jobs")
  # Fault-injection + bitwise resume-determinism tests, isolated for clarity.
  (cd build && ctest --output-on-failure -L checkpoint)
  # Observability suite: metrics math, trace export, sink continuity.
  (cd build && ctest --output-on-failure -L obs)
  # Telemetry smoke: a short training run must produce valid JSONL metrics
  # and a loadable Chrome trace.
  obs_dir="build/verify_obs"
  rm -rf "$obs_dir" && mkdir -p "$obs_dir"
  build/tools/sarn generate --city CD --scale 0.015 --out "$obs_dir/net.csv"
  build/tools/sarn train --network "$obs_dir/net.csv" --epochs 2 --dim 16 \
    --metrics-file "$obs_dir/metrics.jsonl" --trace-file "$obs_dir/trace.json"
  build/tools/sarn check-json --in "$obs_dir/metrics.jsonl" --lines true
  build/tools/sarn check-json --in "$obs_dir/trace.json"
  # Step-plan suite: bitwise replay pins, invalidation matrix, fusion identity.
  (cd build && ctest --output-on-failure -L plan)
  # Plan smoke: the same short training run executed by the dynamic tape and
  # by record/replay must produce byte-identical embeddings.
  plan_dir="build/verify_plan"
  rm -rf "$plan_dir" && mkdir -p "$plan_dir"
  build/tools/sarn train --network "$obs_dir/net.csv" --epochs 2 --dim 16 \
    --plan off --embeddings "$plan_dir/emb_dynamic.csv"
  build/tools/sarn train --network "$obs_dir/net.csv" --epochs 2 --dim 16 \
    --plan replay --embeddings "$plan_dir/emb_replay.csv"
  if ! cmp -s "$plan_dir/emb_dynamic.csv" "$plan_dir/emb_replay.csv"; then
    echo "verify: --plan replay embeddings differ from the dynamic tape" >&2
    exit 1
  fi
  # Encoder/augmentation plane suite: registry round-trip, golden-trace pin,
  # PlanKey variant identity, checkpoint variant tags.
  (cd build && ctest --output-on-failure -L encoder)
  # Variant smokes: the non-default encoder (RFN) and augmentation
  # (Third-Law) must train end to end through the CLI, and plan replay must
  # stay byte-identical to the dynamic tape on a non-default variant too.
  variant_dir="build/verify_encoder"
  rm -rf "$variant_dir" && mkdir -p "$variant_dir"
  build/tools/sarn train --network "$obs_dir/net.csv" --epochs 2 --dim 16 \
    --encoder rfn --plan off --embeddings "$variant_dir/emb_rfn_dynamic.csv"
  build/tools/sarn train --network "$obs_dir/net.csv" --epochs 2 --dim 16 \
    --encoder rfn --plan replay --embeddings "$variant_dir/emb_rfn_replay.csv"
  if ! cmp -s "$variant_dir/emb_rfn_dynamic.csv" "$variant_dir/emb_rfn_replay.csv"; then
    echo "verify: --plan replay embeddings differ from the dynamic tape (rfn)" >&2
    exit 1
  fi
  build/tools/sarn train --network "$obs_dir/net.csv" --epochs 2 --dim 16 \
    --augmentation third-law --embeddings "$variant_dir/emb_third_law.csv"
  # Query-serving suite: batch/sequential bitwise equivalence, cache + epoch
  # hot-swap semantics, protocol fuzz cases, flag registry.
  (cd build && ctest --output-on-failure -L serve)
  # Serve smoke: NDJSON in, validated NDJSON out, one ok:true per query.
  serve_dir="build/verify_serve"
  rm -rf "$serve_dir" && mkdir -p "$serve_dir"
  build/tools/sarn train --network "$obs_dir/net.csv" --epochs 1 --dim 16 \
    --embeddings "$serve_dir/emb.csv"
  printf '%s\n' \
    '{"op":"query","id":0,"k":3}' \
    '{"vector":[1,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0],"k":2}' \
    '{"op":"stats"}' \
    '{"op":"statsz"}' \
    > "$serve_dir/queries.ndjson"
  build/tools/sarn serve --embeddings "$serve_dir/emb.csv" --threads 2 \
    --trace-sample 1 --prom-file "$serve_dir/metrics.prom" \
    < "$serve_dir/queries.ndjson" > "$serve_dir/responses.ndjson"
  build/tools/sarn check-json --in "$serve_dir/responses.ndjson" --lines true
  ok_count="$(grep -c '"ok":true' "$serve_dir/responses.ndjson")"
  if [[ "$ok_count" != 4 ]]; then
    echo "verify: expected 4 ok serve responses, got $ok_count" >&2
    exit 1
  fi
  # statsz must attribute the traced latency to the five named stages and the
  # stats line must carry the snapshot load telemetry block.
  if ! grep -q '"statsz":{"enabled":true' "$serve_dir/responses.ndjson"; then
    echo "verify: serve statsz response missing or tracing not enabled" >&2
    exit 1
  fi
  for stage in admission queue cache scan reply; do
    if ! grep -q "\"stage\":\"$stage\"" "$serve_dir/responses.ndjson"; then
      echo "verify: serve statsz is missing stage '$stage'" >&2
      exit 1
    fi
  done
  if ! grep -q '"snapshot":{"loads":' "$serve_dir/responses.ndjson"; then
    echo "verify: serve stats is missing the snapshot telemetry block" >&2
    exit 1
  fi
  # The periodic Prometheus exposition file: written at least once (final
  # write on shutdown), parseable enough to carry the serve counters.
  if ! grep -q '^sarn_serve_requests 2$' "$serve_dir/metrics.prom"; then
    echo "verify: --prom-file exposition missing sarn_serve_requests" >&2
    exit 1
  fi
  if ! grep -q '^# TYPE sarn_serve_stage_scan_seconds histogram$' \
      "$serve_dir/metrics.prom"; then
    echo "verify: --prom-file exposition missing stage histograms" >&2
    exit 1
  fi
  # Same smoke at int8: the quantized index must serve the same protocol and
  # report its precision in stats.
  build/tools/sarn serve --embeddings "$serve_dir/emb.csv" --threads 2 \
    --quantized true \
    < "$serve_dir/queries.ndjson" > "$serve_dir/responses_q.ndjson"
  build/tools/sarn check-json --in "$serve_dir/responses_q.ndjson" --lines true
  ok_count="$(grep -c '"ok":true' "$serve_dir/responses_q.ndjson")"
  if [[ "$ok_count" != 4 ]]; then
    echo "verify: expected 4 ok quantized serve responses, got $ok_count" >&2
    exit 1
  fi
  if ! grep -q '"precision":"int8"' "$serve_dir/responses_q.ndjson"; then
    echo "verify: quantized serve stats did not report precision int8" >&2
    exit 1
  fi
  # Snapshot suite: corruption fuzz, round-trip bitwise identity, golden v1.
  (cd build && ctest --output-on-failure -L snapshot)
  # Snapshot smoke: arena save from the trained CSV, typed load report, then
  # the same NDJSON queries served from the mmap'd snapshot cold start.
  snap_dir="build/verify_snapshot"
  rm -rf "$snap_dir" && mkdir -p "$snap_dir"
  build/tools/sarn snapshot save --embeddings "$serve_dir/emb.csv" \
    --network "$obs_dir/net.csv" --out "$snap_dir/model.sarnsnap"
  build/tools/sarn snapshot load --in "$snap_dir/model.sarnsnap" \
    --query-id 0 --k 3
  # metrics-export: loading the snapshot populates sarn.snapshot.*, so the
  # offline Prometheus dump is non-trivial for a fresh process.
  build/tools/sarn metrics-export --snapshot "$snap_dir/model.sarnsnap" \
    --out "$snap_dir/export.prom"
  if ! grep -q '^sarn_snapshot_loads 1$' "$snap_dir/export.prom"; then
    echo "verify: metrics-export output missing sarn_snapshot_loads" >&2
    exit 1
  fi
  build/tools/sarn serve --snapshot "$snap_dir/model.sarnsnap" --threads 2 \
    < "$serve_dir/queries.ndjson" > "$snap_dir/responses.ndjson"
  build/tools/sarn check-json --in "$snap_dir/responses.ndjson" --lines true
  ok_count="$(grep -c '"ok":true' "$snap_dir/responses.ndjson")"
  if [[ "$ok_count" != 4 ]]; then
    echo "verify: expected 4 ok snapshot serve responses, got $ok_count" >&2
    exit 1
  fi
  # SIMD suite on the default (vectorised) build: bitwise identity between
  # the scalar fallback and the active tier, int8 recall gate.
  (cd build && ctest --output-on-failure -L simd)
  # And the scalar-fallback configuration: same suite with the vector tiers
  # compiled out entirely.
  cmake -B build-nosimd -S . -DSARN_NO_SIMD=ON > /dev/null
  cmake --build build-nosimd -j"$jobs" \
    --target simd_kernels_test quantized_index_test embedding_index_test
  (cd build-nosimd && ctest --output-on-failure -L simd)
fi

if [[ "$mode" != "--no-tsan" && "$mode" != "--no-asan" ]]; then
  cmake -B build-tsan -S . -DSARN_SANITIZE=thread > /dev/null
  cmake --build build-tsan -j"$jobs" \
    --target parallel_test ops_test nn_gat_test serialization_test \
             sarn_model_test obs_metrics_test obs_trace_test \
             obs_request_trace_test serve_engine_test \
             storage_pool_test simd_kernels_test quantized_index_test \
             snapshot_roundtrip_test plan_test encoder_plane_test
  (cd build-tsan && ctest --output-on-failure \
    -R '^(parallel_test|ops_test|nn_gat_test|serialization_test|sarn_model_test|obs_metrics_test|obs_trace_test|obs_request_trace_test|serve_engine_test|storage_pool_test|simd_kernels_test|quantized_index_test|snapshot_roundtrip_test|plan_test|encoder_plane_test)$')
fi

if [[ "$mode" != "--tsan-only" && "$mode" != "--no-asan" ]]; then
  # Leak gate: ASan+LSan over the storage plane (pool recycling, tape
  # consumption) and a short end-to-end training run through the CLI.
  cmake -B build-asan -S . -DSARN_SANITIZE=address > /dev/null
  cmake --build build-asan -j"$jobs" \
    --target storage_pool_test tensor_test simd_kernels_test \
             quantized_index_test snapshot_corruption_test \
             snapshot_roundtrip_test plan_test encoder_plane_test sarn_cli
  (cd build-asan && ctest --output-on-failure \
    -R '^(storage_pool_test|tensor_test|simd_kernels_test|quantized_index_test|snapshot_corruption_test|snapshot_roundtrip_test|plan_test|encoder_plane_test)$')
  asan_dir="build-asan/verify_leak"
  rm -rf "$asan_dir" && mkdir -p "$asan_dir"
  build-asan/tools/sarn generate --city CD --scale 0.015 --out "$asan_dir/net.csv"
  # Replay mode so the leak gate also covers plan capture, arena slots and
  # the compiled-kernel backward closures.
  build-asan/tools/sarn train --network "$asan_dir/net.csv" --epochs 2 --dim 16 \
    --plan replay --embeddings "$asan_dir/emb.csv"
fi

echo "verify: OK"
