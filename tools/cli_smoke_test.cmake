# Drives the sarn CLI through its full pipeline and fails on any error.
file(MAKE_DIRECTORY ${WORK_DIR})
function(run_step)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE code OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "step failed (${code}): ${ARGV}\n${out}\n${err}")
  endif()
endfunction()
run_step(${SARN_CLI} generate --city SF --scale 0.015 --out ${WORK_DIR}/net.csv)
run_step(${SARN_CLI} train --network ${WORK_DIR}/net.csv --epochs 2 --dim 16
         --weights ${WORK_DIR}/model.ckpt --embeddings ${WORK_DIR}/emb.csv)
run_step(${SARN_CLI} export --network ${WORK_DIR}/net.csv
         --embeddings ${WORK_DIR}/emb.csv --out ${WORK_DIR}/atlas.geojson)
run_step(${SARN_CLI} eval --network ${WORK_DIR}/net.csv
         --embeddings ${WORK_DIR}/emb.csv --task property)
foreach(artifact net.csv model.ckpt emb.csv atlas.geojson)
  if(NOT EXISTS ${WORK_DIR}/${artifact})
    message(FATAL_ERROR "missing artifact ${artifact}")
  endif()
endforeach()
