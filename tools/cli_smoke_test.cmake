# Drives the sarn CLI through its full pipeline and fails on any error.
file(MAKE_DIRECTORY ${WORK_DIR})
function(run_step)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE code OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "step failed (${code}): ${ARGV}\n${out}\n${err}")
  endif()
endfunction()
file(REMOVE ${WORK_DIR}/metrics.jsonl ${WORK_DIR}/trace.json)
run_step(${SARN_CLI} generate --city SF --scale 0.015 --out ${WORK_DIR}/net.csv)
run_step(${SARN_CLI} train --network ${WORK_DIR}/net.csv --epochs 2 --dim 16
         --weights ${WORK_DIR}/model.ckpt --embeddings ${WORK_DIR}/emb.csv
         --metrics-file ${WORK_DIR}/metrics.jsonl
         --trace-file ${WORK_DIR}/trace.json)
run_step(${SARN_CLI} export --network ${WORK_DIR}/net.csv
         --embeddings ${WORK_DIR}/emb.csv --out ${WORK_DIR}/atlas.geojson)
run_step(${SARN_CLI} eval --network ${WORK_DIR}/net.csv
         --embeddings ${WORK_DIR}/emb.csv --task property)
# Telemetry artifacts must parse: the JSONL metrics file line-by-line, the
# Chrome trace as one JSON document.
run_step(${SARN_CLI} check-json --in ${WORK_DIR}/metrics.jsonl --lines true)
run_step(${SARN_CLI} check-json --in ${WORK_DIR}/trace.json)
foreach(artifact net.csv model.ckpt emb.csv atlas.geojson metrics.jsonl trace.json)
  if(NOT EXISTS ${WORK_DIR}/${artifact})
    message(FATAL_ERROR "missing artifact ${artifact}")
  endif()
endforeach()
# One epoch record per trained epoch.
file(STRINGS ${WORK_DIR}/metrics.jsonl metric_lines REGEX "\"event\":\"epoch\"")
list(LENGTH metric_lines epoch_lines)
if(NOT epoch_lines EQUAL 2)
  message(FATAL_ERROR "expected 2 epoch records in metrics.jsonl, got ${epoch_lines}")
endif()
# Serve smoke: pipe NDJSON queries (by id, by vector dim-16, by lat/lng)
# through `sarn serve`; every response line must be valid JSON and ok:true.
file(WRITE ${WORK_DIR}/queries.ndjson
  "{\"op\":\"query\",\"id\":0,\"k\":3}\n"
  "{\"vector\":[1,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0],\"k\":2}\n"
  "{\"op\":\"query\",\"lat\":37.76,\"lng\":-122.44,\"k\":2}\n")
execute_process(
  COMMAND ${SARN_CLI} serve --embeddings ${WORK_DIR}/emb.csv
          --network ${WORK_DIR}/net.csv --threads 2
  INPUT_FILE ${WORK_DIR}/queries.ndjson
  OUTPUT_FILE ${WORK_DIR}/responses.ndjson
  ERROR_VARIABLE serve_err RESULT_VARIABLE code)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "serve failed (${code}): ${serve_err}")
endif()
run_step(${SARN_CLI} check-json --in ${WORK_DIR}/responses.ndjson --lines true)
file(STRINGS ${WORK_DIR}/responses.ndjson ok_lines REGEX "\"ok\":true")
list(LENGTH ok_lines ok_count)
if(NOT ok_count EQUAL 3)
  message(FATAL_ERROR "expected 3 ok serve responses, got ${ok_count}")
endif()
