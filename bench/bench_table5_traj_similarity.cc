// Reproduces Table 5: trajectory similarity prediction — HR@5, HR@20 and
// R5@20 on the CD/BJ/SF-like networks with synthetic (DiDi/T-Drive/SF-Cab
// substitute) trajectory datasets. NEUTRAJ participates through its own
// supervised model; HRNR trains end-to-end through the GRU head.

#include <cstdio>
#include <map>

#include "baselines/hrnr_lite.h"
#include "baselines/neutraj_lite.h"
#include "bench_common.h"
#include "tasks/embedding_source.h"

namespace sarn::bench {
namespace {

struct Cells {
  Stat hr5, hr20, r5_20;
};

void Add(Cells& cells, const tasks::TrajSimResult& r) {
  cells.hr5.Add(100.0 * r.hr5);
  cells.hr20.Add(100.0 * r.hr20);
  cells.r5_20.Add(100.0 * r.r5_20);
}

void Run() {
  BenchEnv env = GetEnv();
  PrintTitle("Table 5: Trajectory Similarity Prediction (scale=" + Num(env.scale, 3) +
             ", trajs=" + std::to_string(env.trajectories) + ")");
  const std::vector<std::string> cities = {"CD", "BJ", "SF"};
  const std::vector<std::string> methods = {"node2vec", "SRN2Vec", "GraphCL", "GCA",
                                            "SARN",     "SARN*",   "HRNR",
                                            "NEUTRAJ",  "RNE"};
  std::map<std::string, std::map<std::string, Cells>> results;

  for (const std::string& city : cities) {
    roadnet::RoadNetwork network = BuildCity(city, env);
    std::printf("[%s] %lld segments\n", city.c_str(),
                static_cast<long long>(network.num_segments()));
    for (int rep = 0; rep < env.reps; ++rep) {
      std::vector<traj::MatchedTrajectory> trajectories =
          MakeTrajectories(network, env.trajectories, env.traj_max_segments, rep);
      tasks::TrajSimConfig task_config;
      task_config.seed = 71 + rep;
      tasks::TrajectorySimilarityTask task(network, trajectories, task_config);

      for (const std::string& method : {"node2vec", "SRN2Vec", "GraphCL", "GCA", "RNE"}) {
        EmbeddingRun run = RunMethod(method, network, env, rep);
        if (run.out_of_memory) continue;
        tasks::FrozenEmbeddingSource source(run.embeddings);
        Add(results[method][city], task.Evaluate(source));
      }
      {
        auto sarn = TrainSarn(network, BenchSarnConfig(env, rep, network));
        tasks::FrozenEmbeddingSource frozen(sarn->Embeddings());
        Add(results["SARN"][city], task.Evaluate(frozen));
        tasks::SarnFineTuneSource tuned(*sarn);
        Add(results["SARN*"][city], task.Evaluate(tuned));
      }
      {
        baselines::HrnrLiteConfig hrnr_config;
        hrnr_config.seed = 41 + rep;
        hrnr_config.feature_dim_per_feature = 8;
        baselines::HrnrLite hrnr(network, hrnr_config);
        if (!hrnr.out_of_memory()) {
          tasks::HrnrSource source(hrnr);
          Add(results["HRNR"][city], task.Evaluate(source));
        }
      }
      {
        baselines::NeutrajLiteConfig neutraj_config;
        neutraj_config.seed = 43 + rep;
        Add(results["NEUTRAJ"][city], task.EvaluateNeutraj(neutraj_config));
      }
    }
  }

  std::vector<int> widths = {10, 12, 12, 12, 12, 12, 12, 12, 12, 12};
  PrintRow({"Method", "CD HR@5", "CD HR@20", "CD R5@20", "BJ HR@5", "BJ HR@20",
            "BJ R5@20", "SF HR@5", "SF HR@20", "SF R5@20"},
           widths);
  PrintRule(widths);
  for (const std::string& method : methods) {
    std::vector<std::string> row = {method};
    for (const std::string& city : cities) {
      auto it = results[method].find(city);
      if (it == results[method].end() || it->second.hr5.count == 0) {
        row.insert(row.end(), {"OOM", "OOM", "OOM"});
      } else {
        row.push_back(it->second.hr5.Cell(1));
        row.push_back(it->second.hr20.Cell(1));
        row.push_back(it->second.r5_20.Cell(1));
      }
    }
    PrintRow(row, widths);
  }
  std::printf(
      "\nPaper shape: SARN dominates the self-supervised group (gain up to\n"
      "+34%% HR@5 over the best baseline); SARN* is comparable to NEUTRAJ;\n"
      "SRN2Vec is the strongest self-supervised baseline on this task.\n");
}

}  // namespace
}  // namespace sarn::bench

int main() {
  sarn::bench::Run();
  return 0;
}
