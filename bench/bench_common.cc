#include "bench_common.h"

#include <cmath>
#include <cstdio>
#include <algorithm>
#include <cstdlib>

#include "baselines/gca.h"
#include "baselines/graphcl.h"
#include "baselines/node2vec.h"
#include "baselines/rne_lite.h"
#include "baselines/srn2vec.h"
#include "common/check.h"
#include "common/timer.h"
#include "traj/map_matching.h"
#include "traj/trajectory_generator.h"

namespace sarn::bench {
namespace {

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  return std::atof(value);
}

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  return std::atoi(value);
}

}  // namespace

BenchEnv GetEnv() {
  BenchEnv env;
  env.scale = EnvDouble("SARN_SCALE", env.scale);
  env.epochs = EnvInt("SARN_EPOCHS", env.epochs);
  env.reps = EnvInt("SARN_REPS", env.reps);
  env.trajectories = EnvInt("SARN_TRAJS", env.trajectories);
  env.traj_max_segments = EnvInt("SARN_TRAJ_SEGMENTS", env.traj_max_segments);
  return env;
}

roadnet::RoadNetwork BuildCity(const std::string& name, const BenchEnv& env) {
  return roadnet::GenerateSyntheticCity(roadnet::CityConfigByName(name, env.scale));
}

core::SarnConfig BenchSarnConfig(const BenchEnv& env, uint64_t seed,
                                 const roadnet::RoadNetwork& network) {
  core::SarnConfig config;
  config.seed = 42 + seed;
  config.hidden_dim = 64;
  config.embedding_dim = 64;
  config.projection_dim = 32;
  config.gat_layers = 2;
  config.gat_heads = 4;
  config.feature_dim_per_feature = 8;
  config.max_epochs = env.epochs;
  config.patience = std::max(5, env.epochs / 3);
  // Fewer optimizer steps than the paper's 46k -> a faster-moving target.
  config.momentum = 0.99f;
  // Slightly denser A^s than the library default: at reduced scale the
  // spatial-edge signal needs a few more neighbors per segment.
  config.max_spatial_neighbors = 6;
  core::FitCellSideToNetwork(config, network, /*target_cells_per_axis=*/10);
  return config;
}

const std::vector<std::string>& SelfSupervisedMethods() {
  static const auto& methods = *new std::vector<std::string>{
      "node2vec", "SRN2Vec", "GraphCL", "GCA", "SARN"};
  return methods;
}

EmbeddingRun RunMethod(const std::string& name, const roadnet::RoadNetwork& network,
                       const BenchEnv& env, uint64_t seed) {
  Timer timer;
  EmbeddingRun run;
  if (name == "node2vec") {
    baselines::Node2VecConfig config;
    config.seed = 17 + seed;
    config.dim = 64;
    config.walk.walk_length = 40;
    config.walk.walks_per_vertex = 6;
    config.epochs = std::max(2, env.epochs / 6);
    run.embeddings = baselines::TrainNode2Vec(network, config);
  } else if (name == "SRN2Vec") {
    baselines::Srn2VecConfig config;
    config.seed = 31 + seed;
    config.dim = 64;
    config.max_epochs = env.epochs;
    run.embeddings = baselines::TrainSrn2Vec(network, config).embeddings;
  } else if (name == "GraphCL") {
    baselines::GraphClConfig config;
    config.seed = 23 + seed;
    config.max_epochs = env.epochs;
    config.feature_dim_per_feature = 8;
    run.embeddings = baselines::TrainGraphCl(network, config).embeddings;
  } else if (name == "GCA") {
    baselines::GcaConfig config;
    config.seed = 29 + seed;
    config.max_epochs = env.epochs;
    config.feature_dim_per_feature = 8;
    baselines::GcaResult result = baselines::TrainGca(network, config);
    run.out_of_memory = result.out_of_memory;
    if (!result.out_of_memory) run.embeddings = result.embeddings;
  } else if (name == "SARN") {
    core::SarnConfig config = BenchSarnConfig(env, seed, network);
    core::SarnModel model(network, config);
    model.Train();
    run.embeddings = model.Embeddings();
  } else if (name == "RNE") {
    baselines::RneLiteConfig config;
    config.seed = 37 + seed;
    config.dim = 64;
    config.max_epochs = env.epochs;
    config.sources_per_epoch = 48;
    config.targets_per_source = 96;
    double extent = std::max(network.bounding_box().WidthMeters(),
                             network.bounding_box().HeightMeters());
    config.zone_cell_meters = std::max(200.0, extent / 5.0);
    run.embeddings = baselines::TrainRneLite(network, config).embeddings;
  } else {
    SARN_CHECK(false) << "unknown method " << name;
  }
  run.train_seconds = timer.ElapsedSeconds();
  return run;
}

std::unique_ptr<core::SarnModel> TrainSarn(const roadnet::RoadNetwork& network,
                                           const core::SarnConfig& config) {
  auto model = std::make_unique<core::SarnModel>(network, config);
  model->Train();
  return model;
}

std::vector<traj::MatchedTrajectory> MakeTrajectories(const roadnet::RoadNetwork& network,
                                                      int count, int max_segments,
                                                      uint64_t seed, int legs) {
  traj::TrajectoryGeneratorConfig config;
  config.seed = 13 + seed;
  config.min_route_segments = 8;
  config.legs = legs;
  config.max_route_segments = std::max(220, max_segments + 40);
  traj::TrajectoryGenerator generator(network, config);
  traj::MapMatcher matcher(network);
  std::vector<traj::MatchedTrajectory> matched;
  for (const auto& trip : generator.Generate(count)) {
    traj::MatchedTrajectory m = matcher.Match(trip.gps);
    if (m.segments.size() >= 2) {
      matched.push_back(traj::TruncateSegments(m, static_cast<size_t>(max_segments)));
    }
  }
  return matched;
}

void Stat::Add(double value) {
  // Online update of mean and sum of squared deviations (Welford).
  ++count;
  double delta = value - mean;
  mean += delta / count;
  stddev += delta * (value - mean);  // Accumulates M2 until Cell().
}

std::string Stat::Cell(int decimals) const {
  double variance = count > 1 ? stddev / (count - 1) : 0.0;
  char buffer[64];
  if (count > 1) {
    std::snprintf(buffer, sizeof(buffer), "%.*f±%.*f", decimals, mean, decimals,
                  std::sqrt(std::max(0.0, variance)));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, mean);
  }
  return buffer;
}

void PrintTitle(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

void PrintRule(const std::vector<int>& widths) {
  for (int w : widths) {
    for (int i = 0; i < w + 2; ++i) std::printf("-");
  }
  std::printf("\n");
}

void PrintRow(const std::vector<std::string>& cells, const std::vector<int>& widths) {
  for (size_t i = 0; i < cells.size(); ++i) {
    int width = i < widths.size() ? widths[i] : 12;
    std::printf("%-*s  ", width, cells[i].c_str());
  }
  std::printf("\n");
}

std::string Num(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

}  // namespace sarn::bench
