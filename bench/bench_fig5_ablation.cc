// Reproduces Figure 5: ablation study on the SF-like network across all
// three downstream tasks, with the paper's four variants:
//   SARN-w/o-MNL  — no spatial matrix, no spatial negatives/two-level loss
//                   (the plain weighted-GCL baseline of §3),
//   SARN-w/o-NL   — spatial matrix only,
//   SARN-w/o-M    — spatial negatives + two-level loss only,
//   SARN          — everything.

#include <cstdio>
#include <map>

#include "bench_common.h"
#include "tasks/embedding_source.h"
#include "tasks/spd_task.h"

namespace sarn::bench {
namespace {

struct VariantSpec {
  std::string name;
  bool use_matrix;
  bool use_negatives;
};

void Run() {
  BenchEnv env = GetEnv();
  PrintTitle("Figure 5: Ablation Study on SF (scale=" + Num(env.scale, 3) + ")");
  const std::vector<VariantSpec> variants = {
      {"SARN-w/o-MNL", false, false},
      {"SARN-w/o-NL", true, false},
      {"SARN-w/o-M", false, true},
      {"SARN", true, true},
  };

  roadnet::RoadNetwork network = BuildCity("SF", env);
  std::printf("[SF] %lld segments\n", static_cast<long long>(network.num_segments()));

  struct Cells {
    Stat f1, auc, hr5, hr20, mre, mae;
  };
  std::map<std::string, Cells> results;

  for (int rep = 0; rep < env.reps; ++rep) {
    tasks::RoadPropertyConfig property_config;
    property_config.seed = 51 + rep;
    tasks::RoadPropertyTask property_task(network, property_config);
    tasks::SpdConfig spd_config;
    spd_config.seed = 61 + rep;
    tasks::SpdTask spd_task(network, spd_config);
    std::vector<traj::MatchedTrajectory> trajectories =
        MakeTrajectories(network, env.trajectories, env.traj_max_segments, rep);
    tasks::TrajSimConfig traj_config;
    traj_config.seed = 71 + rep;
    tasks::TrajectorySimilarityTask traj_task(network, trajectories, traj_config);

    for (const VariantSpec& variant : variants) {
      core::SarnConfig config = BenchSarnConfig(env, rep, network);
      config.use_spatial_matrix = variant.use_matrix;
      config.use_spatial_negatives = variant.use_negatives;
      auto model = TrainSarn(network, config);
      tasks::FrozenEmbeddingSource source(model->Embeddings());
      Cells& cells = results[variant.name];
      tasks::RoadPropertyResult property = property_task.Evaluate(source);
      cells.f1.Add(100.0 * property.f1);
      cells.auc.Add(100.0 * property.auc);
      tasks::TrajSimResult traj = traj_task.Evaluate(source);
      cells.hr5.Add(100.0 * traj.hr5);
      cells.hr20.Add(100.0 * traj.hr20);
      tasks::SpdResult spd = spd_task.Evaluate(source);
      cells.mre.Add(100.0 * spd.mre);
      cells.mae.Add(spd.mae_meters);
    }
  }

  std::vector<int> widths = {14, 12, 12, 12, 12, 12, 12};
  PrintRow({"Variant", "F1 (%)", "AUC (%)", "HR@5 (%)", "HR@20 (%)", "MRE (%)",
            "MAE (m)"},
           widths);
  PrintRule(widths);
  for (const VariantSpec& variant : variants) {
    Cells& cells = results[variant.name];
    PrintRow({variant.name, cells.f1.Cell(1), cells.auc.Cell(1), cells.hr5.Cell(1),
              cells.hr20.Cell(1), cells.mre.Cell(1), cells.mae.Cell(0)},
             widths);
  }
  std::printf(
      "\nPaper shape (Fig. 5): every added component helps; the full SARN is\n"
      "best on all tasks; -w/o-M beats -w/o-NL on SPD while -w/o-NL beats\n"
      "-w/o-M on road property prediction.\n");
}

}  // namespace
}  // namespace sarn::bench

int main() {
  sarn::bench::Run();
  return 0;
}
