// Reproduces Table 3 (road network dataset statistics) plus the auxiliary
// statistics the paper quotes in the text: dual-typed edge share (§4.2,
// "7.5% in CD"), mean segment length (§5.5, "~70 meters"), and the
// type<->speed-limit NMI (§5.2.1: 0.80 / 0.73 / 0.39 for CD / BJ / SF).

#include <cstdio>

#include "bench_common.h"
#include "core/spatial_similarity.h"
#include "tasks/metrics.h"

namespace sarn::bench {
namespace {

void Run() {
  BenchEnv env = GetEnv();
  PrintTitle("Table 3: Road Network Datasets (synthetic, scale=" +
             Num(env.scale, 3) + ")");
  std::vector<int> widths = {26, 12, 12, 12};
  PrintRow({"", "CD", "BJ", "SF"}, widths);
  PrintRule(widths);

  std::vector<std::string> segment_row = {"Number of road segments"};
  std::vector<std::string> topo_row = {"Number of edges in A^t"};
  std::vector<std::string> spatial_row = {"Number of edges in A^s"};
  std::vector<std::string> area_row = {"Area (km^2)"};
  std::vector<std::string> dual_row = {"Dual-typed edges (%)"};
  std::vector<std::string> length_row = {"Mean segment length (m)"};
  std::vector<std::string> nmi_row = {"Type<->speed NMI"};

  for (const std::string& city : {"CD", "BJ", "SF"}) {
    roadnet::RoadNetwork network = BuildCity(city, env);
    core::SpatialSimilarityConfig similarity;
    std::vector<core::SpatialEdge> spatial =
        core::BuildSpatialEdges(network, similarity);
    int64_t dual = core::CountDualTypedEdges(network, spatial);

    segment_row.push_back(std::to_string(network.num_segments()));
    topo_row.push_back(std::to_string(network.topo_edges().size()));
    spatial_row.push_back(std::to_string(spatial.size()));
    area_row.push_back(Num(network.bounding_box().WidthMeters() / 1000.0, 2) + " x " +
                       Num(network.bounding_box().HeightMeters() / 1000.0, 2));
    dual_row.push_back(
        Num(100.0 * dual / std::max<int64_t>(1, static_cast<int64_t>(spatial.size())), 1));
    length_row.push_back(Num(network.MeanSegmentLength(), 1));

    std::vector<int64_t> types, speeds;
    for (const roadnet::RoadSegment& s : network.segments()) {
      if (s.speed_limit_kmh.has_value()) {
        types.push_back(static_cast<int64_t>(s.type));
        speeds.push_back(*s.speed_limit_kmh);
      }
    }
    nmi_row.push_back(Num(tasks::NormalizedMutualInformation(types, speeds), 2));
  }

  for (const auto& row : {segment_row, topo_row, spatial_row, area_row, dual_row,
                          length_row, nmi_row}) {
    PrintRow(row, widths);
  }
  std::printf(
      "\nPaper (full scale): CD 29,593 / BJ 36,809 / SF 37,284 segments;\n"
      "|A^t| 50,325 / 66,598 / 60,410; |A^s| 48,002 / 63,875 / 59,606;\n"
      "NMI 0.80 / 0.73 / 0.39; dual-typed ~7.5%% on CD. Run with SARN_SCALE=1\n"
      "to generate paper-size networks.\n");
}

}  // namespace
}  // namespace sarn::bench

int main() {
  sarn::bench::Run();
  return 0;
}
