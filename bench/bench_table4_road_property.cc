// Reproduces Table 4: road property (speed limit) prediction — F1 and AUC
// for every method on the CD/BJ/SF-like networks.
//
// Methods: the self-supervised group (node2vec, SRN2Vec, GraphCL, GCA,
// SARN) evaluated with frozen embeddings + an FFN classifier; SARN*
// (fine-tuned); and the supervised group (HRNR end-to-end, RNE embeddings
// reused frozen).

#include <cstdio>
#include <map>

#include "baselines/hrnr_lite.h"
#include "bench_common.h"
#include "tasks/embedding_source.h"

namespace sarn::bench {
namespace {

struct CellPair {
  Stat f1;
  Stat auc;
};

void Run() {
  BenchEnv env = GetEnv();
  PrintTitle("Table 4: Road Property Prediction (synthetic, scale=" +
             Num(env.scale, 3) + ", reps=" + std::to_string(env.reps) + ")");

  const std::vector<std::string> cities = {"CD", "BJ", "SF"};
  const std::vector<std::string> methods = {"node2vec", "SRN2Vec", "GraphCL", "GCA",
                                            "SARN",     "SARN*",   "HRNR",    "RNE"};
  std::map<std::string, std::map<std::string, CellPair>> results;

  for (const std::string& city : cities) {
    roadnet::RoadNetwork network = BuildCity(city, env);
    std::printf("[%s] %lld segments\n", city.c_str(),
                static_cast<long long>(network.num_segments()));
    for (int rep = 0; rep < env.reps; ++rep) {
      tasks::RoadPropertyConfig task_config;
      task_config.seed = 51 + rep;
      tasks::RoadPropertyTask task(network, task_config);

      for (const std::string& method : {"node2vec", "SRN2Vec", "GraphCL", "GCA", "RNE"}) {
        EmbeddingRun run = RunMethod(method, network, env, rep);
        if (run.out_of_memory) continue;
        tasks::FrozenEmbeddingSource source(run.embeddings);
        tasks::RoadPropertyResult r = task.Evaluate(source);
        results[method][city].f1.Add(100.0 * r.f1);
        results[method][city].auc.Add(100.0 * r.auc);
      }
      {
        auto sarn = TrainSarn(network, BenchSarnConfig(env, rep, network));
        tasks::FrozenEmbeddingSource frozen(sarn->Embeddings());
        tasks::RoadPropertyResult r = task.Evaluate(frozen);
        results["SARN"][city].f1.Add(100.0 * r.f1);
        results["SARN"][city].auc.Add(100.0 * r.auc);
        tasks::SarnFineTuneSource tuned(*sarn);
        tasks::RoadPropertyResult rt = task.Evaluate(tuned);
        results["SARN*"][city].f1.Add(100.0 * rt.f1);
        results["SARN*"][city].auc.Add(100.0 * rt.auc);
      }
      {
        baselines::HrnrLiteConfig hrnr_config;
        hrnr_config.seed = 41 + rep;
        hrnr_config.feature_dim_per_feature = 8;
        baselines::HrnrLite hrnr(network, hrnr_config);
        if (!hrnr.out_of_memory()) {
          tasks::HrnrSource source(hrnr);
          tasks::RoadPropertyResult r = task.Evaluate(source);
          results["HRNR"][city].f1.Add(100.0 * r.f1);
          results["HRNR"][city].auc.Add(100.0 * r.auc);
        }
      }
    }
  }

  std::vector<int> widths = {10, 14, 14, 14, 14, 14, 14};
  PrintRow({"Method", "CD F1", "CD AUC", "BJ F1", "BJ AUC", "SF F1", "SF AUC"}, widths);
  PrintRule(widths);
  for (const std::string& method : methods) {
    std::vector<std::string> row = {method};
    for (const std::string& city : cities) {
      auto it = results[method].find(city);
      if (it == results[method].end() || it->second.f1.count == 0) {
        row.push_back("OOM");
        row.push_back("OOM");
      } else {
        row.push_back(it->second.f1.Cell());
        row.push_back(it->second.auc.Cell());
      }
    }
    PrintRow(row, widths);
  }
  std::printf(
      "\nPaper shape: SARN beats all self-supervised baselines on every city\n"
      "(best baseline GCA/GraphCL); SARN* >= SARN and beats HRNR/RNE.\n");
}

}  // namespace
}  // namespace sarn::bench

int main() {
  sarn::bench::Run();
  return 0;
}
