// Reproduces Figure 4: embedding learning time of the self-supervised
// methods on each city. Absolute times are CPU seconds at bench scale; the
// comparison target is the RELATIVE ordering: SRN2Vec and GraphCL fastest,
// SARN well under GCA (the paper reports up to 5.6x).

#include <cstdio>
#include <map>

#include "bench_common.h"

namespace sarn::bench {
namespace {

void Run() {
  BenchEnv env = GetEnv();
  PrintTitle("Figure 4: Embedding Learning Times (seconds, scale=" + Num(env.scale, 3) +
             ")");
  const std::vector<std::string> cities = {"CD", "BJ", "SF"};
  std::map<std::string, std::map<std::string, Stat>> seconds;

  for (const std::string& city : cities) {
    roadnet::RoadNetwork network = BuildCity(city, env);
    std::printf("[%s] %lld segments\n", city.c_str(),
                static_cast<long long>(network.num_segments()));
    for (int rep = 0; rep < env.reps; ++rep) {
      for (const std::string& method : SelfSupervisedMethods()) {
        EmbeddingRun run = RunMethod(method, network, env, rep);
        if (!run.out_of_memory) seconds[method][city].Add(run.train_seconds);
      }
    }
  }

  std::vector<int> widths = {10, 12, 12, 12};
  PrintRow({"Method", "CD (s)", "BJ (s)", "SF (s)"}, widths);
  PrintRule(widths);
  for (const std::string& method : SelfSupervisedMethods()) {
    std::vector<std::string> row = {method};
    for (const std::string& city : cities) {
      row.push_back(seconds[method][city].Cell(1));
    }
    PrintRow(row, widths);
  }

  // The paper's headline ratio.
  std::printf("\nGCA / SARN time ratio: ");
  for (const std::string& city : cities) {
    double ratio = seconds["GCA"][city].mean /
                   std::max(1e-9, seconds["SARN"][city].mean);
    std::printf("%s %.2fx  ", city.c_str(), ratio);
  }
  std::printf(
      "\nPaper shape: SRN2Vec and GraphCL fastest; SARN consistently and\n"
      "substantially faster than GCA (up to 5.59x on SF); all under an hour\n"
      "at full scale.\n");
}

}  // namespace
}  // namespace sarn::bench

int main() {
  sarn::bench::Run();
  return 0;
}
