// Load generator for the serve subsystem, now across kernel/precision
// configs: the float index on the scalar fallback (the pre-SIMD baseline),
// the float index on the host's vector tier, and the int8 quantized index on
// the vector tier. For each config it measures a direct single-thread
// QueryBatch baseline and serve::QueryEngine at 1, 4 and 8 worker threads,
// with 8 client threads submitting 64-query bursts. The result cache is
// disabled so every request pays for a real scan, and the kernel thread pool
// is pinned to one thread so the table isolates serve-thread scaling and
// kernel speedups from intra-batch parallelism. The speedup column is
// against the float32/scalar config in the same mode (the PR 5-era serving
// cost). Numbers are recorded in EXPERIMENTS.md.
//
// A cold-start section compares the two serve restart paths at three network
// sizes: parse-load (embeddings CSV -> float rows -> heap EmbeddingIndex, the
// pre-snapshot path) against LoadServingSnapshot's mmap + zero-copy adoption,
// with and without the optional payload-CRC pass. Numbers land in
// EXPERIMENTS.md's cold-start table.
//
// Environment knobs:
//   SARN_SERVE_ROWS    index rows (default 2000)
//   SARN_SERVE_DIM     embedding dim (default 64)
//   SARN_SERVE_BURSTS  64-query bursts per client thread (default 25)
//   SARN_SERVE_JSON    also write results as JSON here (run_benches.sh sets
//                      bench_out/BENCH_serve.json)
//   SARN_SNAPSHOT_JSON write the cold-start rows as JSON here (run_benches.sh
//                      sets bench_out/BENCH_snapshot.json)
//   SARN_OBS_JSON      write the observability-overhead rows (tracing off vs
//                      sampled vs full) as JSON here (run_benches.sh sets
//                      bench_out/BENCH_obs.json)

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/csv.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "serve/query_engine.h"
#include "snapshot/snapshot.h"
#include "tasks/embedding_index.h"
#include "tensor/simd/simd.h"
#include "tensor/tensor.h"

namespace sarn {
namespace {

namespace simd = tensor::simd;

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::atoll(value);
}

constexpr int kClients = 8;
constexpr int kBurst = 64;
constexpr int kTopK = 10;

struct RunResult {
  std::string config;  // e.g. "float32/avx2".
  std::string mode;    // "direct" or "engine-4t".
  double seconds = 0.0;
  double qps = 0.0;
  double mean_batch = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  size_t index_bytes = 0;
};

// 8 client threads, each firing `bursts` bursts of 64 Submit()s and waiting
// for the burst to resolve — the arrival pattern micro-batching is for.
RunResult RunEngine(std::shared_ptr<const tasks::EmbeddingIndex> index,
                    int serve_threads, int bursts,
                    uint32_t trace_sample_every = 16) {
  serve::ServeOptions options;
  options.threads = serve_threads;
  options.max_batch = kBurst;
  options.batch_window_ms = 0.5;
  options.cache_capacity = 0;  // Every query pays for a scan.
  options.trace_sample_every = trace_sample_every;
  serve::QueryEngine engine(index, nullptr, options);

  const int64_t n = index->size();
  Timer timer;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(static_cast<uint64_t>(c) + 1);
      std::vector<std::future<serve::ServeResponse>> futures;
      futures.reserve(kBurst);
      for (int b = 0; b < bursts; ++b) {
        futures.clear();
        for (int i = 0; i < kBurst; ++i) {
          serve::ServeRequest request;
          request.kind = serve::ServeRequest::Kind::kById;
          request.id = rng.UniformInt(0, n - 1);
          request.k = kTopK;
          futures.push_back(engine.Submit(request));
        }
        for (auto& future : futures) {
          serve::ServeResponse response = future.get();
          if (!response.ok) {
            std::fprintf(stderr, "query failed: %s\n", response.error.c_str());
            std::abort();
          }
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  RunResult result;
  result.mode = "engine-" + std::to_string(serve_threads) + "t";
  result.seconds = timer.ElapsedMillis() / 1000.0;
  serve::ServeStats stats = engine.Stats();
  result.qps = static_cast<double>(stats.requests) / result.seconds;
  result.mean_batch = stats.mean_batch_size;
  result.p50_ms = stats.latency_p50_ms;
  result.p95_ms = stats.latency_p95_ms;
  result.index_bytes = stats.index_bytes;
  return result;
}

// Baseline: the same total work as one QueryBatch call per burst on the
// caller's thread — no queue, no futures, no batching window.
RunResult RunDirect(const tasks::EmbeddingIndex& index, int bursts) {
  Rng rng(1);
  const int64_t n = index.size();
  Timer timer;
  int64_t requests = 0;
  for (int b = 0; b < bursts * kClients; ++b) {
    std::vector<tasks::IndexQuery> queries;
    queries.reserve(kBurst);
    for (int i = 0; i < kBurst; ++i) {
      queries.push_back(tasks::IndexQuery::ById(rng.UniformInt(0, n - 1)));
    }
    std::vector<std::vector<tasks::Neighbor>> results =
        index.QueryBatch(queries, kTopK);
    requests += static_cast<int64_t>(results.size());
  }
  RunResult result;
  result.mode = "direct";
  result.seconds = timer.ElapsedMillis() / 1000.0;
  result.qps = static_cast<double>(requests) / result.seconds;
  result.mean_batch = kBurst;
  result.index_bytes = index.index_bytes();
  return result;
}

void WriteJson(const char* path, int64_t rows, int64_t dim,
               const std::vector<RunResult>& results) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f,
               "{\"bench\":\"serve_loadgen\",\"rows\":%lld,\"dim\":%lld,"
               "\"k\":%d,\"clients\":%d,\"burst\":%d,\"results\":[",
               static_cast<long long>(rows), static_cast<long long>(dim),
               kTopK, kClients, kBurst);
  for (size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    std::fprintf(f,
                 "%s{\"config\":\"%s\",\"mode\":\"%s\",\"seconds\":%.6f,"
                 "\"qps\":%.1f,\"mean_batch\":%.2f,\"p50_ms\":%.4f,"
                 "\"p95_ms\":%.4f,\"index_bytes\":%zu}",
                 i == 0 ? "" : ",", r.config.c_str(), r.mode.c_str(),
                 r.seconds, r.qps, r.mean_batch, r.p50_ms, r.p95_ms,
                 r.index_bytes);
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

// --- Observability overhead: tracing off vs sampled vs trace-everything -----

struct ObsResult {
  std::string mode;  // "off" / "sampled" / "full".
  uint32_t sample_every = 0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
};

// The ISSUE 8 acceptance knob: request tracing at the default 1-in-16
// sampling must cost <= ~2% QPS against tracing disabled. "full" (trace
// every request) bounds the worst case.
std::vector<ObsResult> RunObsOverhead(
    std::shared_ptr<const tasks::EmbeddingIndex> index, int bursts) {
  std::printf("\nobservability overhead: request tracing off vs sampled "
              "(1/16) vs full (engine-4t, cache off)\n");
  std::printf("%-10s %14s %10s %10s %8s %8s\n", "tracing", "sample_every",
              "qps", "vs off", "p50 ms", "p95 ms");
  struct Config {
    const char* mode;
    uint32_t sample_every;
  };
  const Config configs[] = {{"off", 0}, {"sampled", 16}, {"full", 1}};
  std::vector<ObsResult> results;
  double off_qps = 0.0;
  for (const Config& config : configs) {
    RunResult run = RunEngine(index, 4, bursts, config.sample_every);
    ObsResult result;
    result.mode = config.mode;
    result.sample_every = config.sample_every;
    result.qps = run.qps;
    result.p50_ms = run.p50_ms;
    result.p95_ms = run.p95_ms;
    if (off_qps == 0.0) off_qps = run.qps;
    std::printf("%-10s %14u %10.0f %9.3fx %8.3f %8.3f\n", result.mode.c_str(),
                result.sample_every, result.qps, result.qps / off_qps,
                result.p50_ms, result.p95_ms);
    results.push_back(std::move(result));
  }
  return results;
}

void WriteObsJson(const char* path, int64_t rows, int64_t dim,
                  const std::vector<ObsResult>& results) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f,
               "{\"bench\":\"serve_obs_overhead\",\"rows\":%lld,\"dim\":%lld,"
               "\"k\":%d,\"threads\":4,\"results\":[",
               static_cast<long long>(rows), static_cast<long long>(dim),
               kTopK);
  for (size_t i = 0; i < results.size(); ++i) {
    const ObsResult& r = results[i];
    std::fprintf(f,
                 "%s{\"tracing\":\"%s\",\"sample_every\":%u,\"qps\":%.1f,"
                 "\"p50_ms\":%.4f,\"p95_ms\":%.4f}",
                 i == 0 ? "" : ",", r.mode.c_str(), r.sample_every, r.qps,
                 r.p50_ms, r.p95_ms);
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

// --- Cold start: parse-load vs mmap snapshot load ---------------------------

struct ColdStartResult {
  int64_t rows = 0;
  double parse_ms = 0.0;       // CSV parse + heap index build.
  double mmap_ms = 0.0;        // LoadServingSnapshot, payload CRC verified.
  double mmap_nocrc_ms = 0.0;  // Same, CRC pass skipped (trusted file).
  size_t snapshot_bytes = 0;
};

void WriteEmbeddingsCsv(const tensor::Tensor& embeddings,
                        const std::string& path) {
  CsvTable table;
  for (int64_t i = 0; i < embeddings.shape()[0]; ++i) {
    std::vector<std::string> row;
    for (int64_t j = 0; j < embeddings.shape()[1]; ++j) {
      row.push_back(FormatDouble(embeddings.at(i, j), 6));
    }
    table.rows.push_back(std::move(row));
  }
  if (!WriteCsvFile(path, table)) std::abort();
}

// The pre-snapshot serve restart: read the CSV back, materialise float rows,
// build the heap index (mirrors the CLI's LoadEmbeddingsCsv + EmbeddingIndex).
double ParseLoadMs(const std::string& csv_path) {
  Timer timer;
  auto table = ReadCsvFile(csv_path, /*has_header=*/false);
  if (!table.has_value() || table->rows.empty()) std::abort();
  const int64_t n = static_cast<int64_t>(table->rows.size());
  const int64_t d = static_cast<int64_t>(table->rows[0].size());
  std::vector<float> data;
  data.reserve(static_cast<size_t>(n * d));
  for (const auto& row : table->rows) {
    for (const std::string& cell : row) {
      data.push_back(static_cast<float>(*ParseDouble(cell)));
    }
  }
  tasks::EmbeddingIndex index(
      tensor::Tensor::FromVector({n, d}, std::move(data)),
      tasks::IndexMetric::kCosine);
  if (index.size() != n) std::abort();
  return timer.ElapsedMillis();
}

double MmapLoadMs(const std::string& snapshot_path, bool verify_crc) {
  snapshot::MappedSnapshot::Options options;
  options.verify_payload_crc = verify_crc;
  Timer timer;
  snapshot::LoadedSnapshot loaded;
  snapshot::SnapshotStatus status = snapshot::LoadServingSnapshot(
      snapshot_path, tasks::IndexPrecision::kFloat32, &loaded, options);
  if (!status.ok()) {
    std::fprintf(stderr, "snapshot load failed: %s\n", status.message.c_str());
    std::abort();
  }
  return timer.ElapsedMillis();
}

template <typename Fn>
double BestOf(int trials, Fn fn) {
  double best = fn();
  for (int t = 1; t < trials; ++t) best = std::min(best, fn());
  return best;
}

std::vector<ColdStartResult> RunColdStart(int64_t dim) {
  std::vector<ColdStartResult> results;
  std::printf("\ncold start: CSV parse+build vs mmap snapshot load "
              "(dim %lld, float32, best of 3)\n",
              static_cast<long long>(dim));
  std::printf("%10s %12s %12s %14s %10s %12s\n", "rows", "parse ms",
              "mmap ms", "mmap-nocrc ms", "speedup", "snapshot B");
  for (int64_t rows : {2000, 10000, 40000}) {
    Rng rng(static_cast<uint64_t>(rows));
    tensor::Tensor embeddings = tensor::Tensor::Randn({rows, dim}, rng);
    const std::string csv_path =
        "/tmp/sarn_coldstart_" + std::to_string(rows) + ".csv";
    const std::string snap_path =
        "/tmp/sarn_coldstart_" + std::to_string(rows) + ".sarnsnap";
    WriteEmbeddingsCsv(embeddings, csv_path);
    tasks::EmbeddingIndex index(embeddings, tasks::IndexMetric::kCosine);
    snapshot::SnapshotContents contents;
    contents.n = rows;
    contents.d = dim;
    contents.metric = tasks::IndexMetric::kCosine;
    contents.float_index = &index;
    if (!snapshot::SaveServingSnapshot(snap_path, contents).ok()) std::abort();

    ColdStartResult result;
    result.rows = rows;
    result.parse_ms = BestOf(3, [&] { return ParseLoadMs(csv_path); });
    result.mmap_ms = BestOf(3, [&] { return MmapLoadMs(snap_path, true); });
    result.mmap_nocrc_ms =
        BestOf(3, [&] { return MmapLoadMs(snap_path, false); });
    {
      std::FILE* f = std::fopen(snap_path.c_str(), "rb");
      if (f != nullptr) {
        std::fseek(f, 0, SEEK_END);
        result.snapshot_bytes = static_cast<size_t>(std::ftell(f));
        std::fclose(f);
      }
    }
    std::printf("%10lld %12.3f %12.3f %14.3f %9.1fx %12zu\n",
                static_cast<long long>(result.rows), result.parse_ms,
                result.mmap_ms, result.mmap_nocrc_ms,
                result.parse_ms / result.mmap_ms, result.snapshot_bytes);
    results.push_back(result);
    std::remove(csv_path.c_str());
    std::remove(snap_path.c_str());
  }
  return results;
}

void WriteColdStartJson(const char* path, int64_t dim,
                        const std::vector<ColdStartResult>& results) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\"bench\":\"snapshot_coldstart\",\"dim\":%lld,"
               "\"precision\":\"float32\",\"results\":[",
               static_cast<long long>(dim));
  for (size_t i = 0; i < results.size(); ++i) {
    const ColdStartResult& r = results[i];
    std::fprintf(f,
                 "%s{\"rows\":%lld,\"parse_ms\":%.3f,\"mmap_ms\":%.3f,"
                 "\"mmap_nocrc_ms\":%.3f,\"snapshot_bytes\":%zu}",
                 i == 0 ? "" : ",", static_cast<long long>(r.rows), r.parse_ms,
                 r.mmap_ms, r.mmap_nocrc_ms, r.snapshot_bytes);
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

int Main() {
  const int64_t rows = EnvInt("SARN_SERVE_ROWS", 2000);
  const int64_t dim = EnvInt("SARN_SERVE_DIM", 64);
  const int bursts = static_cast<int>(EnvInt("SARN_SERVE_BURSTS", 25));

  Rng rng(42);
  tensor::Tensor embeddings = tensor::Tensor::Randn({rows, dim}, rng);

  struct Config {
    std::string name;
    tasks::IndexPrecision precision;
    simd::Tier tier;
  };
  const simd::Tier vector_tier = simd::DetectTier();  // kScalar if none.
  const std::vector<Config> configs = {
      {"float32/scalar", tasks::IndexPrecision::kFloat32, simd::Tier::kScalar},
      {std::string("float32/") + simd::TierName(vector_tier),
       tasks::IndexPrecision::kFloat32, vector_tier},
      {std::string("int8/") + simd::TierName(vector_tier),
       tasks::IndexPrecision::kInt8, vector_tier},
  };

  SetParallelThreads(1);  // Isolate serve-thread scaling from kernel threads.
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("serve load generator: %lld rows x %lld dims, cosine, k=%d\n",
              static_cast<long long>(rows), static_cast<long long>(dim), kTopK);
  std::printf("%d clients x %d bursts x %d queries = %d requests per run; "
              "host has %u core(s); vector tier: %s\n\n",
              kClients, bursts, kBurst, kClients * bursts * kBurst, cores,
              simd::TierName(vector_tier));

  // speedup = qps vs the float32/scalar config in the same mode — the
  // serving cost before this optimisation pass.
  std::printf("%-16s %-10s %8s %10s %8s %7s %8s %8s %10s\n", "config", "mode",
              "seconds", "qps", "speedup", "batch", "p50 ms", "p95 ms",
              "index B");
  std::vector<RunResult> results;
  std::vector<double> baseline_qps;  // Indexed by mode order: direct,1t,4t,8t.
  for (const Config& config : configs) {
    simd::ForceTier(config.tier);
    auto index = std::make_shared<tasks::EmbeddingIndex>(
        embeddings, tasks::IndexMetric::kCosine, config.precision);
    size_t mode_slot = 0;
    auto report = [&](RunResult run) {
      run.config = config.name;
      if (baseline_qps.size() <= mode_slot) baseline_qps.push_back(run.qps);
      const double speedup = run.qps / baseline_qps[mode_slot];
      ++mode_slot;
      const bool engine = run.mode != "direct";
      std::printf("%-16s %-10s %8.3f %10.0f %7.2fx %7.1f %8.3f %8.3f %10zu\n",
                  run.config.c_str(), run.mode.c_str(), run.seconds, run.qps,
                  speedup, run.mean_batch, engine ? run.p50_ms : 0.0,
                  engine ? run.p95_ms : 0.0, run.index_bytes);
      results.push_back(std::move(run));
    };
    report(RunDirect(*index, bursts));
    for (int threads : {1, 4, 8}) {
      report(RunEngine(index, threads, bursts));
    }
  }

  if (const char* json_path = std::getenv("SARN_SERVE_JSON")) {
    WriteJson(json_path, rows, dim, results);
  }

  simd::ForceTier(vector_tier);  // Overhead + cold start run on the host tier.
  {
    auto index = std::make_shared<tasks::EmbeddingIndex>(
        embeddings, tasks::IndexMetric::kCosine,
        tasks::IndexPrecision::kFloat32);
    const std::vector<ObsResult> obs = RunObsOverhead(index, bursts);
    if (const char* json_path = std::getenv("SARN_OBS_JSON")) {
      WriteObsJson(json_path, rows, dim, obs);
    }
  }
  const std::vector<ColdStartResult> cold = RunColdStart(dim);
  if (const char* json_path = std::getenv("SARN_SNAPSHOT_JSON")) {
    WriteColdStartJson(json_path, dim, cold);
  }
  return 0;
}

}  // namespace
}  // namespace sarn

int main() { return sarn::Main(); }
