// Load generator for the serve subsystem: measures end-to-end query
// throughput of serve::QueryEngine at 1, 4 and 8 worker threads against a
// direct single-thread QueryBatch baseline, with 8 client threads submitting
// 64-query bursts. The result cache is disabled so every request pays for a
// real scan, and the kernel thread pool is pinned to one thread so the table
// isolates *serve-thread* scaling from intra-batch kernel parallelism.
// Numbers are recorded in EXPERIMENTS.md (with the host core count — scaling
// past the physical cores is not expected).
//
// Environment knobs:
//   SARN_SERVE_ROWS    index rows (default 2000)
//   SARN_SERVE_DIM     embedding dim (default 64)
//   SARN_SERVE_BURSTS  64-query bursts per client thread (default 25)

#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/timer.h"
#include "serve/query_engine.h"
#include "tasks/embedding_index.h"
#include "tensor/tensor.h"

namespace sarn {
namespace {

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::atoll(value);
}

constexpr int kClients = 8;
constexpr int kBurst = 64;
constexpr int kTopK = 10;

struct RunResult {
  double seconds = 0.0;
  double qps = 0.0;
  double mean_batch = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
};

// 8 client threads, each firing `bursts` bursts of 64 Submit()s and waiting
// for the burst to resolve — the arrival pattern micro-batching is for.
RunResult RunEngine(std::shared_ptr<const tasks::EmbeddingIndex> index,
                    int serve_threads, int bursts) {
  serve::ServeOptions options;
  options.threads = serve_threads;
  options.max_batch = kBurst;
  options.batch_window_ms = 0.5;
  options.cache_capacity = 0;  // Every query pays for a scan.
  serve::QueryEngine engine(index, nullptr, options);

  const int64_t n = index->size();
  Timer timer;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(static_cast<uint64_t>(c) + 1);
      std::vector<std::future<serve::ServeResponse>> futures;
      futures.reserve(kBurst);
      for (int b = 0; b < bursts; ++b) {
        futures.clear();
        for (int i = 0; i < kBurst; ++i) {
          serve::ServeRequest request;
          request.kind = serve::ServeRequest::Kind::kById;
          request.id = rng.UniformInt(0, n - 1);
          request.k = kTopK;
          futures.push_back(engine.Submit(request));
        }
        for (auto& future : futures) {
          serve::ServeResponse response = future.get();
          if (!response.ok) {
            std::fprintf(stderr, "query failed: %s\n", response.error.c_str());
            std::abort();
          }
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  RunResult result;
  result.seconds = timer.ElapsedMillis() / 1000.0;
  serve::ServeStats stats = engine.Stats();
  result.qps = static_cast<double>(stats.requests) / result.seconds;
  result.mean_batch = stats.mean_batch_size;
  result.p50_ms = stats.latency_p50_ms;
  result.p95_ms = stats.latency_p95_ms;
  return result;
}

// Baseline: the same total work as one QueryBatch call per burst on the
// caller's thread — no queue, no futures, no batching window.
RunResult RunDirect(const tasks::EmbeddingIndex& index, int bursts) {
  Rng rng(1);
  const int64_t n = index.size();
  Timer timer;
  int64_t requests = 0;
  for (int b = 0; b < bursts * kClients; ++b) {
    std::vector<tasks::IndexQuery> queries;
    queries.reserve(kBurst);
    for (int i = 0; i < kBurst; ++i) {
      queries.push_back(tasks::IndexQuery::ById(rng.UniformInt(0, n - 1)));
    }
    std::vector<std::vector<tasks::Neighbor>> results =
        index.QueryBatch(queries, kTopK);
    requests += static_cast<int64_t>(results.size());
  }
  RunResult result;
  result.seconds = timer.ElapsedMillis() / 1000.0;
  result.qps = static_cast<double>(requests) / result.seconds;
  result.mean_batch = kBurst;
  return result;
}

int Main() {
  const int64_t rows = EnvInt("SARN_SERVE_ROWS", 2000);
  const int64_t dim = EnvInt("SARN_SERVE_DIM", 64);
  const int bursts = static_cast<int>(EnvInt("SARN_SERVE_BURSTS", 25));

  Rng rng(42);
  auto index = std::make_shared<tasks::EmbeddingIndex>(
      tensor::Tensor::Randn({rows, dim}, rng), tasks::IndexMetric::kCosine);

  SetParallelThreads(1);  // Isolate serve-thread scaling from kernel threads.
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("serve load generator: %lld rows x %lld dims, cosine, k=%d\n",
              static_cast<long long>(rows), static_cast<long long>(dim), kTopK);
  std::printf("%d clients x %d bursts x %d queries = %d requests per config; "
              "host has %u core(s)\n\n",
              kClients, bursts, kBurst, kClients * bursts * kBurst, cores);

  std::printf("%-16s %10s %10s %10s %9s %9s %9s\n", "config", "seconds", "qps",
              "speedup", "batch", "p50 ms", "p95 ms");
  RunResult direct = RunDirect(*index, bursts);
  std::printf("%-16s %10.3f %10.0f %10s %9.1f %9s %9s\n", "direct 1-thread",
              direct.seconds, direct.qps, "-", direct.mean_batch, "-", "-");

  double base_qps = 0.0;
  for (int threads : {1, 4, 8}) {
    RunResult run = RunEngine(index, threads, bursts);
    if (threads == 1) base_qps = run.qps;
    std::printf("engine %dt%*s %10.3f %10.0f %9.2fx %9.1f %9.3f %9.3f\n",
                threads, threads >= 10 ? 6 : 7, "", run.seconds, run.qps,
                base_qps > 0.0 ? run.qps / base_qps : 0.0, run.mean_batch,
                run.p50_ms, run.p95_ms);
  }
  return 0;
}

}  // namespace
}  // namespace sarn

int main() { return sarn::Main(); }
