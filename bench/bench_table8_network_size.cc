// Reproduces Table 8: downstream results on road networks of different sizes
// (SF-S ~ 0.5x, SF, SF-L ~ 2x segments), one headline metric per task:
// road-property F1, trajectory HR@5 and shortest-path MRE.
//
// GCA and HRNR print OOM on SF-L: their documented memory appetite is
// quadratic / multi-adjacency in n, and at the PAPER's full network sizes
// (74k segments for SF-L) the requirement exceeds the paper's 16 GB V100 —
// we model that ceiling explicitly (bench-scale networks would fit, so the
// guard extrapolates the requirement to full scale, mirroring §5.2.4).

#include <cstdio>
#include <map>

#include "baselines/hrnr_lite.h"
#include "baselines/neutraj_lite.h"
#include "bench_common.h"
#include "tasks/embedding_source.h"
#include "tasks/spd_task.h"

namespace sarn::bench {
namespace {

constexpr double kPaperGpuBytes = 16.0 * 1024 * 1024 * 1024;  // V100.

// Extrapolates a bench-scale vertex count to paper scale and tests the
// quadratic memory need against the paper's GPU.
bool WouldOomAtPaperScale(int64_t n_bench, double scale, double bytes_per_n_squared) {
  double n_paper = static_cast<double>(n_bench) / std::max(1e-6, scale);
  return n_paper * n_paper * bytes_per_n_squared > kPaperGpuBytes;
}

struct Cells {
  Stat f1, hr5, mre;
  bool oom = false;
};

void Run() {
  BenchEnv env = GetEnv();
  PrintTitle("Table 8: Road Networks of Different Sizes (scale=" + Num(env.scale, 3) +
             ")");
  const std::vector<std::string> cities = {"SF-S", "SF", "SF-L"};
  const std::vector<std::string> methods = {"node2vec", "SRN2Vec", "GraphCL", "GCA",
                                            "SARN",     "SARN*",   "HRNR",    "NEUTRAJ",
                                            "RNE"};
  std::map<std::string, std::map<std::string, Cells>> results;

  for (const std::string& city : cities) {
    roadnet::RoadNetwork network = BuildCity(city, env);
    std::printf("[%s] %lld segments\n", city.c_str(),
                static_cast<long long>(network.num_segments()));
    // env.scale is the knob; SF-L's own 2x multiplier is part of the paper's
    // dataset, so the extrapolated n_paper is n_bench / env.scale (~74k for
    // SF-L at full scale).
    bool gca_oom =
        city == "SF-L" && WouldOomAtPaperScale(network.num_segments(), env.scale,
                                               /*two n x n float views=*/8.0);
    bool hrnr_oom =
        city == "SF-L" && WouldOomAtPaperScale(network.num_segments(), env.scale,
                                               /*three n x n adjacencies=*/12.0);
    results["GCA"][city].oom = gca_oom;
    results["HRNR"][city].oom = hrnr_oom;

    for (int rep = 0; rep < env.reps; ++rep) {
      tasks::RoadPropertyConfig property_config;
      property_config.seed = 51 + rep;
      tasks::RoadPropertyTask property_task(network, property_config);
      tasks::SpdConfig spd_config;
      spd_config.seed = 61 + rep;
      tasks::SpdTask spd_task(network, spd_config);
      std::vector<traj::MatchedTrajectory> trajectories =
          MakeTrajectories(network, env.trajectories, env.traj_max_segments, rep);
      tasks::TrajSimConfig traj_config;
      traj_config.seed = 71 + rep;
      tasks::TrajectorySimilarityTask traj_task(network, trajectories, traj_config);

      auto eval_frozen = [&](const std::string& method, tensor::Tensor embeddings) {
        tasks::FrozenEmbeddingSource source(embeddings);
        results[method][city].f1.Add(100.0 * property_task.Evaluate(source).f1);
        results[method][city].hr5.Add(100.0 * traj_task.Evaluate(source).hr5);
        results[method][city].mre.Add(100.0 * spd_task.Evaluate(source).mre);
      };

      for (const std::string& method : {"node2vec", "SRN2Vec", "GraphCL", "RNE"}) {
        EmbeddingRun run = RunMethod(method, network, env, rep);
        eval_frozen(method, run.embeddings);
      }
      if (!gca_oom) {
        EmbeddingRun run = RunMethod("GCA", network, env, rep);
        if (!run.out_of_memory) eval_frozen("GCA", run.embeddings);
      }
      {
        auto sarn = TrainSarn(network, BenchSarnConfig(env, rep, network));
        eval_frozen("SARN", sarn->Embeddings());
        {
          tasks::SarnFineTuneSource tuned(*sarn);
          results["SARN*"][city].f1.Add(100.0 * property_task.Evaluate(tuned).f1);
        }
        {
          tasks::SarnFineTuneSource tuned(*sarn);
          results["SARN*"][city].hr5.Add(100.0 * traj_task.Evaluate(tuned).hr5);
        }
        {
          tasks::SarnFineTuneSource tuned(*sarn);
          results["SARN*"][city].mre.Add(100.0 * spd_task.Evaluate(tuned).mre);
        }
      }
      if (!hrnr_oom) {
        baselines::HrnrLiteConfig hrnr_config;
        hrnr_config.seed = 41 + rep;
        hrnr_config.feature_dim_per_feature = 8;
        baselines::HrnrLite hrnr(network, hrnr_config);
        if (!hrnr.out_of_memory()) {
          tasks::HrnrSource source(hrnr);
          results["HRNR"][city].f1.Add(100.0 * property_task.Evaluate(source).f1);
          results["HRNR"][city].hr5.Add(100.0 * traj_task.Evaluate(source).hr5);
          results["HRNR"][city].mre.Add(100.0 * spd_task.Evaluate(source).mre);
        }
      }
      {
        baselines::NeutrajLiteConfig neutraj_config;
        neutraj_config.seed = 43 + rep;
        results["NEUTRAJ"][city].hr5.Add(
            100.0 * traj_task.EvaluateNeutraj(neutraj_config).hr5);
      }
    }
  }

  auto print_block = [&](const std::string& title, auto metric_of) {
    std::printf("\n%s\n", title.c_str());
    std::vector<int> widths = {10, 13, 13, 13};
    PrintRow({"Method", "SF-S", "SF", "SF-L"}, widths);
    PrintRule(widths);
    for (const std::string& method : methods) {
      std::vector<std::string> row = {method};
      for (const std::string& city : cities) {
        Cells& cells = results[method][city];
        Stat& stat = metric_of(cells);
        if (cells.oom) {
          row.push_back("OOM");
        } else if (stat.count == 0) {
          row.push_back("-");
        } else {
          row.push_back(stat.Cell(1));
        }
      }
      PrintRow(row, widths);
    }
  };
  print_block("Road Property Prediction, F1 (%)", [](Cells& c) -> Stat& { return c.f1; });
  print_block("Trajectory Similarity, HR@5 (%)", [](Cells& c) -> Stat& { return c.hr5; });
  print_block("Shortest-Path Distance, MRE (%) (smaller is better)",
              [](Cells& c) -> Stat& { return c.mre; });
  std::printf(
      "\nPaper shape: GCA and HRNR go OOM on SF-L (modeled at paper scale);\n"
      "SARN/SARN* degrade least with network size and their SF-L gains over\n"
      "the surviving baselines are the largest.\n");
}

}  // namespace
}  // namespace sarn::bench

int main() {
  sarn::bench::Run();
  return 0;
}
