// Ablations of this implementation's design choices (beyond the paper's
// Fig. 5 component ablation) — the knobs DESIGN.md calls out:
//   * dual-typed edge coupling in the augmentation (§4.2's removal rule),
//   * the A^s per-segment neighbor cap (keeps |A^s| ~ |A^t| as in Table 3),
//   * the MoCo momentum coefficient (Eq. 12),
// each measured on the trajectory-similarity task (SF-like network).

#include <cstdio>

#include "bench_common.h"
#include "tasks/embedding_source.h"

namespace sarn::bench {
namespace {

struct Harness {
  roadnet::RoadNetwork* network;
  tasks::TrajectorySimilarityTask* task;
  BenchEnv env;

  void Measure(const std::string& label, const core::SarnConfig& config,
               const std::vector<int>& widths) {
    auto model = TrainSarn(*network, config);
    tasks::FrozenEmbeddingSource source(model->Embeddings());
    tasks::TrajSimResult r = task->Evaluate(source);
    PrintRow({label, Num(100.0 * r.hr5, 1), Num(100.0 * r.hr20, 1),
              Num(100.0 * r.r5_20, 1)},
             widths);
  }
};

void Run() {
  BenchEnv env = GetEnv();
  PrintTitle("Design-Choice Ablations (SF-like, trajectory similarity, scale=" +
             Num(env.scale, 3) + ")");
  roadnet::RoadNetwork network = BuildCity("SF", env);
  std::printf("[SF] %lld segments\n", static_cast<long long>(network.num_segments()));
  std::vector<traj::MatchedTrajectory> trajectories =
      MakeTrajectories(network, env.trajectories, env.traj_max_segments, 0);
  tasks::TrajSimConfig traj_config;
  tasks::TrajectorySimilarityTask task(network, trajectories, traj_config);
  Harness harness{&network, &task, env};
  std::vector<int> widths = {26, 10, 10, 10};
  PrintRow({"Variant", "HR@5", "HR@20", "R5@20"}, widths);
  PrintRule(widths);

  // Note: dual-typed coupling lives in AugmentGraph; SarnModel always couples
  // (the paper's rule). Here we approximate "uncoupled" by comparing against
  // spatial-neighbor caps and momentum variants; coupling itself is micro-
  // benchmarked in bench_micro_kernels and unit-tested in augmentation_test.
  for (int neighbors : {2, 4, 6, 8}) {
    core::SarnConfig config = BenchSarnConfig(env, 0, network);
    config.max_spatial_neighbors = neighbors;
    harness.Measure("A^s cap = " + std::to_string(neighbors), config, widths);
  }
  for (float momentum : {0.9f, 0.99f, 0.999f}) {
    core::SarnConfig config = BenchSarnConfig(env, 0, network);
    config.momentum = momentum;
    harness.Measure("momentum m = " + Num(momentum, 3), config, widths);
  }
  for (int heads : {1, 2, 4, 8}) {
    core::SarnConfig config = BenchSarnConfig(env, 0, network);
    config.gat_heads = heads;
    harness.Measure("GAT heads L = " + std::to_string(heads), config, widths);
  }
  {
    // Paper footnote 1: learned attention vs fixed uniform aggregation.
    core::SarnConfig config = BenchSarnConfig(env, 0, network);
    config.use_attention = false;
    harness.Measure("uniform aggregation", config, widths);
  }
}

}  // namespace
}  // namespace sarn::bench

int main() {
  sarn::bench::Run();
  return 0;
}
