// Micro-benchmarks (google-benchmark) for the hot kernels behind the
// reproduction: tensor ops, GAT forward/backward, Dijkstra, Fréchet, A^s
// construction, graph augmentation and the negative-sampling queues.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/augmentation.h"
#include "core/negative_queue.h"
#include "core/spatial_similarity.h"
#include "graph/dijkstra.h"
#include "nn/gat.h"
#include "roadnet/features.h"
#include "roadnet/synthetic_city.h"
#include "tensor/ops.h"
#include "traj/frechet.h"

namespace sarn {
namespace {

const roadnet::RoadNetwork& TestNetwork() {
  static const roadnet::RoadNetwork& network = *new roadnet::RoadNetwork([] {
    roadnet::SyntheticCityConfig config;
    config.rows = 20;
    config.cols = 20;
    return roadnet::GenerateSyntheticCity(config);
  }());
  return network;
}

void BM_MatMul(benchmark::State& state) {
  int64_t n = state.range(0);
  Rng rng(1);
  tensor::Tensor a = tensor::Tensor::Randn({n, n}, rng);
  tensor::Tensor b = tensor::Tensor::Randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256);

void BM_MatMulBackward(benchmark::State& state) {
  int64_t n = state.range(0);
  Rng rng(1);
  tensor::Tensor a = tensor::Tensor::Randn({n, n}, rng).RequiresGrad();
  tensor::Tensor b = tensor::Tensor::Randn({n, n}, rng).RequiresGrad();
  for (auto _ : state) {
    tensor::Tensor loss = tensor::Sum(tensor::MatMul(a, b));
    loss.Backward();
    a.ZeroGrad();
    b.ZeroGrad();
  }
}
BENCHMARK(BM_MatMulBackward)->Arg(64)->Arg(128);

void BM_GatForward(benchmark::State& state) {
  const roadnet::RoadNetwork& network = TestNetwork();
  Rng rng(2);
  nn::GatLayer layer(32, 16, 4, true, nn::Activation::kElu, rng);
  tensor::Tensor x = tensor::Tensor::Randn({network.num_segments(), 32}, rng);
  nn::EdgeList edges;
  for (const roadnet::TopoEdge& e : network.topo_edges()) edges.Add(e.from, e.to);
  tensor::NoGradGuard guard;
  for (auto _ : state) {
    benchmark::DoNotOptimize(layer.Forward(x, edges));
  }
  state.SetItemsProcessed(state.iterations() * network.num_segments());
}
BENCHMARK(BM_GatForward);

void BM_GatForwardBackward(benchmark::State& state) {
  const roadnet::RoadNetwork& network = TestNetwork();
  Rng rng(2);
  nn::GatLayer layer(32, 16, 4, true, nn::Activation::kElu, rng);
  tensor::Tensor x = tensor::Tensor::Randn({network.num_segments(), 32}, rng);
  nn::EdgeList edges;
  for (const roadnet::TopoEdge& e : network.topo_edges()) edges.Add(e.from, e.to);
  for (auto _ : state) {
    tensor::Tensor loss = tensor::Sum(layer.Forward(x, edges));
    loss.Backward();
  }
}
BENCHMARK(BM_GatForwardBackward);

void BM_Dijkstra(benchmark::State& state) {
  const roadnet::RoadNetwork& network = TestNetwork();
  graph::CsrGraph g = network.ToLengthWeightedGraph();
  Rng rng(3);
  for (auto _ : state) {
    graph::VertexId source = rng.UniformInt(0, g.num_vertices() - 1);
    benchmark::DoNotOptimize(Dijkstra(g, source));
  }
  state.SetItemsProcessed(state.iterations() * g.num_vertices());
}
BENCHMARK(BM_Dijkstra);

void BM_DiscreteFrechet(benchmark::State& state) {
  int64_t n = state.range(0);
  Rng rng(4);
  geo::LocalProjection proj(geo::LatLng{30.0, 104.0});
  std::vector<geo::LatLng> a, b;
  for (int64_t i = 0; i < n; ++i) {
    a.push_back(proj.ToLatLng(i * 50.0, rng.Uniform(0, 100)));
    b.push_back(proj.ToLatLng(i * 50.0, rng.Uniform(100, 200)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(traj::DiscreteFrechet(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_DiscreteFrechet)->Arg(60)->Arg(180);

void BM_BuildSpatialEdges(benchmark::State& state) {
  const roadnet::RoadNetwork& network = TestNetwork();
  core::SpatialSimilarityConfig config;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::BuildSpatialEdges(network, config));
  }
  state.SetItemsProcessed(state.iterations() * network.num_segments());
}
BENCHMARK(BM_BuildSpatialEdges);

void BM_AugmentGraph(benchmark::State& state) {
  const roadnet::RoadNetwork& network = TestNetwork();
  std::vector<core::SpatialEdge> spatial =
      core::BuildSpatialEdges(network, core::SpatialSimilarityConfig{});
  core::AugmentationConfig config;
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::AugmentGraph(network.topo_edges(), spatial, config, rng));
  }
  state.SetItemsProcessed(state.iterations() *
                          (network.topo_edges().size() + spatial.size()));
}
BENCHMARK(BM_AugmentGraph);

void BM_NegativeQueueCycle(benchmark::State& state) {
  const roadnet::RoadNetwork& network = TestNetwork();
  core::NegativeQueueStore store(network, 400.0, 1000);
  Rng rng(6);
  std::vector<float> embedding(32, 0.5f);
  for (int64_t s = 0; s < network.num_segments(); ++s) store.Push(s, embedding);
  for (auto _ : state) {
    int64_t anchor = rng.UniformInt(0, network.num_segments() - 1);
    benchmark::DoNotOptimize(store.LocalNegatives(anchor));
    benchmark::DoNotOptimize(store.GlobalNegatives(anchor));
    store.Push(anchor, embedding);
  }
}
BENCHMARK(BM_NegativeQueueCycle);

void BM_EdgeSoftmaxScatter(benchmark::State& state) {
  const roadnet::RoadNetwork& network = TestNetwork();
  Rng rng(7);
  std::vector<int64_t> dst;
  for (const roadnet::TopoEdge& e : network.topo_edges()) dst.push_back(e.to);
  int64_t e_count = static_cast<int64_t>(dst.size());
  tensor::Tensor scores = tensor::Tensor::Randn({e_count}, rng);
  tensor::Tensor messages = tensor::Tensor::Randn({e_count, 32}, rng);
  tensor::NoGradGuard guard;
  for (auto _ : state) {
    tensor::Tensor alpha = tensor::EdgeSoftmax(scores, dst, network.num_segments());
    benchmark::DoNotOptimize(
        tensor::ScatterAddRows(tensor::ScaleRows(messages, alpha), dst,
                               network.num_segments()));
  }
  state.SetItemsProcessed(state.iterations() * e_count);
}
BENCHMARK(BM_EdgeSoftmaxScatter);

}  // namespace
}  // namespace sarn

BENCHMARK_MAIN();
