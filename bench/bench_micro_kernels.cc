// Micro-benchmarks (google-benchmark) for the hot kernels behind the
// reproduction: tensor ops, GAT forward/backward, Dijkstra, Fréchet, A^s
// construction, graph augmentation and the negative-sampling queues.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "core/augmentation.h"
#include "core/negative_queue.h"
#include "core/spatial_similarity.h"
#include "graph/dijkstra.h"
#include "nn/gat.h"
#include "roadnet/features.h"
#include "roadnet/synthetic_city.h"
#include "tasks/embedding_index.h"
#include "tensor/matmul_kernels.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"
#include "tensor/simd/simd.h"
#include "traj/frechet.h"

// --- Heap-allocation counting ------------------------------------------------
// Global operator new/delete overrides so the steady-state benchmarks can
// report allocations-per-step. The counter is process-wide (relaxed atomic):
// benchmark bodies read it before/after the timed work, so anything the
// framework allocates between iterations is excluded.

namespace {
std::atomic<uint64_t> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) /
                                       static_cast<std::size_t>(align) *
                                       static_cast<std::size_t>(align))) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace sarn {
namespace {

uint64_t HeapAllocCount() { return g_heap_allocs.load(std::memory_order_relaxed); }

/// Pins the parallel thread count for the duration of one benchmark.
class ThreadPin {
 public:
  explicit ThreadPin(size_t threads) : previous_(GetParallelThreads()) {
    SetParallelThreads(threads);
  }
  ~ThreadPin() { SetParallelThreads(previous_); }

 private:
  size_t previous_;
};

const roadnet::RoadNetwork& TestNetwork() {
  static const roadnet::RoadNetwork& network = *new roadnet::RoadNetwork([] {
    roadnet::SyntheticCityConfig config;
    config.rows = 20;
    config.cols = 20;
    return roadnet::GenerateSyntheticCity(config);
  }());
  return network;
}

// --- Parallel runtime dispatch ----------------------------------------------
// Latency of handing an (almost) empty body to the persistent pool, vs the
// seed implementation's spawn-and-join-per-call strategy. Run with 4 logical
// threads regardless of the host so the two are comparable.

void BM_ParallelForDispatch(benchmark::State& state) {
  ThreadPin pin(4);
  std::vector<float> sink(4096, 1.0f);
  for (auto _ : state) {
    ParallelFor(
        sink.size(),
        [&](size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) sink[i] += 1.0f;
        },
        /*grain=*/1);
    benchmark::DoNotOptimize(sink.data());
  }
}
BENCHMARK(BM_ParallelForDispatch);

void BM_SpawnJoinDispatch(benchmark::State& state) {
  // What ParallelFor cost before the persistent pool: fresh std::threads per
  // invocation (the seed's implementation, reproduced verbatim).
  std::vector<float> sink(4096, 1.0f);
  const size_t threads = 4;
  for (auto _ : state) {
    size_t n = sink.size();
    size_t chunk = (n + threads - 1) / threads;
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (size_t t = 0; t < threads; ++t) {
      size_t begin = t * chunk;
      size_t end = std::min(n, begin + chunk);
      if (begin >= end) break;
      workers.emplace_back([&sink, begin, end] {
        for (size_t i = begin; i < end; ++i) sink[i] += 1.0f;
      });
    }
    for (auto& worker : workers) worker.join();
    benchmark::DoNotOptimize(sink.data());
  }
}
BENCHMARK(BM_SpawnJoinDispatch);

// --- MatMul kernels ---------------------------------------------------------
// Raw kernel comparison (no autograd/tensor overhead): the seed's naive
// i/k/j loops vs the register-tiled kernels that replaced them.

template <void (*Kernel)(const float*, const float*, float*, int64_t, int64_t,
                         int64_t, int64_t)>
void BM_MatMulKernel(benchmark::State& state) {
  int64_t n = state.range(0);
  Rng rng(1);
  tensor::Tensor a = tensor::Tensor::Randn({n, n}, rng);
  tensor::Tensor b = tensor::Tensor::Randn({n, n}, rng);
  std::vector<float> c(static_cast<size_t>(n * n), 0.0f);
  for (auto _ : state) {
    Kernel(a.data().data(), b.data().data(), c.data(), 0, n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMulKernel<tensor::kernels::MatMulNaive>)
    ->Name("BM_MatMulKernelNaive")
    ->Arg(64)
    ->Arg(256)
    ->Arg(512);
BENCHMARK(BM_MatMulKernel<tensor::kernels::MatMulBlocked>)
    ->Name("BM_MatMulKernelBlocked")
    ->Arg(64)
    ->Arg(256)
    ->Arg(512);

template <void (*Kernel)(const float*, const float*, float*, int64_t, int64_t,
                         int64_t, int64_t)>
void BM_MatMulGradAKernel(benchmark::State& state) {
  int64_t n = state.range(0);
  Rng rng(1);
  tensor::Tensor g = tensor::Tensor::Randn({n, n}, rng);
  tensor::Tensor b = tensor::Tensor::Randn({n, n}, rng);
  std::vector<float> da(static_cast<size_t>(n * n), 0.0f);
  for (auto _ : state) {
    Kernel(g.data().data(), b.data().data(), da.data(), 0, n, n, n);
    benchmark::DoNotOptimize(da.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMulGradAKernel<tensor::kernels::MatMulGradANaive>)
    ->Name("BM_MatMulGradAKernelNaive")
    ->Arg(256);
BENCHMARK(BM_MatMulGradAKernel<tensor::kernels::MatMulGradABlocked>)
    ->Name("BM_MatMulGradAKernelBlocked")
    ->Arg(256);

template <void (*Kernel)(const float*, const float*, float*, int64_t, int64_t,
                         int64_t, int64_t, int64_t)>
void BM_MatMulGradBKernel(benchmark::State& state) {
  int64_t n = state.range(0);
  Rng rng(1);
  tensor::Tensor a = tensor::Tensor::Randn({n, n}, rng);
  tensor::Tensor g = tensor::Tensor::Randn({n, n}, rng);
  std::vector<float> db(static_cast<size_t>(n * n), 0.0f);
  for (auto _ : state) {
    Kernel(a.data().data(), g.data().data(), db.data(), 0, n, n, n, n);
    benchmark::DoNotOptimize(db.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMulGradBKernel<tensor::kernels::MatMulGradBNaive>)
    ->Name("BM_MatMulGradBKernelNaive")
    ->Arg(256);
BENCHMARK(BM_MatMulGradBKernel<tensor::kernels::MatMulGradBBlocked>)
    ->Name("BM_MatMulGradBKernelBlocked")
    ->Arg(256);

void BM_MatMul(benchmark::State& state) {
  int64_t n = state.range(0);
  Rng rng(1);
  tensor::Tensor a = tensor::Tensor::Randn({n, n}, rng);
  tensor::Tensor b = tensor::Tensor::Randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256);

void BM_MatMulBackward(benchmark::State& state) {
  int64_t n = state.range(0);
  Rng rng(1);
  tensor::Tensor a = tensor::Tensor::Randn({n, n}, rng).RequiresGrad();
  tensor::Tensor b = tensor::Tensor::Randn({n, n}, rng).RequiresGrad();
  for (auto _ : state) {
    tensor::Tensor loss = tensor::Sum(tensor::MatMul(a, b));
    loss.Backward();
    a.ZeroGrad();
    b.ZeroGrad();
  }
}
BENCHMARK(BM_MatMulBackward)->Arg(64)->Arg(128);

void BM_GatForward(benchmark::State& state) {
  const roadnet::RoadNetwork& network = TestNetwork();
  Rng rng(2);
  nn::GatLayer layer(32, 16, 4, true, nn::Activation::kElu, rng);
  tensor::Tensor x = tensor::Tensor::Randn({network.num_segments(), 32}, rng);
  nn::EdgeList edges;
  for (const roadnet::TopoEdge& e : network.topo_edges()) edges.Add(e.from, e.to);
  tensor::NoGradGuard guard;
  for (auto _ : state) {
    benchmark::DoNotOptimize(layer.Forward(x, edges));
  }
  state.SetItemsProcessed(state.iterations() * network.num_segments());
}
BENCHMARK(BM_GatForward);

void BM_GatForwardPerHeadReference(benchmark::State& state) {
  // The seed's forward, reproduced from public ops: one matmul per head and
  // self-loop lists rebuilt on every call. Compare against BM_GatForward
  // (fused wide matmul + cached self loops) to measure the fusion win.
  const roadnet::RoadNetwork& network = TestNetwork();
  Rng rng(2);
  const int num_heads = 4;
  const int64_t in_dim = 32, head_dim = 16;
  std::vector<tensor::Tensor> weight, att_src, att_dst;
  for (int h = 0; h < num_heads; ++h) {
    weight.push_back(tensor::Tensor::GlorotUniform(in_dim, head_dim, rng));
    att_src.push_back(tensor::Tensor::GlorotUniform(head_dim, 1, rng));
    att_dst.push_back(tensor::Tensor::GlorotUniform(head_dim, 1, rng));
  }
  int64_t n = network.num_segments();
  tensor::Tensor x = tensor::Tensor::Randn({n, in_dim}, rng);
  nn::EdgeList edges;
  for (const roadnet::TopoEdge& e : network.topo_edges()) edges.Add(e.from, e.to);
  tensor::NoGradGuard guard;
  for (auto _ : state) {
    std::vector<int64_t> src = edges.src;
    std::vector<int64_t> dst = edges.dst;
    for (int64_t v = 0; v < n; ++v) {
      src.push_back(v);
      dst.push_back(v);
    }
    int64_t e_count = static_cast<int64_t>(src.size());
    std::vector<tensor::Tensor> heads;
    for (int h = 0; h < num_heads; ++h) {
      tensor::Tensor wx = tensor::MatMul(x, weight[h]);
      tensor::Tensor score_dst = tensor::MatMul(wx, att_dst[h]);
      tensor::Tensor score_src = tensor::MatMul(wx, att_src[h]);
      tensor::Tensor scores = tensor::LeakyRelu(
          tensor::Add(tensor::Rows(score_dst, dst), tensor::Rows(score_src, src)), 0.2f);
      tensor::Tensor alpha =
          tensor::EdgeSoftmax(tensor::Reshape(scores, {e_count}), dst, n);
      tensor::Tensor messages = tensor::ScaleRows(tensor::Rows(wx, src), alpha);
      heads.push_back(tensor::ScatterAddRows(messages, dst, n));
    }
    benchmark::DoNotOptimize(tensor::Elu(tensor::Concat(heads, 1)));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GatForwardPerHeadReference);

void BM_GatEncoderForward(benchmark::State& state) {
  // Full 3-layer, 4-head encoder forward — the shape of the training hot
  // path (paper configuration, minus autograd).
  const roadnet::RoadNetwork& network = TestNetwork();
  Rng rng(2);
  nn::GatEncoder encoder(32, 64, 32, /*num_layers=*/3, /*num_heads=*/4, rng);
  tensor::Tensor x = tensor::Tensor::Randn({network.num_segments(), 32}, rng);
  nn::EdgeList edges;
  for (const roadnet::TopoEdge& e : network.topo_edges()) edges.Add(e.from, e.to);
  tensor::NoGradGuard guard;
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.Forward(x, edges));
  }
  state.SetItemsProcessed(state.iterations() * network.num_segments());
}
BENCHMARK(BM_GatEncoderForward);

void BM_GatForwardBackward(benchmark::State& state) {
  const roadnet::RoadNetwork& network = TestNetwork();
  Rng rng(2);
  nn::GatLayer layer(32, 16, 4, true, nn::Activation::kElu, rng);
  tensor::Tensor x = tensor::Tensor::Randn({network.num_segments(), 32}, rng);
  nn::EdgeList edges;
  for (const roadnet::TopoEdge& e : network.topo_edges()) edges.Add(e.from, e.to);
  for (auto _ : state) {
    tensor::Tensor loss = tensor::Sum(layer.Forward(x, edges));
    loss.Backward();
  }
}
BENCHMARK(BM_GatForwardBackward);

// --- Steady-state training step ---------------------------------------------
// A full GAT train step (forward + loss + backward + Adam) over the synthetic
// network, shaped like the SARN hot loop. Reports wall latency plus
// allocations-per-step, the storage plane's target metric: before the pooled
// storage plane every op result heap-allocated its data/grad buffers and tape
// node; after it, steady-state steps recycle everything.

void BM_TrainStepSteadyState(benchmark::State& state) {
  ThreadPin pin(static_cast<size_t>(state.range(0)));
  const roadnet::RoadNetwork& network = TestNetwork();
  Rng rng(11);
  nn::GatLayer layer(32, 16, 4, true, nn::Activation::kElu, rng);
  tensor::Tensor x = tensor::Tensor::Randn({network.num_segments(), 32}, rng);
  nn::EdgeList edges;
  for (const roadnet::TopoEdge& e : network.topo_edges()) edges.Add(e.from, e.to);
  tensor::Adam optimizer(layer.Parameters(), 1e-3f);
  // Warm-up step so pools/caches are primed before measurement.
  auto step = [&] {
    optimizer.ZeroGrad();
    tensor::Tensor y = layer.Forward(x, edges);
    tensor::Tensor loss = tensor::Mean(tensor::Square(tensor::RowL2Normalize(y)));
    loss.Backward();
    optimizer.Step();
  };
  step();
  uint64_t allocs = 0;
  for (auto _ : state) {
    uint64_t before = HeapAllocCount();
    step();
    allocs += HeapAllocCount() - before;
  }
  state.counters["allocs_per_step"] = benchmark::Counter(
      static_cast<double>(allocs) / static_cast<double>(state.iterations()));
  state.SetItemsProcessed(state.iterations() * network.num_segments());
}
BENCHMARK(BM_TrainStepSteadyState)->Arg(1)->Arg(4);

// Steady-state serve batch: one EmbeddingIndex::QueryBatch of 16 by-id
// queries under NoGradGuard. Allocations-per-batch should be near zero once
// the query scratch comes from the pool (result vectors remain caller-owned).

void BM_ServeQueryBatchSteadyState(benchmark::State& state) {
  ThreadPin pin(static_cast<size_t>(state.range(0)));
  Rng rng(12);
  tensor::Tensor embeddings = tensor::Tensor::Randn({2000, 32}, rng);
  tasks::EmbeddingIndex index(embeddings, tasks::IndexMetric::kCosine);
  std::vector<tasks::IndexQuery> queries;
  for (int64_t i = 0; i < 16; ++i) {
    queries.push_back(tasks::IndexQuery::ById((i * 97) % index.size()));
  }
  tensor::NoGradGuard guard;
  benchmark::DoNotOptimize(index.QueryBatch(queries, 10));  // Warm-up.
  uint64_t allocs = 0;
  for (auto _ : state) {
    uint64_t before = HeapAllocCount();
    benchmark::DoNotOptimize(index.QueryBatch(queries, 10));
    allocs += HeapAllocCount() - before;
  }
  state.counters["allocs_per_batch"] = benchmark::Counter(
      static_cast<double>(allocs) / static_cast<double>(state.iterations()));
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(queries.size()));
}
BENCHMARK(BM_ServeQueryBatchSteadyState)->Arg(1)->Arg(4);

// --- SIMD scan kernels -------------------------------------------------------
// The runtime-dispatched scan kernels of src/tensor/simd/ (DESIGN.md §12):
// the vector tier of the host vs the bitwise-identical scalar fallback, and
// the int8 quantized variants vs their float counterparts. 2000 x 64 with a
// query block of 4 — the shape the fused EmbeddingIndex scan feeds them.

/// Forces a kernel tier for the duration of one benchmark.
class TierForce {
 public:
  explicit TierForce(tensor::simd::Tier tier)
      : previous_(tensor::simd::ActiveTier()) {
    tensor::simd::ForceTier(tier);
  }
  ~TierForce() { tensor::simd::ForceTier(previous_); }

 private:
  tensor::simd::Tier previous_;
};

constexpr int64_t kScanRows = 2000;
constexpr int64_t kScanDim = 64;
constexpr int kScanQn = tensor::simd::kMaxQueryBlock;

template <bool kVector>
void BM_SimdDotScan(benchmark::State& state) {
  TierForce tier(kVector ? tensor::simd::DetectTier()
                         : tensor::simd::Tier::kScalar);
  Rng rng(21);
  tensor::Tensor rows = tensor::Tensor::Randn({kScanRows, kScanDim}, rng);
  tensor::Tensor queries = tensor::Tensor::Randn({kScanQn, kScanDim}, rng);
  std::vector<float> out(kScanQn * kScanRows);
  for (auto _ : state) {
    tensor::simd::DotScan(queries.data().data(), kScanQn, rows.data().data(),
                          kScanRows, kScanDim, out.data(), kScanRows);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kScanQn * kScanRows * kScanDim);
}
BENCHMARK(BM_SimdDotScan<false>)->Name("BM_DotScanScalar");
BENCHMARK(BM_SimdDotScan<true>)->Name("BM_DotScanSimd");

template <bool kVector>
void BM_SimdL1Scan(benchmark::State& state) {
  TierForce tier(kVector ? tensor::simd::DetectTier()
                         : tensor::simd::Tier::kScalar);
  Rng rng(22);
  tensor::Tensor rows = tensor::Tensor::Randn({kScanRows, kScanDim}, rng);
  tensor::Tensor queries = tensor::Tensor::Randn({kScanQn, kScanDim}, rng);
  std::vector<float> out(kScanQn * kScanRows);
  for (auto _ : state) {
    tensor::simd::L1Scan(queries.data().data(), kScanQn, rows.data().data(),
                         kScanRows, kScanDim, out.data(), kScanRows);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kScanQn * kScanRows * kScanDim);
}
BENCHMARK(BM_SimdL1Scan<false>)->Name("BM_L1ScanScalar");
BENCHMARK(BM_SimdL1Scan<true>)->Name("BM_L1ScanSimd");

template <bool kVector>
void BM_SimdDotScanI8(benchmark::State& state) {
  TierForce tier(kVector ? tensor::simd::DetectTier()
                         : tensor::simd::Tier::kScalar);
  Rng rng(23);
  std::vector<int8_t> rows(kScanRows * kScanDim), queries(kScanQn * kScanDim);
  for (int8_t& v : rows) v = static_cast<int8_t>(rng.UniformInt(-127, 127));
  for (int8_t& v : queries) v = static_cast<int8_t>(rng.UniformInt(-127, 127));
  std::vector<float> row_scales(kScanRows, 0.01f), query_scales(kScanQn, 0.01f);
  std::vector<float> out(kScanQn * kScanRows);
  for (auto _ : state) {
    tensor::simd::DotScanI8(queries.data(), query_scales.data(), kScanQn,
                            rows.data(), row_scales.data(), kScanRows, kScanDim,
                            out.data(), kScanRows);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kScanQn * kScanRows * kScanDim);
}
BENCHMARK(BM_SimdDotScanI8<false>)->Name("BM_DotScanI8Scalar");
BENCHMARK(BM_SimdDotScanI8<true>)->Name("BM_DotScanI8Simd");

template <bool kVector>
void BM_SimdL1ScanI8(benchmark::State& state) {
  TierForce tier(kVector ? tensor::simd::DetectTier()
                         : tensor::simd::Tier::kScalar);
  Rng rng(24);
  std::vector<int8_t> rows(kScanRows * kScanDim), queries(kScanQn * kScanDim);
  for (int8_t& v : rows) v = static_cast<int8_t>(rng.UniformInt(-127, 127));
  for (int8_t& v : queries) v = static_cast<int8_t>(rng.UniformInt(-127, 127));
  std::vector<float> out(kScanQn * kScanRows);
  for (auto _ : state) {
    tensor::simd::L1ScanI8(queries.data(), kScanQn, rows.data(), kScanRows,
                           kScanDim, 0.01f, out.data(), kScanRows);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kScanQn * kScanRows * kScanDim);
}
BENCHMARK(BM_SimdL1ScanI8<false>)->Name("BM_L1ScanI8Scalar");
BENCHMARK(BM_SimdL1ScanI8<true>)->Name("BM_L1ScanI8Simd");

void BM_QuantizeRows(benchmark::State& state) {
  // Index-build cost of the int8 variant: symmetric per-row quantization of
  // the whole matrix (what EmbeddingIndex's kInt8 constructor adds).
  Rng rng(25);
  tensor::Tensor rows = tensor::Tensor::Randn({kScanRows, kScanDim}, rng);
  std::vector<int8_t> codes(kScanRows * kScanDim);
  std::vector<float> scales(kScanRows);
  for (auto _ : state) {
    for (int64_t i = 0; i < kScanRows; ++i) {
      tensor::simd::QuantizeRowI8(rows.data().data() + i * kScanDim, kScanDim,
                                  codes.data() + i * kScanDim, &scales[i]);
    }
    benchmark::DoNotOptimize(codes.data());
  }
  state.SetItemsProcessed(state.iterations() * kScanRows * kScanDim);
}
BENCHMARK(BM_QuantizeRows);

void BM_Dijkstra(benchmark::State& state) {
  const roadnet::RoadNetwork& network = TestNetwork();
  graph::CsrGraph g = network.ToLengthWeightedGraph();
  Rng rng(3);
  for (auto _ : state) {
    graph::VertexId source = rng.UniformInt(0, g.num_vertices() - 1);
    benchmark::DoNotOptimize(Dijkstra(g, source));
  }
  state.SetItemsProcessed(state.iterations() * g.num_vertices());
}
BENCHMARK(BM_Dijkstra);

void BM_DiscreteFrechet(benchmark::State& state) {
  int64_t n = state.range(0);
  Rng rng(4);
  geo::LocalProjection proj(geo::LatLng{30.0, 104.0});
  std::vector<geo::LatLng> a, b;
  for (int64_t i = 0; i < n; ++i) {
    a.push_back(proj.ToLatLng(i * 50.0, rng.Uniform(0, 100)));
    b.push_back(proj.ToLatLng(i * 50.0, rng.Uniform(100, 200)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(traj::DiscreteFrechet(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_DiscreteFrechet)->Arg(60)->Arg(180);

void BM_BuildSpatialEdges(benchmark::State& state) {
  const roadnet::RoadNetwork& network = TestNetwork();
  core::SpatialSimilarityConfig config;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::BuildSpatialEdges(network, config));
  }
  state.SetItemsProcessed(state.iterations() * network.num_segments());
}
BENCHMARK(BM_BuildSpatialEdges);

void BM_AugmentGraph(benchmark::State& state) {
  const roadnet::RoadNetwork& network = TestNetwork();
  std::vector<core::SpatialEdge> spatial =
      core::BuildSpatialEdges(network, core::SpatialSimilarityConfig{});
  core::AugmentationConfig config;
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::AugmentGraph(network.topo_edges(), spatial, config, rng));
  }
  state.SetItemsProcessed(state.iterations() *
                          (network.topo_edges().size() + spatial.size()));
}
BENCHMARK(BM_AugmentGraph);

void BM_NegativeQueueCycle(benchmark::State& state) {
  const roadnet::RoadNetwork& network = TestNetwork();
  core::NegativeQueueStore store(network, 400.0, 1000);
  Rng rng(6);
  std::vector<float> embedding(32, 0.5f);
  for (int64_t s = 0; s < network.num_segments(); ++s) store.Push(s, embedding);
  for (auto _ : state) {
    int64_t anchor = rng.UniformInt(0, network.num_segments() - 1);
    benchmark::DoNotOptimize(store.LocalNegatives(anchor));
    benchmark::DoNotOptimize(store.GlobalNegatives(anchor));
    store.Push(anchor, embedding);
  }
}
BENCHMARK(BM_NegativeQueueCycle);

void BM_EdgeSoftmaxScatter(benchmark::State& state) {
  const roadnet::RoadNetwork& network = TestNetwork();
  Rng rng(7);
  std::vector<int64_t> dst;
  for (const roadnet::TopoEdge& e : network.topo_edges()) dst.push_back(e.to);
  int64_t e_count = static_cast<int64_t>(dst.size());
  tensor::Tensor scores = tensor::Tensor::Randn({e_count}, rng);
  tensor::Tensor messages = tensor::Tensor::Randn({e_count, 32}, rng);
  tensor::NoGradGuard guard;
  for (auto _ : state) {
    tensor::Tensor alpha = tensor::EdgeSoftmax(scores, dst, network.num_segments());
    benchmark::DoNotOptimize(
        tensor::ScatterAddRows(tensor::ScaleRows(messages, alpha), dst,
                               network.num_segments()));
  }
  state.SetItemsProcessed(state.iterations() * e_count);
}
BENCHMARK(BM_EdgeSoftmaxScatter);

}  // namespace
}  // namespace sarn

BENCHMARK_MAIN();
