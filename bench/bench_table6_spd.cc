// Reproduces Table 6: shortest-path distance prediction — MRE (%) and MAE
// (meters) per method and city. Ground truth: Dijkstra on the directed
// length-weighted segment graph.

#include <cstdio>
#include <map>

#include "baselines/hrnr_lite.h"
#include "bench_common.h"
#include "tasks/embedding_source.h"
#include "tasks/spd_task.h"

namespace sarn::bench {
namespace {

struct Cells {
  Stat mre, mae;
};

void Add(Cells& cells, const tasks::SpdResult& r) {
  cells.mre.Add(100.0 * r.mre);
  cells.mae.Add(r.mae_meters);
}

void Run() {
  BenchEnv env = GetEnv();
  PrintTitle("Table 6: Shortest-Path Distance Prediction (scale=" + Num(env.scale, 3) +
             "; smaller is better)");
  const std::vector<std::string> cities = {"CD", "BJ", "SF"};
  const std::vector<std::string> methods = {"node2vec", "SRN2Vec", "GraphCL", "GCA",
                                            "SARN",     "SARN*",   "HRNR",    "RNE"};
  std::map<std::string, std::map<std::string, Cells>> results;

  for (const std::string& city : cities) {
    roadnet::RoadNetwork network = BuildCity(city, env);
    std::printf("[%s] %lld segments\n", city.c_str(),
                static_cast<long long>(network.num_segments()));
    for (int rep = 0; rep < env.reps; ++rep) {
      tasks::SpdConfig task_config;
      task_config.seed = 61 + rep;
      tasks::SpdTask task(network, task_config);

      for (const std::string& method : {"node2vec", "SRN2Vec", "GraphCL", "GCA", "RNE"}) {
        EmbeddingRun run = RunMethod(method, network, env, rep);
        if (run.out_of_memory) continue;
        tasks::FrozenEmbeddingSource source(run.embeddings);
        Add(results[method][city], task.Evaluate(source));
      }
      {
        auto sarn = TrainSarn(network, BenchSarnConfig(env, rep, network));
        tasks::FrozenEmbeddingSource frozen(sarn->Embeddings());
        Add(results["SARN"][city], task.Evaluate(frozen));
        tasks::SarnFineTuneSource tuned(*sarn);
        Add(results["SARN*"][city], task.Evaluate(tuned));
      }
      {
        baselines::HrnrLiteConfig hrnr_config;
        hrnr_config.seed = 41 + rep;
        hrnr_config.feature_dim_per_feature = 8;
        baselines::HrnrLite hrnr(network, hrnr_config);
        if (!hrnr.out_of_memory()) {
          tasks::HrnrSource source(hrnr);
          Add(results["HRNR"][city], task.Evaluate(source));
        }
      }
    }
  }

  std::vector<int> widths = {10, 13, 13, 13, 13, 13, 13};
  PrintRow({"Method", "CD MRE%", "CD MAE(m)", "BJ MRE%", "BJ MAE(m)", "SF MRE%",
            "SF MAE(m)"},
           widths);
  PrintRule(widths);
  for (const std::string& method : methods) {
    std::vector<std::string> row = {method};
    for (const std::string& city : cities) {
      auto it = results[method].find(city);
      if (it == results[method].end() || it->second.mre.count == 0) {
        row.insert(row.end(), {"OOM", "OOM"});
      } else {
        row.push_back(it->second.mre.Cell(1));
        row.push_back(it->second.mae.Cell(0));
      }
    }
    PrintRow(row, widths);
  }
  std::printf(
      "\nPaper shape: node2vec/SRN2Vec are far behind (50-60%% MRE); the GCL\n"
      "family is strong; SARN beats all self-supervised baselines; HRNR is\n"
      "the best overall; RNE is close to SARN*.\n");
}

}  // namespace
}  // namespace sarn::bench

int main() {
  sarn::bench::Run();
  return 0;
}
