// Shared infrastructure for the table/figure reproduction benches.
//
// Every bench binary reads the same environment knobs:
//   SARN_SCALE  — city size multiplier (1.0 = paper-size networks; default
//                 keeps each bench in the minutes range on a laptop).
//   SARN_EPOCHS — self-supervised training epochs per method.
//   SARN_REPS   — repetitions with different seeds (paper: 5; default 1).
//   SARN_TRAJS  — trajectories per trajectory dataset.
// Results print as fixed-width tables mirroring the paper's layout; see
// EXPERIMENTS.md for the paper-vs-measured record.

#ifndef SARN_BENCH_BENCH_COMMON_H_
#define SARN_BENCH_BENCH_COMMON_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/sarn_model.h"
#include "roadnet/road_network.h"
#include "roadnet/synthetic_city.h"
#include "tasks/road_property_task.h"
#include "tasks/spd_task.h"
#include "tasks/traj_similarity_task.h"
#include "tensor/tensor.h"
#include "traj/trajectory.h"

namespace sarn::bench {

struct BenchEnv {
  double scale = 0.02;
  int epochs = 20;
  int reps = 1;
  int trajectories = 240;
  int traj_max_segments = 60;
};

/// Reads SARN_* environment overrides.
BenchEnv GetEnv();

/// Builds the named synthetic city ("CD", "BJ", "SF", "SF-S", "SF-L").
roadnet::RoadNetwork BuildCity(const std::string& name, const BenchEnv& env);

/// SARN hyper-parameters scaled for bench runtimes (paper defaults
/// otherwise); the negative-sampling grid is fitted to the network extent.
/// `seed` shifts all stochastic components per repetition.
core::SarnConfig BenchSarnConfig(const BenchEnv& env, uint64_t seed,
                                 const roadnet::RoadNetwork& network);

/// One trained embedding method.
struct EmbeddingRun {
  tensor::Tensor embeddings;  // Undefined on OOM.
  double train_seconds = 0.0;
  bool out_of_memory = false;
};

/// Self-supervised method names in paper order.
const std::vector<std::string>& SelfSupervisedMethods();  // node2vec..SARN

/// Trains one self-supervised method ("node2vec", "SRN2Vec", "GraphCL",
/// "GCA", "SARN") or the supervised-reused "RNE".
EmbeddingRun RunMethod(const std::string& name, const roadnet::RoadNetwork& network,
                       const BenchEnv& env, uint64_t seed);

/// Trains a full SARN model (for SARN* fine-tuning and the ablations).
std::unique_ptr<core::SarnModel> TrainSarn(const roadnet::RoadNetwork& network,
                                           const core::SarnConfig& config);

/// Generates, map-matches and truncates a trajectory dataset. `legs` > 1
/// chains multiple OD trips per trajectory (long-trajectory sweeps).
std::vector<traj::MatchedTrajectory> MakeTrajectories(const roadnet::RoadNetwork& network,
                                                      int count, int max_segments,
                                                      uint64_t seed, int legs = 1);

// --- Aggregation over repetitions ------------------------------------------

struct Stat {
  double mean = 0.0;
  double stddev = 0.0;
  int count = 0;

  void Add(double value);
  /// "96.75±0.81"-style cell.
  std::string Cell(int decimals = 2) const;
};

// --- Table printing -----------------------------------------------------------

void PrintTitle(const std::string& title);
void PrintRule(const std::vector<int>& widths);
void PrintRow(const std::vector<std::string>& cells, const std::vector<int>& widths);

/// "93.42" with the given decimals.
std::string Num(double value, int decimals = 2);

}  // namespace sarn::bench

#endif  // SARN_BENCH_BENCH_COMMON_H_
