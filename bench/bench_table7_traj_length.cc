// Reproduces Table 7: impact of the number of road segments per trajectory
// (60 / 120 / 180) on trajectory-similarity metrics, on the BJ-like dataset
// (T-Drive substitute), for SRN2Vec, SARN, SARN* and NEUTRAJ.

#include <cstdio>
#include <map>

#include "baselines/neutraj_lite.h"
#include "bench_common.h"
#include "tasks/embedding_source.h"

namespace sarn::bench {
namespace {

struct Cells {
  Stat hr5, hr20, r5_20;
};

void Add(Cells& cells, const tasks::TrajSimResult& r) {
  cells.hr5.Add(100.0 * r.hr5);
  cells.hr20.Add(100.0 * r.hr20);
  cells.r5_20.Add(100.0 * r.r5_20);
}

void Run() {
  BenchEnv env = GetEnv();
  PrintTitle("Table 7: Impact of Trajectory Length (BJ-like, scale=" +
             Num(env.scale, 3) + ")");
  const std::vector<int> lengths = {60, 120, 180};
  const std::vector<std::string> methods = {"SRN2Vec", "SARN", "SARN*", "NEUTRAJ"};
  // results[method][length]
  std::map<std::string, std::map<int, Cells>> results;

  roadnet::RoadNetwork network = BuildCity("BJ", env);
  std::printf("[BJ] %lld segments\n", static_cast<long long>(network.num_segments()));
  for (int rep = 0; rep < env.reps; ++rep) {
    EmbeddingRun srn2vec = RunMethod("SRN2Vec", network, env, rep);
    auto sarn = TrainSarn(network, BenchSarnConfig(env, rep, network));
    tensor::Tensor sarn_embeddings = sarn->Embeddings();

    for (int length : lengths) {
      // Chained taxi-style trips so that raw trajectories exceed 180
      // segments before truncation (T-Drive's taxis drive all day).
      std::vector<traj::MatchedTrajectory> trajectories =
          MakeTrajectories(network, env.trajectories, length, rep, /*legs=*/10);
      tasks::TrajSimConfig task_config;
      task_config.seed = 71 + rep;
      tasks::TrajectorySimilarityTask task(network, trajectories, task_config);

      tasks::FrozenEmbeddingSource srn_source(srn2vec.embeddings);
      Add(results["SRN2Vec"][length], task.Evaluate(srn_source));
      tasks::FrozenEmbeddingSource sarn_source(sarn_embeddings);
      Add(results["SARN"][length], task.Evaluate(sarn_source));
      {
        tasks::SarnFineTuneSource tuned(*sarn);
        Add(results["SARN*"][length], task.Evaluate(tuned));
      }
      baselines::NeutrajLiteConfig neutraj_config;
      neutraj_config.seed = 43 + rep;
      Add(results["NEUTRAJ"][length], task.EvaluateNeutraj(neutraj_config));
    }
  }

  std::vector<int> widths = {8, 10, 12, 12, 12};
  for (const char* metric : {"HR@5", "HR@20", "R5@20"}) {
    std::printf("\n%s (%%)\n", metric);
    PrintRow({"Method", "", "60", "120", "180"}, widths);
    PrintRule(widths);
    for (const std::string& method : methods) {
      std::vector<std::string> row = {method, ""};
      for (int length : lengths) {
        Cells& cells = results[method][length];
        if (std::string(metric) == "HR@5") {
          row.push_back(cells.hr5.Cell(1));
        } else if (std::string(metric) == "HR@20") {
          row.push_back(cells.hr20.Cell(1));
        } else {
          row.push_back(cells.r5_20.Cell(1));
        }
      }
      PrintRow(row, widths);
    }
  }
  std::printf(
      "\nPaper shape: all methods degrade as trajectories lengthen (RNN\n"
      "sequence-length effect); SARN > SRN2Vec everywhere; SARN* tracks\n"
      "NEUTRAJ closely at every length.\n");
}

}  // namespace
}  // namespace sarn::bench

int main() {
  sarn::bench::Run();
  return 0;
}
