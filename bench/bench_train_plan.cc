// Step-plan engine bench (DESIGN.md §15): dynamic tape vs. record/replay.
//
// Trains the same SARN config twice with identical seeds — once with the
// plan engine off (the dynamic tape) and once in replay mode — and compares
// steady-state per-step latency. "Steady state" skips the warm-up epochs
// where the negative queues are still filling and the plan cache is still
// capturing/verifying; after that every full batch of an epoch replays from
// the AOT-packed arena with fused grad kernels.
//
// The two runs are bitwise identical by construction (the plan engine's
// headline invariant); the bench asserts it on the per-epoch loss series.
//
// A machine-readable summary lands at $SARN_PLAN_JSON when set
// (run_benches.sh points it at bench_out/BENCH_plan.json):
//   speedup            — dynamic / replay steady-state step latency (>= 1.2
//                        is the acceptance bar).
//   steady_pool_misses — allocator pool misses across the replay run's
//                        steady-state epochs (must be 0: every steady-state
//                        buffer is served from the plan arena or a warm
//                        free list, never the global allocator).
//
// The city is floored to a size where segments >> batch_size: plan keys
// carry the per-epoch view edge counts, so replay only pays off when many
// batches per epoch share one key.
//
// The same dynamic-vs-replay comparison then repeats for the non-default
// registry variants of the pluggable plane (DESIGN.md §16) — the RFN
// encoder and the Third-Law augmentation — proving the plan engine's
// speedup and bitwise identity are properties of the driver, not of the
// default composition. Per-variant rows land in the JSON under "variants".

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/sarn_model.h"
#include "obs/metrics.h"
#include "obs/metrics_sink.h"
#include "plan/plan.h"

namespace sarn::bench {
namespace {

/// Captures each EpochRecord plus a snapshot of the cumulative allocator and
/// plan counters at the epoch boundary (OnEpoch runs synchronously inside
/// Train, between epochs), so per-epoch deltas can be computed afterwards.
class PlanBenchSink : public obs::MetricsSink {
 public:
  struct Epoch {
    obs::EpochRecord record;
    uint64_t pool_misses = 0;  // sarn.alloc.pool_misses, cumulative.
    uint64_t replays = 0;      // sarn.plan.replays, cumulative.
    uint64_t captures = 0;     // sarn.plan.captures, cumulative.
    uint64_t divergences = 0;  // sarn.plan.divergences, cumulative.
  };

  void OnEpoch(const obs::EpochRecord& record) override {
    auto& registry = obs::MetricsRegistry::Default();
    Epoch e;
    e.record = record;
    e.pool_misses = registry.GetCounter("sarn.alloc.pool_misses").Value();
    e.replays = registry.GetCounter("sarn.plan.replays").Value();
    e.captures = registry.GetCounter("sarn.plan.captures").Value();
    e.divergences = registry.GetCounter("sarn.plan.divergences").Value();
    epochs.push_back(std::move(e));
  }
  void OnCheckpoint(const obs::CheckpointEvent&) override {}

  std::vector<Epoch> epochs;
};

/// Per-step seconds of one epoch: every per-batch phase (forward, loss,
/// backward, optimizer, queue push), excluding the per-epoch augmentation
/// and checkpoint writes the plan engine never touches.
double StepSeconds(const obs::EpochRecord& record) {
  double total = 0.0;
  for (const auto& [name, seconds] : record.phase_seconds) {
    if (name != "augmentation" && name != "checkpoint_write") total += seconds;
  }
  return total;
}

struct RunResult {
  PlanBenchSink sink;
  core::TrainStats stats;
};

void RunOne(const roadnet::RoadNetwork& network, const core::SarnConfig& config,
            plan::PlanMode mode, RunResult* out) {
  core::SarnModel model(network, config);
  core::TrainOptions options;
  options.plan_mode = mode;
  options.metrics_sink = &out->sink;
  out->stats = model.Train(options);
}

/// Mean steady-state per-step latency (ms) over epochs [warmup, end).
double SteadyStepMs(const PlanBenchSink& sink, int warmup) {
  double seconds = 0.0;
  int64_t batches = 0;
  for (size_t i = warmup; i < sink.epochs.size(); ++i) {
    seconds += StepSeconds(sink.epochs[i].record);
    batches += sink.epochs[i].record.batches;
  }
  return batches > 0 ? seconds / static_cast<double>(batches) * 1e3 : 0.0;
}

/// Mean steady-state ms/step of one named phase.
double SteadyPhaseMs(const PlanBenchSink& sink, int warmup,
                     const std::string& phase) {
  double seconds = 0.0;
  int64_t batches = 0;
  for (size_t i = warmup; i < sink.epochs.size(); ++i) {
    for (const auto& [name, s] : sink.epochs[i].record.phase_seconds) {
      if (name == phase) seconds += s;
    }
    batches += sink.epochs[i].record.batches;
  }
  return batches > 0 ? seconds / static_cast<double>(batches) * 1e3 : 0.0;
}

/// One composition's dynamic-vs-replay comparison.
struct VariantResult {
  std::string name;
  RunResult dynamic_run;
  RunResult replay_run;
  double dynamic_ms = 0.0;
  double replay_ms = 0.0;
  double speedup = 0.0;
  bool bitwise_identical = false;
  uint64_t steady_pool_misses = 0;
  uint64_t replays = 0;
  uint64_t captures = 0;
  uint64_t divergences = 0;
};

void RunVariant(const roadnet::RoadNetwork& network,
                const core::SarnConfig& config, int warmup,
                VariantResult* out) {
  RunOne(network, config, plan::PlanMode::kOff, &out->dynamic_run);
  // Counters are process-cumulative across variants; snapshot before the
  // replay run so this variant's totals come out as deltas.
  auto& registry = obs::MetricsRegistry::Default();
  const uint64_t replays_before =
      registry.GetCounter("sarn.plan.replays").Value();
  const uint64_t captures_before =
      registry.GetCounter("sarn.plan.captures").Value();
  RunOne(network, config, plan::PlanMode::kReplay, &out->replay_run);

  out->bitwise_identical =
      out->dynamic_run.stats.epoch_losses == out->replay_run.stats.epoch_losses;
  out->dynamic_ms = SteadyStepMs(out->dynamic_run.sink, warmup);
  out->replay_ms = SteadyStepMs(out->replay_run.sink, warmup);
  out->speedup =
      out->replay_ms > 0.0 ? out->dynamic_ms / out->replay_ms : 0.0;

  const auto& replay_epochs = out->replay_run.sink.epochs;
  if (static_cast<int>(replay_epochs.size()) > warmup) {
    const auto& first_steady = replay_epochs[warmup > 0 ? warmup - 1 : 0];
    const auto& last = replay_epochs.back();
    out->steady_pool_misses = last.pool_misses - first_steady.pool_misses;
    out->divergences = last.divergences - replay_epochs.front().divergences;
  }
  if (!replay_epochs.empty()) {
    out->replays = replay_epochs.back().replays - replays_before;
    out->captures = replay_epochs.back().captures - captures_before;
  }
}

int Main() {
  BenchEnv env = GetEnv();
  // Replay amortisation needs many batches per epoch sharing one plan key;
  // floor the city size and epoch count so the steady-state window exists
  // even under the fast default bench env.
  env.scale = std::max(env.scale, 0.1);
  env.epochs = std::max(env.epochs, 8);

  const auto network = BuildCity("CD", env);
  auto config = BenchSarnConfig(env, /*seed=*/0, network);
  const int warmup = std::min(3, env.epochs / 2);

  std::printf("segments=%lld batch_size=%lld epochs=%d warmup=%d\n",
              static_cast<long long>(network.num_segments()),
              static_cast<long long>(config.batch_size), env.epochs, warmup);

  // The default composition headlines; the non-default registry variants
  // re-prove the speedup + bitwise invariant through the same driver.
  std::vector<VariantResult> variants(3);
  variants[0].name = "sarn-default";
  RunVariant(network, config, warmup, &variants[0]);

  auto rfn_config = config;
  rfn_config.encoder = "rfn";
  variants[1].name = "encoder=rfn";
  RunVariant(network, rfn_config, warmup, &variants[1]);

  auto third_law_config = config;
  third_law_config.augmentation = "third-law";
  variants[2].name = "augmentation=third-law";
  RunVariant(network, third_law_config, warmup, &variants[2]);

  const VariantResult& base = variants[0];
  const RunResult& dynamic_run = base.dynamic_run;
  const RunResult& replay_run = base.replay_run;
  const bool bitwise_identical = base.bitwise_identical;
  const double dynamic_ms = base.dynamic_ms;
  const double replay_ms = base.replay_ms;
  const double speedup = base.speedup;
  const uint64_t steady_pool_misses = base.steady_pool_misses;
  const uint64_t replays = base.replays;
  const uint64_t captures = base.captures;
  const uint64_t divergences = base.divergences;

  auto& registry = obs::MetricsRegistry::Default();
  const double plan_nodes = registry.GetGauge("sarn.plan.nodes").Value();
  const double plan_slots = registry.GetGauge("sarn.plan.slots").Value();

  PrintTitle("Step-plan engine: dynamic tape vs. record/replay (steady state)");
  const std::vector<int> widths = {22, 14, 14, 10};
  PrintRow({"", "dynamic", "replay", ""}, widths);
  PrintRule(widths);
  PrintRow({"step latency (ms)", Num(dynamic_ms, 3), Num(replay_ms, 3),
            Num(speedup, 2) + "x"},
           widths);
  for (const char* phase : {"target_forward", "online_forward", "loss",
                            "backward", "optimizer_step", "queue_push"}) {
    const double d = SteadyPhaseMs(dynamic_run.sink, warmup, phase);
    const double r = SteadyPhaseMs(replay_run.sink, warmup, phase);
    PrintRow({std::string("  ") + phase, Num(d, 3), Num(r, 3),
              r > 0.0 ? Num(d / r, 2) + "x" : "-"},
             widths);
  }
  PrintRow({"final loss", Num(dynamic_run.stats.final_loss, 6),
            Num(replay_run.stats.final_loss, 6),
            bitwise_identical ? "bitwise" : "DIVERGED"},
           widths);
  std::printf(
      "replay: captures=%llu replays=%llu divergences=%llu "
      "steady_pool_misses=%llu plan_nodes=%.0f plan_slots=%.0f\n",
      static_cast<unsigned long long>(captures),
      static_cast<unsigned long long>(replays),
      static_cast<unsigned long long>(divergences),
      static_cast<unsigned long long>(steady_pool_misses), plan_nodes,
      plan_slots);

  PrintTitle("Per-variant replay (pluggable plane, DESIGN.md \xc2\xa7""16)");
  const std::vector<int> vwidths = {24, 14, 14, 10, 10};
  PrintRow({"variant", "dynamic (ms)", "replay (ms)", "speedup", ""}, vwidths);
  PrintRule(vwidths);
  for (const VariantResult& v : variants) {
    PrintRow({v.name, Num(v.dynamic_ms, 3), Num(v.replay_ms, 3),
              Num(v.speedup, 2) + "x",
              v.bitwise_identical ? "bitwise" : "DIVERGED"},
             vwidths);
  }

  bool all_bitwise = true;
  for (const VariantResult& v : variants) all_bitwise &= v.bitwise_identical;

  if (const char* path = std::getenv("SARN_PLAN_JSON")) {
    if (std::FILE* f = std::fopen(path, "w")) {
      std::fprintf(
          f,
          "{\"bench\":\"train_plan\",\"segments\":%lld,\"batch_size\":%lld,"
          "\"epochs\":%d,\"warmup_epochs\":%d,\"dynamic_step_ms\":%.6f,"
          "\"replay_step_ms\":%.6f,\"speedup\":%.4f,"
          "\"steady_pool_misses\":%llu,\"captures\":%llu,\"replays\":%llu,"
          "\"divergences\":%llu,\"plan_nodes\":%.0f,\"plan_slots\":%.0f,"
          "\"bitwise_identical\":%s,\"variants\":[",
          static_cast<long long>(network.num_segments()),
          static_cast<long long>(config.batch_size), env.epochs, warmup,
          dynamic_ms, replay_ms, speedup,
          static_cast<unsigned long long>(steady_pool_misses),
          static_cast<unsigned long long>(captures),
          static_cast<unsigned long long>(replays),
          static_cast<unsigned long long>(divergences), plan_nodes, plan_slots,
          bitwise_identical ? "true" : "false");
      for (size_t i = 0; i < variants.size(); ++i) {
        const VariantResult& v = variants[i];
        std::fprintf(
            f,
            "%s{\"variant\":\"%s\",\"dynamic_step_ms\":%.6f,"
            "\"replay_step_ms\":%.6f,\"speedup\":%.4f,"
            "\"steady_pool_misses\":%llu,\"captures\":%llu,\"replays\":%llu,"
            "\"divergences\":%llu,\"bitwise_identical\":%s}",
            i == 0 ? "" : ",", v.name.c_str(), v.dynamic_ms, v.replay_ms,
            v.speedup, static_cast<unsigned long long>(v.steady_pool_misses),
            static_cast<unsigned long long>(v.captures),
            static_cast<unsigned long long>(v.replays),
            static_cast<unsigned long long>(v.divergences),
            v.bitwise_identical ? "true" : "false");
      }
      std::fprintf(f, "]}\n");
      std::fclose(f);
      std::printf("wrote %s\n", path);
    } else {
      std::printf("could not open SARN_PLAN_JSON path %s\n", path);
    }
  }
  return all_bitwise ? 0 : 1;
}

}  // namespace
}  // namespace sarn::bench

int main() { return sarn::bench::Main(); }
