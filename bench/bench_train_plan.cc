// Step-plan engine bench (DESIGN.md §15): dynamic tape vs. record/replay.
//
// Trains the same SARN config twice with identical seeds — once with the
// plan engine off (the dynamic tape) and once in replay mode — and compares
// steady-state per-step latency. "Steady state" skips the warm-up epochs
// where the negative queues are still filling and the plan cache is still
// capturing/verifying; after that every full batch of an epoch replays from
// the AOT-packed arena with fused grad kernels.
//
// The two runs are bitwise identical by construction (the plan engine's
// headline invariant); the bench asserts it on the per-epoch loss series.
//
// A machine-readable summary lands at $SARN_PLAN_JSON when set
// (run_benches.sh points it at bench_out/BENCH_plan.json):
//   speedup            — dynamic / replay steady-state step latency (>= 1.2
//                        is the acceptance bar).
//   steady_pool_misses — allocator pool misses across the replay run's
//                        steady-state epochs (must be 0: every steady-state
//                        buffer is served from the plan arena or a warm
//                        free list, never the global allocator).
//
// The city is floored to a size where segments >> batch_size: plan keys
// carry the per-epoch view edge counts, so replay only pays off when many
// batches per epoch share one key.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/sarn_model.h"
#include "obs/metrics.h"
#include "obs/metrics_sink.h"
#include "plan/plan.h"

namespace sarn::bench {
namespace {

/// Captures each EpochRecord plus a snapshot of the cumulative allocator and
/// plan counters at the epoch boundary (OnEpoch runs synchronously inside
/// Train, between epochs), so per-epoch deltas can be computed afterwards.
class PlanBenchSink : public obs::MetricsSink {
 public:
  struct Epoch {
    obs::EpochRecord record;
    uint64_t pool_misses = 0;  // sarn.alloc.pool_misses, cumulative.
    uint64_t replays = 0;      // sarn.plan.replays, cumulative.
    uint64_t captures = 0;     // sarn.plan.captures, cumulative.
    uint64_t divergences = 0;  // sarn.plan.divergences, cumulative.
  };

  void OnEpoch(const obs::EpochRecord& record) override {
    auto& registry = obs::MetricsRegistry::Default();
    Epoch e;
    e.record = record;
    e.pool_misses = registry.GetCounter("sarn.alloc.pool_misses").Value();
    e.replays = registry.GetCounter("sarn.plan.replays").Value();
    e.captures = registry.GetCounter("sarn.plan.captures").Value();
    e.divergences = registry.GetCounter("sarn.plan.divergences").Value();
    epochs.push_back(std::move(e));
  }
  void OnCheckpoint(const obs::CheckpointEvent&) override {}

  std::vector<Epoch> epochs;
};

/// Per-step seconds of one epoch: every per-batch phase (forward, loss,
/// backward, optimizer, queue push), excluding the per-epoch augmentation
/// and checkpoint writes the plan engine never touches.
double StepSeconds(const obs::EpochRecord& record) {
  double total = 0.0;
  for (const auto& [name, seconds] : record.phase_seconds) {
    if (name != "augmentation" && name != "checkpoint_write") total += seconds;
  }
  return total;
}

struct RunResult {
  PlanBenchSink sink;
  core::TrainStats stats;
};

void RunOne(const roadnet::RoadNetwork& network, const core::SarnConfig& config,
            plan::PlanMode mode, RunResult* out) {
  core::SarnModel model(network, config);
  core::TrainOptions options;
  options.plan_mode = mode;
  options.metrics_sink = &out->sink;
  out->stats = model.Train(options);
}

/// Mean steady-state per-step latency (ms) over epochs [warmup, end).
double SteadyStepMs(const PlanBenchSink& sink, int warmup) {
  double seconds = 0.0;
  int64_t batches = 0;
  for (size_t i = warmup; i < sink.epochs.size(); ++i) {
    seconds += StepSeconds(sink.epochs[i].record);
    batches += sink.epochs[i].record.batches;
  }
  return batches > 0 ? seconds / static_cast<double>(batches) * 1e3 : 0.0;
}

/// Mean steady-state ms/step of one named phase.
double SteadyPhaseMs(const PlanBenchSink& sink, int warmup,
                     const std::string& phase) {
  double seconds = 0.0;
  int64_t batches = 0;
  for (size_t i = warmup; i < sink.epochs.size(); ++i) {
    for (const auto& [name, s] : sink.epochs[i].record.phase_seconds) {
      if (name == phase) seconds += s;
    }
    batches += sink.epochs[i].record.batches;
  }
  return batches > 0 ? seconds / static_cast<double>(batches) * 1e3 : 0.0;
}

int Main() {
  BenchEnv env = GetEnv();
  // Replay amortisation needs many batches per epoch sharing one plan key;
  // floor the city size and epoch count so the steady-state window exists
  // even under the fast default bench env.
  env.scale = std::max(env.scale, 0.1);
  env.epochs = std::max(env.epochs, 8);

  const auto network = BuildCity("CD", env);
  auto config = BenchSarnConfig(env, /*seed=*/0, network);
  const int warmup = std::min(3, env.epochs / 2);

  std::printf("segments=%lld batch_size=%lld epochs=%d warmup=%d\n",
              static_cast<long long>(network.num_segments()),
              static_cast<long long>(config.batch_size), env.epochs, warmup);

  RunResult dynamic_run;
  RunOne(network, config, plan::PlanMode::kOff, &dynamic_run);
  RunResult replay_run;
  RunOne(network, config, plan::PlanMode::kReplay, &replay_run);

  const bool bitwise_identical =
      dynamic_run.stats.epoch_losses == replay_run.stats.epoch_losses;

  const double dynamic_ms = SteadyStepMs(dynamic_run.sink, warmup);
  const double replay_ms = SteadyStepMs(replay_run.sink, warmup);
  const double speedup = replay_ms > 0.0 ? dynamic_ms / replay_ms : 0.0;

  const auto& replay_epochs = replay_run.sink.epochs;
  uint64_t steady_pool_misses = 0, replays = 0, captures = 0, divergences = 0;
  if (static_cast<int>(replay_epochs.size()) > warmup) {
    const auto& first_steady = replay_epochs[warmup > 0 ? warmup - 1 : 0];
    const auto& last = replay_epochs.back();
    steady_pool_misses = last.pool_misses - first_steady.pool_misses;
    divergences = last.divergences - replay_epochs.front().divergences;
  }
  if (!replay_epochs.empty()) {
    // Plan counters were zero before the replay run (the dynamic run never
    // touches them), so the final cumulative values are this run's totals.
    replays = replay_epochs.back().replays;
    captures = replay_epochs.back().captures;
  }

  auto& registry = obs::MetricsRegistry::Default();
  const double plan_nodes = registry.GetGauge("sarn.plan.nodes").Value();
  const double plan_slots = registry.GetGauge("sarn.plan.slots").Value();

  PrintTitle("Step-plan engine: dynamic tape vs. record/replay (steady state)");
  const std::vector<int> widths = {22, 14, 14, 10};
  PrintRow({"", "dynamic", "replay", ""}, widths);
  PrintRule(widths);
  PrintRow({"step latency (ms)", Num(dynamic_ms, 3), Num(replay_ms, 3),
            Num(speedup, 2) + "x"},
           widths);
  for (const char* phase : {"target_forward", "online_forward", "loss",
                            "backward", "optimizer_step", "queue_push"}) {
    const double d = SteadyPhaseMs(dynamic_run.sink, warmup, phase);
    const double r = SteadyPhaseMs(replay_run.sink, warmup, phase);
    PrintRow({std::string("  ") + phase, Num(d, 3), Num(r, 3),
              r > 0.0 ? Num(d / r, 2) + "x" : "-"},
             widths);
  }
  PrintRow({"final loss", Num(dynamic_run.stats.final_loss, 6),
            Num(replay_run.stats.final_loss, 6),
            bitwise_identical ? "bitwise" : "DIVERGED"},
           widths);
  std::printf(
      "replay: captures=%llu replays=%llu divergences=%llu "
      "steady_pool_misses=%llu plan_nodes=%.0f plan_slots=%.0f\n",
      static_cast<unsigned long long>(captures),
      static_cast<unsigned long long>(replays),
      static_cast<unsigned long long>(divergences),
      static_cast<unsigned long long>(steady_pool_misses), plan_nodes,
      plan_slots);

  if (const char* path = std::getenv("SARN_PLAN_JSON")) {
    if (std::FILE* f = std::fopen(path, "w")) {
      std::fprintf(
          f,
          "{\"bench\":\"train_plan\",\"segments\":%lld,\"batch_size\":%lld,"
          "\"epochs\":%d,\"warmup_epochs\":%d,\"dynamic_step_ms\":%.6f,"
          "\"replay_step_ms\":%.6f,\"speedup\":%.4f,"
          "\"steady_pool_misses\":%llu,\"captures\":%llu,\"replays\":%llu,"
          "\"divergences\":%llu,\"plan_nodes\":%.0f,\"plan_slots\":%.0f,"
          "\"bitwise_identical\":%s}\n",
          static_cast<long long>(network.num_segments()),
          static_cast<long long>(config.batch_size), env.epochs, warmup,
          dynamic_ms, replay_ms, speedup,
          static_cast<unsigned long long>(steady_pool_misses),
          static_cast<unsigned long long>(captures),
          static_cast<unsigned long long>(replays),
          static_cast<unsigned long long>(divergences), plan_nodes, plan_slots,
          bitwise_identical ? "true" : "false");
      std::fclose(f);
      std::printf("wrote %s\n", path);
    } else {
      std::printf("could not open SARN_PLAN_JSON path %s\n", path);
    }
  }
  return bitwise_identical ? 0 : 1;
}

}  // namespace
}  // namespace sarn::bench

int main() { return sarn::bench::Main(); }
