// Reproduces Figure 6: SARN parameter studies on the SF-like network,
// measured with the trajectory-similarity task (HR@5 / HR@20), as in the
// paper:
//   6a: embedding dimensionality d        (paper 32..512; scaled 16..128)
//   6b: cell side length clen             (fractions of the network extent)
//   6c: loss trade-off lambda             (0..1)
//   6d: negative-queue budget K           (250..2000)
//   6e: corruption-rate grid rho_t x rho_s (0.2..0.8)
//
// Usage: bench_fig6_params [d|clen|lambda|k|rho|all]   (default: all)

#include <cstdio>
#include <cstring>
#include <string>

#include "bench_common.h"
#include "tasks/embedding_source.h"

namespace sarn::bench {
namespace {

struct Sweep {
  roadnet::RoadNetwork* network = nullptr;
  tasks::TrajectorySimilarityTask* task = nullptr;
  BenchEnv env;
};

struct Point {
  double hr5;
  double hr20;
};

Point Measure(Sweep& sweep, const core::SarnConfig& config) {
  auto model = TrainSarn(*sweep.network, config);
  tasks::FrozenEmbeddingSource source(model->Embeddings());
  tasks::TrajSimResult r = sweep.task->Evaluate(source);
  return {100.0 * r.hr5, 100.0 * r.hr20};
}

void SweepD(Sweep& sweep) {
  PrintTitle("Fig 6a: embedding dimensionality d");
  std::vector<int> widths = {10, 10, 10};
  PrintRow({"d", "HR@5", "HR@20"}, widths);
  PrintRule(widths);
  for (int64_t d : {16, 32, 64, 128}) {
    core::SarnConfig config = BenchSarnConfig(sweep.env, 0, *sweep.network);
    config.embedding_dim = d;
    config.hidden_dim = d;
    config.projection_dim = std::max<int64_t>(8, d / 2);
    Point p = Measure(sweep, config);
    PrintRow({std::to_string(d), Num(p.hr5, 1), Num(p.hr20, 1)}, widths);
  }
  std::printf("Paper shape: rises to a peak (d=128 at full scale), then over-fits.\n");
}

void SweepClen(Sweep& sweep) {
  PrintTitle("Fig 6b: cell side length clen");
  std::vector<int> widths = {12, 10, 10};
  PrintRow({"clen (m)", "HR@5", "HR@20"}, widths);
  PrintRule(widths);
  double extent = std::max(sweep.network->bounding_box().WidthMeters(),
                           sweep.network->bounding_box().HeightMeters());
  for (double fraction : {1.0 / 12, 1.0 / 8, 1.0 / 6, 1.0 / 4, 1.0 / 2}) {
    core::SarnConfig config = BenchSarnConfig(sweep.env, 0, *sweep.network);
    config.cell_side_meters = std::max(100.0, extent * fraction);
    Point p = Measure(sweep, config);
    PrintRow({Num(config.cell_side_meters, 0), Num(p.hr5, 1), Num(p.hr20, 1)}, widths);
  }
  std::printf("Paper shape: peak at an intermediate clen (600 m on SF); too-small\n"
              "cells starve local negatives, too-large cells drown the global loss.\n");
}

void SweepLambda(Sweep& sweep) {
  PrintTitle("Fig 6c: loss trade-off lambda");
  std::vector<int> widths = {10, 10, 10};
  PrintRow({"lambda", "HR@5", "HR@20"}, widths);
  PrintRule(widths);
  for (double lambda : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    core::SarnConfig config = BenchSarnConfig(sweep.env, 0, *sweep.network);
    config.lambda = lambda;
    Point p = Measure(sweep, config);
    PrintRow({Num(lambda, 1), Num(p.hr5, 1), Num(p.hr20, 1)}, widths);
  }
  std::printf("Paper shape: best in [0.3, 0.5]; lambda = 1 (local-only) collapses.\n");
}

void SweepK(Sweep& sweep) {
  PrintTitle("Fig 6d: negative sample budget K");
  std::vector<int> widths = {10, 10, 10};
  PrintRow({"K", "HR@5", "HR@20"}, widths);
  PrintRule(widths);
  for (int k : {250, 500, 1000, 2000}) {
    core::SarnConfig config = BenchSarnConfig(sweep.env, 0, *sweep.network);
    config.queue_budget = k;
    Point p = Measure(sweep, config);
    PrintRow({std::to_string(k), Num(p.hr5, 1), Num(p.hr20, 1)}, widths);
  }
  std::printf("Paper shape: monotone gains with K, saturating past 1000.\n");
}

void SweepRho(Sweep& sweep) {
  PrintTitle("Fig 6e: corruption rates rho_t x rho_s (HR@5)");
  std::vector<double> rates = {0.2, 0.4, 0.6, 0.8};
  std::vector<int> widths = {12, 9, 9, 9, 9};
  PrintRow({"rho_s \\ rho_t", "0.2", "0.4", "0.6", "0.8"}, widths);
  PrintRule(widths);
  for (double rho_s : rates) {
    std::vector<std::string> row = {Num(rho_s, 1)};
    for (double rho_t : rates) {
      core::SarnConfig config = BenchSarnConfig(sweep.env, 0, *sweep.network);
      config.rho_t = rho_t;
      config.rho_s = rho_s;
      Point p = Measure(sweep, config);
      row.push_back(Num(p.hr5, 1));
    }
    PrintRow(row, widths);
  }
  std::printf("Paper shape: best near (0.4, 0.4); high rates hurt, and corrupting\n"
              "spatial edges (rho_s) hurts faster than corrupting topological ones.\n");
}

void Run(const std::string& which) {
  BenchEnv env = GetEnv();
  roadnet::RoadNetwork network = BuildCity("SF", env);
  std::printf("[SF] %lld segments\n", static_cast<long long>(network.num_segments()));
  std::vector<traj::MatchedTrajectory> trajectories =
      MakeTrajectories(network, env.trajectories, env.traj_max_segments, 0);
  tasks::TrajSimConfig traj_config;
  tasks::TrajectorySimilarityTask task(network, trajectories, traj_config);
  Sweep sweep{&network, &task, env};

  if (which == "d" || which == "all") SweepD(sweep);
  if (which == "clen" || which == "all") SweepClen(sweep);
  if (which == "lambda" || which == "all") SweepLambda(sweep);
  if (which == "k" || which == "all") SweepK(sweep);
  if (which == "rho" || which == "all") SweepRho(sweep);
}

}  // namespace
}  // namespace sarn::bench

int main(int argc, char** argv) {
  std::string which = argc > 1 ? argv[1] : "all";
  sarn::bench::Run(which);
  return 0;
}
