// Extension experiment (paper future work, §6): route travel-time estimation
// from frozen embeddings — a contextual-signal task beyond the paper's three.
// Compares the self-supervised methods on the CD-like network; reported as
// MAE (seconds) and MAPE over held-out routes.

#include <cstdio>

#include "bench_common.h"
#include "tasks/embedding_source.h"
#include "tasks/travel_time_task.h"
#include "traj/trajectory_generator.h"

namespace sarn::bench {
namespace {

void Run() {
  BenchEnv env = GetEnv();
  PrintTitle("Extension: Route Travel-Time Estimation (CD-like, scale=" +
             Num(env.scale, 3) + ")");
  roadnet::RoadNetwork network = BuildCity("CD", env);
  std::printf("[CD] %lld segments\n", static_cast<long long>(network.num_segments()));

  traj::TrajectoryGeneratorConfig generator_config;
  generator_config.min_route_segments = 8;
  traj::TrajectoryGenerator generator(network, generator_config);
  std::vector<std::vector<int64_t>> routes;
  for (const auto& trip : generator.Generate(env.trajectories)) {
    routes.push_back(trip.ground_truth);
  }

  std::vector<int> widths = {10, 14, 14};
  PrintRow({"Method", "MAE (s)", "MAPE (%)"}, widths);
  PrintRule(widths);
  for (const std::string& method : SelfSupervisedMethods()) {
    Stat mae, mape;
    for (int rep = 0; rep < env.reps; ++rep) {
      tasks::TravelTimeConfig task_config;
      task_config.seed = 81 + rep;
      tasks::TravelTimeTask task(network, routes, task_config);
      EmbeddingRun run = RunMethod(method, network, env, rep);
      if (run.out_of_memory) continue;
      tasks::FrozenEmbeddingSource source(run.embeddings);
      tasks::TravelTimeResult r = task.Evaluate(source);
      mae.Add(r.mae_seconds);
      mape.Add(100.0 * r.mape);
    }
    PrintRow({method, mae.Cell(1), mape.Cell(1)}, widths);
  }
  std::printf(
      "\nExpectation: feature-aware embeddings (SARN, GraphCL, GCA) dominate,\n"
      "since travel time derives from road class + length, both embedding\n"
      "inputs; topology-only node2vec trails.\n");
}

}  // namespace
}  // namespace sarn::bench

int main() {
  sarn::bench::Run();
  return 0;
}
