// White-box tests of SARN's two-level loss (Eqs. 15-17) through the
// SarnModelTestPeer friend: loss endpoints at lambda in {0, 1}, behavior as
// queues fill, and alignment sensitivity of the positive term.

#include <cmath>

#include <gtest/gtest.h>

#include "core/sarn_model.h"
#include "roadnet/synthetic_city.h"
#include "tensor/ops.h"

namespace sarn::core {

// Declared friend in SarnModel.
class SarnModelTestPeer {
 public:
  explicit SarnModelTestPeer(SarnModel& model) : model_(&model) {}

  tensor::Tensor ComputeLoss(const tensor::Tensor& z, const tensor::Tensor& z_prime,
                             const std::vector<int64_t>& batch, Rng& rng) {
    return model_->ComputeLoss(z, z_prime, batch, rng);
  }

  NegativeQueueStore& queues() {
    NegativeQueueStore* store = model_->sampler_->queue_store();
    EXPECT_NE(store, nullptr);
    return *store;
  }

  tensor::Tensor OnlineEncode(const nn::EdgeList& edges) {
    GraphView view;
    view.edges = edges;
    return model_->OnlineEncode(view);
  }

 private:
  SarnModel* model_;
};

namespace {

using tensor::Tensor;

class SarnInternalsTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    roadnet::SyntheticCityConfig city;
    city.rows = 8;
    city.cols = 8;
    network_ = new roadnet::RoadNetwork(roadnet::GenerateSyntheticCity(city));
  }
  static void TearDownTestSuite() {
    delete network_;
    network_ = nullptr;
  }

  static SarnConfig SmallConfig() {
    SarnConfig config;
    config.hidden_dim = 8;
    config.embedding_dim = 8;
    config.projection_dim = 4;
    config.gat_layers = 1;
    config.gat_heads = 2;
    config.feature_dim_per_feature = 2;
    config.cell_side_meters = 300.0;
    config.queue_budget = 200;
    return config;
  }

  // A batch of unit-norm projected embeddings with a controllable alignment
  // between z and z'.
  static std::pair<Tensor, Tensor> MakeBatch(int64_t m, int64_t dz, float alignment,
                                             uint64_t seed) {
    Rng rng(seed);
    Tensor z = tensor::RowL2Normalize(Tensor::Randn({m, dz}, rng)).Detach();
    Tensor noise = tensor::RowL2Normalize(Tensor::Randn({m, dz}, rng)).Detach();
    Tensor mixed = tensor::Add(tensor::MulScalar(z, alignment),
                               tensor::MulScalar(noise, 1.0f - alignment));
    Tensor z_prime = tensor::RowL2Normalize(mixed).Detach();
    return {z, z_prime};
  }

  static roadnet::RoadNetwork* network_;
};

roadnet::RoadNetwork* SarnInternalsTest::network_ = nullptr;

TEST_F(SarnInternalsTest, LossZeroishWithEmptyQueues) {
  SarnModel model(*network_, SmallConfig());
  SarnModelTestPeer peer(model);
  auto [z, z_prime] = MakeBatch(8, 4, 1.0f, 1);
  std::vector<int64_t> batch = {0, 1, 2, 3, 4, 5, 6, 7};
  Rng rng(2);
  // No negatives anywhere: both loss terms have nothing to contrast with.
  Tensor loss = peer.ComputeLoss(z, z_prime, batch, rng);
  EXPECT_NEAR(loss.item(), 0.0f, 1e-4f);
}

TEST_F(SarnInternalsTest, AlignedPositivesGiveLowerLoss) {
  SarnModel model(*network_, SmallConfig());
  SarnModelTestPeer peer(model);
  // Fill queues with random embeddings for every segment.
  Rng fill_rng(3);
  for (int64_t s = 0; s < network_->num_segments(); ++s) {
    Tensor e = tensor::RowL2Normalize(Tensor::Randn({1, 4}, fill_rng));
    peer.queues().Push(s, e.data().ToVector());
  }
  std::vector<int64_t> batch = {0, 1, 2, 3, 4, 5, 6, 7};
  Rng rng(4);
  auto [z_good, zp_good] = MakeBatch(8, 4, 1.0f, 5);
  auto [z_bad, zp_bad] = MakeBatch(8, 4, 0.0f, 5);
  float good = peer.ComputeLoss(z_good, zp_good, batch, rng).item();
  float bad = peer.ComputeLoss(z_bad, zp_bad, batch, rng).item();
  EXPECT_LT(good, bad);
}

TEST_F(SarnInternalsTest, LambdaEndpointsSelectLossTerms) {
  // lambda = 1: pure local loss; with empty LOCAL queues but other cells
  // filled, the loss must be ~0. lambda = 0: pure global loss, which is
  // positive in the same situation.
  SarnConfig config = SmallConfig();
  std::vector<int64_t> batch = {0, 1, 2, 3};
  auto [z, z_prime] = MakeBatch(4, 4, 1.0f, 6);

  auto loss_with_lambda = [&](double lambda) {
    SarnConfig c = config;
    c.lambda = lambda;
    SarnModel model(*network_, c);
    SarnModelTestPeer peer(model);
    // Fill only cells that do NOT contain the batch anchors.
    Rng fill_rng(7);
    std::vector<int> anchor_cells;
    for (int64_t b : batch) anchor_cells.push_back(peer.queues().CellOf(b));
    for (int64_t s = 0; s < network_->num_segments(); ++s) {
      int cell = peer.queues().CellOf(s);
      bool is_anchor_cell = false;
      for (int c2 : anchor_cells) is_anchor_cell |= (c2 == cell);
      if (!is_anchor_cell) {
        Tensor e = tensor::RowL2Normalize(Tensor::Randn({1, 4}, fill_rng));
        peer.queues().Push(s, e.data().ToVector());
      }
    }
    Rng rng(8);
    return peer.ComputeLoss(z, z_prime, batch, rng).item();
  };

  float local_only = loss_with_lambda(1.0);
  float global_only = loss_with_lambda(0.0);
  // Local negatives empty -> local term ~0. Global negatives exist, but the
  // anchors' own cells are empty -> anchors are dropped from the global
  // term too, so it is also 0 here. Refill including anchor cells:
  EXPECT_NEAR(local_only, 0.0f, 1e-4f);
  EXPECT_NEAR(global_only, 0.0f, 1e-4f);
}

TEST_F(SarnInternalsTest, GlobalLossPositiveWhenCellsPopulated) {
  SarnConfig config = SmallConfig();
  config.lambda = 0.0;  // Global only.
  SarnModel model(*network_, config);
  SarnModelTestPeer peer(model);
  Rng fill_rng(9);
  for (int64_t s = 0; s < network_->num_segments(); ++s) {
    Tensor e = tensor::RowL2Normalize(Tensor::Randn({1, 4}, fill_rng));
    peer.queues().Push(s, e.data().ToVector());
  }
  ASSERT_GE(peer.queues().NonEmptyCells().size(), 2u);
  std::vector<int64_t> batch = {0, 1, 2, 3};
  auto [z, z_prime] = MakeBatch(4, 4, 1.0f, 10);
  Rng rng(11);
  float loss = peer.ComputeLoss(z, z_prime, batch, rng).item();
  EXPECT_GT(loss, 0.01f);
}

TEST_F(SarnInternalsTest, RandomNegativeModeProducesInfoNceLoss) {
  SarnConfig config = SmallConfig();
  config.use_spatial_negatives = false;
  config.random_negatives = 8;
  SarnModel model(*network_, config);
  SarnModelTestPeer peer(model);
  Rng fill_rng(12);
  for (int64_t s = 0; s < network_->num_segments(); ++s) {
    Tensor e = tensor::RowL2Normalize(Tensor::Randn({1, 4}, fill_rng));
    peer.queues().Push(s, e.data().ToVector());
  }
  std::vector<int64_t> batch = {0, 1, 2, 3};
  auto [z, z_prime] = MakeBatch(4, 4, 0.5f, 13);
  Rng rng(14);
  float loss = peer.ComputeLoss(z, z_prime, batch, rng).item();
  EXPECT_GT(loss, 0.0f);
  EXPECT_TRUE(std::isfinite(loss));
}

TEST_F(SarnInternalsTest, LossBackwardReachesInputs) {
  SarnModel model(*network_, SmallConfig());
  SarnModelTestPeer peer(model);
  Rng fill_rng(15);
  for (int64_t s = 0; s < network_->num_segments(); ++s) {
    Tensor e = tensor::RowL2Normalize(Tensor::Randn({1, 4}, fill_rng));
    peer.queues().Push(s, e.data().ToVector());
  }
  Rng rng(16);
  Tensor z = tensor::RowL2Normalize(Tensor::Randn({4, 4}, rng));
  z.RequiresGrad();
  auto [unused, z_prime] = MakeBatch(4, 4, 1.0f, 17);
  (void)unused;
  std::vector<int64_t> batch = {0, 1, 2, 3};
  Tensor loss = peer.ComputeLoss(z, z_prime, batch, rng);
  loss.Backward();
  double grad_norm = 0;
  for (float g : z.grad()) grad_norm += std::fabs(g);
  EXPECT_GT(grad_norm, 0.0);
}

TEST_F(SarnInternalsTest, FitCellSideToNetworkClampsAndScales) {
  SarnConfig config;
  FitCellSideToNetwork(config, *network_, 4);
  double extent = std::max(network_->bounding_box().WidthMeters(),
                           network_->bounding_box().HeightMeters());
  EXPECT_NEAR(config.cell_side_meters, std::clamp(extent / 4.0, 150.0, 1200.0), 1e-9);
  FitCellSideToNetwork(config, *network_, 10000);
  EXPECT_DOUBLE_EQ(config.cell_side_meters, 150.0);  // Lower clamp.
}

TEST_F(SarnInternalsTest, EncodeIsDeterministicAcrossCalls) {
  SarnModel model(*network_, SmallConfig());
  Tensor a = model.Embeddings();
  Tensor b = model.Embeddings();
  for (int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_FLOAT_EQ(a.data()[static_cast<size_t>(i)], b.data()[static_cast<size_t>(i)]);
  }
}

}  // namespace
}  // namespace sarn::core
