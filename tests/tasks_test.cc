// Integration tests: the three downstream tasks end-to-end on a small
// synthetic city, with frozen, fine-tuned and supervised embedding sources.

#include <cmath>

#include <gtest/gtest.h>

#include "baselines/hrnr_lite.h"
#include "core/sarn_model.h"
#include "roadnet/synthetic_city.h"
#include "tasks/embedding_source.h"
#include "tasks/road_property_task.h"
#include "tasks/spd_task.h"
#include "tasks/traj_similarity_task.h"
#include "traj/map_matching.h"
#include "traj/trajectory_generator.h"

namespace sarn::tasks {
namespace {

using tensor::Tensor;

class TasksTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    roadnet::SyntheticCityConfig city;
    city.rows = 12;
    city.cols = 12;
    city.speed_noise = 0.05;
    network_ = new roadnet::RoadNetwork(roadnet::GenerateSyntheticCity(city));

    core::SarnConfig sarn_config;
    sarn_config.hidden_dim = 16;
    sarn_config.embedding_dim = 16;
    sarn_config.projection_dim = 8;
    sarn_config.gat_layers = 2;
    sarn_config.gat_heads = 2;
    sarn_config.feature_dim_per_feature = 4;
    sarn_config.max_epochs = 10;
    sarn_config.queue_budget = 400;
    sarn_ = new core::SarnModel(*network_, sarn_config);
    sarn_->Train();

    Rng rng(99);
    random_embeddings_ =
        new Tensor(Tensor::Randn({network_->num_segments(), 16}, rng));
  }
  static void TearDownTestSuite() {
    delete sarn_;
    delete network_;
    delete random_embeddings_;
    sarn_ = nullptr;
    network_ = nullptr;
    random_embeddings_ = nullptr;
  }

  static roadnet::RoadNetwork* network_;
  static core::SarnModel* sarn_;
  static Tensor* random_embeddings_;
};

roadnet::RoadNetwork* TasksTest::network_ = nullptr;
core::SarnModel* TasksTest::sarn_ = nullptr;
Tensor* TasksTest::random_embeddings_ = nullptr;

TEST_F(TasksTest, RoadPropertyMetricsInRangeAndBeatRandomEmbeddings) {
  RoadPropertyConfig config;
  config.epochs = 80;
  RoadPropertyTask task(*network_, config);
  EXPECT_GE(task.num_classes(), 2);
  EXPECT_GT(task.TypeLabelNmi(), 0.3);

  FrozenEmbeddingSource sarn_source(sarn_->Embeddings());
  RoadPropertyResult sarn_result = task.Evaluate(sarn_source);
  EXPECT_GT(sarn_result.f1, 0.0);
  EXPECT_LE(sarn_result.f1, 1.0);
  EXPECT_GE(sarn_result.auc, 0.5);
  EXPECT_LE(sarn_result.auc, 1.0);

  FrozenEmbeddingSource random_source(*random_embeddings_);
  RoadPropertyResult random_result = task.Evaluate(random_source);
  EXPECT_GT(sarn_result.f1, random_result.f1 - 0.05);  // At least comparable.
}

TEST_F(TasksTest, RoadPropertyMaxLabeledCapRespected) {
  RoadPropertyConfig config;
  config.max_labeled = 50;
  config.epochs = 10;
  RoadPropertyTask task(*network_, config);
  EXPECT_EQ(task.num_labeled(), 50);
}

TEST_F(TasksTest, SpdTaskLearnsDistances) {
  SpdConfig config;
  config.num_train_pairs = 1500;
  config.num_test_pairs = 300;
  config.epochs = 60;
  SpdTask task(*network_, config);
  ASSERT_EQ(task.test_pairs().size(), 300u);
  for (const auto& [a, b, d] : task.test_pairs()) {
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1e7);
  }

  FrozenEmbeddingSource sarn_source(sarn_->Embeddings());
  SpdResult sarn_result = task.Evaluate(sarn_source);
  EXPECT_GT(sarn_result.mae_meters, 0.0);
  EXPECT_TRUE(std::isfinite(sarn_result.mre));

  FrozenEmbeddingSource random_source(*random_embeddings_);
  SpdResult random_result = task.Evaluate(random_source);
  // Informative embeddings must clearly beat random ones on SPD.
  EXPECT_LT(sarn_result.mre, random_result.mre);
}

TEST_F(TasksTest, TrajectorySimilarityPipeline) {
  traj::TrajectoryGeneratorConfig gen_config;
  gen_config.min_route_segments = 8;
  traj::TrajectoryGenerator generator(*network_, gen_config);
  traj::MapMatcher matcher(*network_);
  std::vector<traj::MatchedTrajectory> matched;
  for (const auto& trip : generator.Generate(120)) {
    traj::MatchedTrajectory m = matcher.Match(trip.gps);
    matched.push_back(traj::TruncateSegments(m, 40));
  }

  TrajSimConfig config;
  config.epochs = 2;
  config.pairs_per_epoch = 200;
  config.gru_hidden = 24;
  TrajectorySimilarityTask task(*network_, matched, config);
  EXPECT_GE(task.split().test.size(), 21u);

  FrozenEmbeddingSource sarn_source(sarn_->Embeddings());
  TrajSimResult result = task.Evaluate(sarn_source);
  EXPECT_GE(result.hr5, 0.0);
  EXPECT_LE(result.hr5, 1.0);
  EXPECT_GE(result.hr20, result.hr5 - 0.05);  // HR@20 is easier than HR@5.
  EXPECT_GE(result.r5_20, result.hr5 - 0.05);
  // Any trained predictor must beat random guessing: random HR@20 with
  // 20/23 candidates would be near 20/num_test but HR@5 should exceed the
  // random baseline of 5/(num_test-1).
  double random_hr5 = 5.0 / static_cast<double>(result.num_test - 1);
  EXPECT_GT(result.hr5, random_hr5);
}

TEST_F(TasksTest, GroundTruthDistanceSymmetricCached) {
  traj::TrajectoryGeneratorConfig gen_config;
  gen_config.min_route_segments = 8;
  traj::TrajectoryGenerator generator(*network_, gen_config);
  traj::MapMatcher matcher(*network_);
  std::vector<traj::MatchedTrajectory> matched;
  for (const auto& trip : generator.Generate(110)) {
    matched.push_back(traj::TruncateSegments(matcher.Match(trip.gps), 30));
  }
  TrajSimConfig config;
  TrajectorySimilarityTask task(*network_, matched, config);
  EXPECT_DOUBLE_EQ(task.GroundTruthDistance(1, 5), task.GroundTruthDistance(5, 1));
  EXPECT_DOUBLE_EQ(task.GroundTruthDistance(3, 3), 0.0);
}

TEST_F(TasksTest, SarnFineTuneSourceImprovesOrMatchesFrozen) {
  RoadPropertyConfig config;
  config.epochs = 60;
  RoadPropertyTask task(*network_, config);
  FrozenEmbeddingSource frozen(sarn_->Embeddings());
  RoadPropertyResult frozen_result = task.Evaluate(frozen);
  SarnFineTuneSource fine_tune(*sarn_);
  RoadPropertyResult tuned_result = task.Evaluate(fine_tune);
  // Fine-tuning adds capacity; allow small noise but no collapse.
  EXPECT_GT(tuned_result.f1, frozen_result.f1 - 0.1);
}

TEST_F(TasksTest, HrnrSourceTrainsSupervisedEndToEnd) {
  baselines::HrnrLiteConfig hrnr_config;
  hrnr_config.hidden_dim = 16;
  hrnr_config.embedding_dim = 16;
  hrnr_config.gat_heads = 2;
  hrnr_config.feature_dim_per_feature = 4;
  baselines::HrnrLite hrnr(*network_, hrnr_config);
  ASSERT_FALSE(hrnr.out_of_memory());
  RoadPropertyConfig config;
  config.epochs = 40;
  RoadPropertyTask task(*network_, config);
  HrnrSource source(hrnr);
  RoadPropertyResult result = task.Evaluate(source);
  EXPECT_GT(result.f1, 0.2);  // Supervised end-to-end must be far above chance.
}

}  // namespace
}  // namespace sarn::tasks
