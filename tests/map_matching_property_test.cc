// Property sweep of the map matcher: route recall across GPS noise levels
// and sampling intervals, and graceful degradation.

#include <set>

#include <gtest/gtest.h>

#include "roadnet/synthetic_city.h"
#include "traj/map_matching.h"
#include "traj/trajectory_generator.h"

namespace sarn::traj {
namespace {

struct NoiseCase {
  double gps_noise_meters;
  double sample_interval_s;
  double min_recall;
};

class MatcherSweepTest : public testing::TestWithParam<NoiseCase> {
 protected:
  static void SetUpTestSuite() {
    roadnet::SyntheticCityConfig city;
    city.rows = 14;
    city.cols = 14;
    network_ = new roadnet::RoadNetwork(roadnet::GenerateSyntheticCity(city));
    matcher_ = new MapMatcher(*network_);
  }
  static void TearDownTestSuite() {
    delete matcher_;
    delete network_;
    matcher_ = nullptr;
    network_ = nullptr;
  }

  static roadnet::RoadNetwork* network_;
  static MapMatcher* matcher_;
};

roadnet::RoadNetwork* MatcherSweepTest::network_ = nullptr;
MapMatcher* MatcherSweepTest::matcher_ = nullptr;

TEST_P(MatcherSweepTest, RouteRecallAboveFloor) {
  NoiseCase c = GetParam();
  TrajectoryGeneratorConfig config;
  config.gps_noise_meters = c.gps_noise_meters;
  config.sample_interval_s = c.sample_interval_s;
  config.min_route_segments = 8;
  TrajectoryGenerator generator(*network_, config);
  auto trips = generator.Generate(15);
  ASSERT_FALSE(trips.empty());
  double recall = 0.0;
  for (const GeneratedTrajectory& trip : trips) {
    MatchedTrajectory matched = matcher_->Match(trip.gps);
    std::set<roadnet::SegmentId> matched_set(matched.segments.begin(),
                                             matched.segments.end());
    int hits = 0;
    for (roadnet::SegmentId sid : trip.ground_truth) {
      hits += matched_set.count(sid) > 0 ? 1 : 0;
    }
    recall += static_cast<double>(hits) / trip.ground_truth.size();
  }
  recall /= static_cast<double>(trips.size());
  EXPECT_GE(recall, c.min_recall) << "noise=" << c.gps_noise_meters
                                  << " interval=" << c.sample_interval_s;
}

INSTANTIATE_TEST_SUITE_P(
    NoiseGrid, MatcherSweepTest,
    testing::Values(NoiseCase{2.0, 8.0, 0.85},    // Near-ideal GPS.
                    NoiseCase{8.0, 10.0, 0.8},    // Typical phone GPS.
                    NoiseCase{15.0, 15.0, 0.65},  // Paper-like defaults.
                    NoiseCase{30.0, 20.0, 0.4},   // Urban-canyon noise.
                    NoiseCase{8.0, 40.0, 0.5}),   // Sparse sampling.
    [](const testing::TestParamInfo<NoiseCase>& info) {
      return "noise" + std::to_string(static_cast<int>(info.param.gps_noise_meters)) +
             "m_dt" + std::to_string(static_cast<int>(info.param.sample_interval_s)) +
             "s";
    });

TEST(MatcherDegradationTest, MoreNoiseNeverHelpsMuch) {
  roadnet::SyntheticCityConfig city;
  city.rows = 12;
  city.cols = 12;
  roadnet::RoadNetwork network = roadnet::GenerateSyntheticCity(city);
  MapMatcher matcher(network);
  auto recall_at = [&](double noise) {
    TrajectoryGeneratorConfig config;
    config.gps_noise_meters = noise;
    config.min_route_segments = 8;
    TrajectoryGenerator generator(network, config);
    double recall = 0.0;
    auto trips = generator.Generate(12);
    for (const GeneratedTrajectory& trip : trips) {
      MatchedTrajectory matched = matcher.Match(trip.gps);
      std::set<roadnet::SegmentId> matched_set(matched.segments.begin(),
                                               matched.segments.end());
      int hits = 0;
      for (roadnet::SegmentId sid : trip.ground_truth) {
        hits += matched_set.count(sid) > 0 ? 1 : 0;
      }
      recall += static_cast<double>(hits) / trip.ground_truth.size();
    }
    return recall / trips.size();
  };
  EXPECT_GT(recall_at(3.0) + 0.12, recall_at(40.0));
}

}  // namespace
}  // namespace sarn::traj
