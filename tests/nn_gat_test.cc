#include "nn/gat.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "nn/losses.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"

namespace sarn::nn {
namespace {

using tensor::Tensor;

EdgeList PathGraph(int64_t n) {
  // 0 -> 1 -> 2 -> ... (both directions).
  EdgeList edges;
  for (int64_t v = 0; v + 1 < n; ++v) {
    edges.Add(v, v + 1);
    edges.Add(v + 1, v);
  }
  return edges;
}

TEST(GatLayerTest, OutputShapeConcatHeads) {
  Rng rng(1);
  GatLayer layer(6, 4, /*num_heads=*/3, /*concat_heads=*/true, Activation::kElu, rng);
  Tensor x = Tensor::Randn({5, 6}, rng);
  Tensor y = layer.Forward(x, PathGraph(5));
  EXPECT_EQ(y.shape(), (tensor::Shape{5, 12}));
  EXPECT_EQ(layer.output_dim(), 12);
}

TEST(GatLayerTest, OutputShapeMeanHeads) {
  Rng rng(2);
  GatLayer layer(6, 4, 3, /*concat_heads=*/false, Activation::kNone, rng);
  Tensor x = Tensor::Randn({5, 6}, rng);
  Tensor y = layer.Forward(x, PathGraph(5));
  EXPECT_EQ(y.shape(), (tensor::Shape{5, 4}));
}

TEST(GatLayerTest, IsolatedVertexGetsSelfLoopOutput) {
  Rng rng(3);
  GatLayer layer(4, 4, 1, true, Activation::kNone, rng);
  Tensor x = Tensor::Randn({3, 4}, rng);
  EdgeList edges;  // No edges at all: only self-loops remain.
  Tensor y = layer.Forward(x, edges);
  // With only a self-loop, attention weight is 1 and output = W x_i.
  float norm = 0.0f;
  for (int64_t j = 0; j < 4; ++j) norm += std::fabs(y.at(0, j));
  EXPECT_GT(norm, 0.0f);
  for (float v : y.data()) EXPECT_TRUE(std::isfinite(v));
}

TEST(GatLayerTest, WithoutSelfLoopsIsolatedVertexIsZero) {
  Rng rng(4);
  GatLayer layer(4, 4, 1, true, Activation::kNone, rng, 0.2f, /*add_self_loops=*/false,
                 /*residual=*/false);
  Tensor x = Tensor::Randn({3, 4}, rng);
  EdgeList edges;
  edges.Add(0, 1);  // Vertex 2 receives nothing.
  Tensor y = layer.Forward(x, edges);
  for (int64_t j = 0; j < 4; ++j) EXPECT_EQ(y.at(2, j), 0.0f);
}

TEST(GatLayerTest, MessagesFlowAlongEdges) {
  Rng rng(5);
  GatLayer layer(4, 4, 1, true, Activation::kNone, rng, 0.2f, /*add_self_loops=*/false,
                 /*residual=*/false);
  Tensor x = Tensor::Randn({2, 4}, rng);
  EdgeList edges;
  edges.Add(0, 1);  // Only 0 -> 1.
  Tensor y = layer.Forward(x, edges);
  // Vertex 1's output depends on x_0: perturb x_0 and observe the change.
  Tensor x2 = x.Clone();
  x2.set(0, 0, x2.at(0, 0) + 1.0f);
  Tensor y2 = layer.Forward(x2, edges);
  float diff = 0.0f;
  for (int64_t j = 0; j < 4; ++j) diff += std::fabs(y2.at(1, j) - y.at(1, j));
  EXPECT_GT(diff, 1e-6f);
  // Vertex 0 receives nothing, so its output stays zero regardless.
  for (int64_t j = 0; j < 4; ++j) EXPECT_EQ(y.at(0, j), 0.0f);
}

TEST(GatLayerTest, GradientsReachAllParameters) {
  Rng rng(6);
  GatLayer layer(4, 4, 2, true, Activation::kElu, rng);
  Tensor x = Tensor::Randn({6, 4}, rng);
  Tensor y = layer.Forward(x, PathGraph(6));
  tensor::Sum(y).Backward();
  for (const Tensor& p : layer.Parameters()) {
    float norm = 0.0f;
    for (float g : p.grad()) norm += std::fabs(g);
    EXPECT_GT(norm, 0.0f);
  }
}

TEST(GatLayerTest, FusedForwardMatchesPerHeadReference) {
  // The layer now computes all heads through one wide matmul plus column
  // slices. This golden test replays the seed's per-head formulation with
  // the layer's exact weights (same Rng seed, same draw order as the
  // constructor) and checks outputs AND all gradients agree.
  const int64_t in_dim = 6, head_dim = 4, n = 7;
  const int num_heads = 3;
  Rng layer_rng(21);
  GatLayer layer(in_dim, head_dim, num_heads, /*concat_heads=*/true, Activation::kElu,
                 layer_rng);
  Rng ref_rng(21);  // Mirrors the constructor's parameter draws.
  std::vector<Tensor> w, a_src, a_dst;
  for (int h = 0; h < num_heads; ++h) {
    w.push_back(Tensor::GlorotUniform(in_dim, head_dim, ref_rng).RequiresGrad());
    a_src.push_back(Tensor::GlorotUniform(head_dim, 1, ref_rng).RequiresGrad());
    a_dst.push_back(Tensor::GlorotUniform(head_dim, 1, ref_rng).RequiresGrad());
  }
  Tensor residual =
      Tensor::GlorotUniform(in_dim, head_dim * num_heads, ref_rng).RequiresGrad();

  Rng data_rng(5);
  Tensor x = Tensor::Randn({n, in_dim}, data_rng).RequiresGrad();
  Tensor x_ref = x.Clone().RequiresGrad();
  EdgeList edges = PathGraph(n);

  Tensor y = layer.Forward(x, edges);
  tensor::Sum(y).Backward();

  // Seed-style reference: per-head matmuls, self loops appended by hand.
  std::vector<int64_t> src = edges.src, dst = edges.dst;
  for (int64_t v = 0; v < n; ++v) {
    src.push_back(v);
    dst.push_back(v);
  }
  int64_t e_count = static_cast<int64_t>(src.size());
  std::vector<Tensor> heads;
  for (int h = 0; h < num_heads; ++h) {
    Tensor wx = tensor::MatMul(x_ref, w[h]);
    Tensor scores = tensor::LeakyRelu(
        tensor::Add(tensor::Rows(tensor::MatMul(wx, a_dst[h]), dst),
                    tensor::Rows(tensor::MatMul(wx, a_src[h]), src)),
        0.2f);
    Tensor alpha = tensor::EdgeSoftmax(tensor::Reshape(scores, {e_count}), dst, n);
    heads.push_back(
        tensor::ScatterAddRows(tensor::ScaleRows(tensor::Rows(wx, src), alpha), dst, n));
  }
  Tensor y_ref = tensor::Elu(tensor::Add(tensor::Concat(heads, 1),
                                         tensor::MatMul(x_ref, residual)));
  tensor::Sum(y_ref).Backward();

  ASSERT_EQ(y.shape(), y_ref.shape());
  for (int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_NEAR(y.data()[i], y_ref.data()[i], 1e-6f) << "output " << i;
  }
  for (int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_NEAR(x.grad()[i], x_ref.grad()[i], 1e-5f) << "dx " << i;
  }
  // Parameters() order: per head (W, a_src, a_dst), then the residual.
  std::vector<Tensor> params = layer.Parameters();
  ASSERT_EQ(params.size(), static_cast<size_t>(3 * num_heads + 1));
  for (int h = 0; h < num_heads; ++h) {
    const std::vector<Tensor> ref = {w[h], a_src[h], a_dst[h]};
    for (int p = 0; p < 3; ++p) {
      const Tensor& got = params[static_cast<size_t>(3 * h + p)];
      ASSERT_EQ(got.numel(), ref[p].numel());
      for (int64_t i = 0; i < got.numel(); ++i) {
        EXPECT_NEAR(got.grad()[i], ref[p].grad()[i], 1e-5f)
            << "head " << h << " param " << p << " grad " << i;
      }
    }
  }
  for (int64_t i = 0; i < residual.numel(); ++i) {
    EXPECT_NEAR(params.back().grad()[i], residual.grad()[i], 1e-5f) << "dresidual " << i;
  }
}

TEST(GatLayerTest, MeanHeadsFusedMatchesPerHeadReference) {
  // Same golden comparison for the mean-combine (final layer) variant,
  // without attention (the footnote-1 uniform-alpha path).
  const int64_t in_dim = 5, head_dim = 3, n = 6;
  const int num_heads = 2;
  Rng layer_rng(31);
  GatLayer layer(in_dim, head_dim, num_heads, /*concat_heads=*/false, Activation::kNone,
                 layer_rng, 0.2f, /*add_self_loops=*/true, /*residual=*/false,
                 /*use_attention=*/false);
  Rng ref_rng(31);
  std::vector<Tensor> w;
  for (int h = 0; h < num_heads; ++h) {
    w.push_back(Tensor::GlorotUniform(in_dim, head_dim, ref_rng).RequiresGrad());
    Tensor::GlorotUniform(head_dim, 1, ref_rng);  // a_src: drawn, unused here.
    Tensor::GlorotUniform(head_dim, 1, ref_rng);  // a_dst.
  }
  Rng data_rng(6);
  Tensor x = Tensor::Randn({n, in_dim}, data_rng);
  EdgeList edges = PathGraph(n);
  Tensor y = layer.Forward(x, edges);

  std::vector<int64_t> src = edges.src, dst = edges.dst;
  for (int64_t v = 0; v < n; ++v) {
    src.push_back(v);
    dst.push_back(v);
  }
  int64_t e_count = static_cast<int64_t>(src.size());
  Tensor alpha = tensor::EdgeSoftmax(Tensor::Zeros({e_count}), dst, n);
  Tensor combined;
  for (int h = 0; h < num_heads; ++h) {
    Tensor wx = tensor::MatMul(x, w[h]);
    Tensor head =
        tensor::ScatterAddRows(tensor::ScaleRows(tensor::Rows(wx, src), alpha), dst, n);
    combined = h == 0 ? head : tensor::Add(combined, head);
  }
  Tensor y_ref = tensor::MulScalar(combined, 1.0f / static_cast<float>(num_heads));
  ASSERT_EQ(y.shape(), y_ref.shape());
  for (int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_NEAR(y.data()[i], y_ref.data()[i], 1e-6f) << "output " << i;
  }
}

TEST(GatLayerTest, RepeatedForwardWithCachedSelfLoopsIsStable) {
  Rng rng(12);
  GatLayer layer(4, 4, 2, true, Activation::kElu, rng);
  Tensor x = Tensor::Randn({5, 4}, rng);
  EdgeList edges = PathGraph(5);
  Tensor first = layer.Forward(x, edges);
  // Second call hits the cached self-loop-augmented edge list.
  Tensor second = layer.Forward(x, edges);
  for (int64_t i = 0; i < first.numel(); ++i) {
    EXPECT_EQ(first.data()[i], second.data()[i]) << "index " << i;
  }
}

TEST(GatLayerTest, SelfLoopCacheInvalidatedByEdgeMutation) {
  Rng rng(13);
  GatLayer layer(4, 4, 1, true, Activation::kNone, rng, 0.2f, /*add_self_loops=*/true,
                 /*residual=*/false);
  Tensor x = Tensor::Randn({3, 4}, rng);
  EdgeList edges;  // Vertex 2 isolated: output = W x_2 via its self loop.
  edges.Add(0, 1);
  Tensor before = layer.Forward(x, edges);
  edges.Add(0, 2);  // Now vertex 2 also attends to vertex 0.
  Tensor after = layer.Forward(x, edges);
  float diff = 0.0f;
  for (int64_t j = 0; j < 4; ++j) diff += std::fabs(after.at(2, j) - before.at(2, j));
  EXPECT_GT(diff, 1e-6f);
}

TEST(EdgeListTest, WithSelfLoopsAppendsAndCaches) {
  EdgeList edges;
  edges.Add(0, 1);
  edges.Add(1, 2);
  const EdgeList& aug = edges.WithSelfLoops(3);
  ASSERT_EQ(aug.size(), 5u);
  EXPECT_EQ(aug.src[0], 0);
  EXPECT_EQ(aug.dst[0], 1);
  for (int64_t v = 0; v < 3; ++v) {
    EXPECT_EQ(aug.src[static_cast<size_t>(2 + v)], v);
    EXPECT_EQ(aug.dst[static_cast<size_t>(2 + v)], v);
  }
  // Cached: same instance on repeat, rebuilt after a mutation or new n.
  EXPECT_EQ(&edges.WithSelfLoops(3), &aug);
  EXPECT_EQ(edges.WithSelfLoops(4).size(), 6u);
  edges.Add(2, 0);
  EXPECT_EQ(edges.WithSelfLoops(4).size(), 7u);
}

TEST(GatEncoderTest, StackShapes) {
  Rng rng(7);
  GatEncoder encoder(10, 16, 8, /*num_layers=*/3, /*num_heads=*/4, rng);
  EXPECT_EQ(encoder.num_layers(), 3u);
  Tensor x = Tensor::Randn({7, 10}, rng);
  Tensor h = encoder.Forward(x, PathGraph(7));
  EXPECT_EQ(h.shape(), (tensor::Shape{7, 8}));
  EXPECT_EQ(encoder.out_dim(), 8);
}

TEST(GatEncoderTest, SingleLayerVariant) {
  Rng rng(8);
  GatEncoder encoder(10, 16, 8, 1, 4, rng);
  Tensor h = encoder.Forward(Tensor::Randn({4, 10}, rng), PathGraph(4));
  EXPECT_EQ(h.shape(), (tensor::Shape{4, 8}));
}

TEST(GatEncoderTest, FinalLayerParametersAreSubset) {
  Rng rng(9);
  GatEncoder encoder(10, 16, 8, 3, 4, rng);
  EXPECT_LT(encoder.FinalLayerParameters().size(), encoder.Parameters().size());
  // W, a_src, a_dst per head, plus the residual projection.
  EXPECT_EQ(encoder.FinalLayerParameters().size(), 3u * 4u + 1u);
}

TEST(GatEncoderTest, LearnsToSeparateTwoCommunities) {
  // Two cliques weakly connected; train vertex classification by community.
  Rng rng(10);
  EdgeList edges;
  auto clique = [&edges](int64_t lo, int64_t hi) {
    for (int64_t a = lo; a < hi; ++a) {
      for (int64_t b = lo; b < hi; ++b) {
        if (a != b) edges.Add(a, b);
      }
    }
  };
  clique(0, 5);
  clique(5, 10);
  edges.Add(4, 5);
  edges.Add(5, 4);
  Tensor x = Tensor::Randn({10, 8}, rng);  // Fixed random features.
  GatEncoder encoder(8, 8, 2, 2, 2, rng);
  tensor::Adam opt(encoder.Parameters(), 0.01f);
  std::vector<int64_t> labels = {0, 0, 0, 0, 0, 1, 1, 1, 1, 1};
  float final_loss = 1e9f;
  for (int iter = 0; iter < 150; ++iter) {
    opt.ZeroGrad();
    Tensor loss = CrossEntropyWithLogits(encoder.Forward(x, edges), labels);
    final_loss = loss.item();
    loss.Backward();
    opt.Step();
  }
  EXPECT_LT(final_loss, 0.3f);
  Tensor logits = encoder.Forward(x, edges);
  int correct = 0;
  for (int64_t i = 0; i < 10; ++i) {
    int64_t pred = logits.at(i, 0) > logits.at(i, 1) ? 0 : 1;
    correct += pred == labels[static_cast<size_t>(i)] ? 1 : 0;
  }
  EXPECT_GE(correct, 9);
}

TEST(GatLayerTest, FusedInferencePathMatchesOpPathBitwise) {
  // With grad recording off, Forward takes the fused gather/scale/scatter
  // kernels; the result must be bit-for-bit the autograd op-path output.
  Rng rng(21);
  GatLayer layer(8, 4, 2, /*concat_heads=*/true, Activation::kElu, rng);
  Tensor x = Tensor::Randn({12, 8}, rng);
  EdgeList edges = PathGraph(12);
  Tensor op_path = layer.Forward(x, edges);
  Tensor fused;
  {
    tensor::NoGradGuard guard;
    fused = layer.Forward(x, edges);
  }
  ASSERT_EQ(op_path.numel(), fused.numel());
  for (int64_t i = 0; i < op_path.numel(); ++i) {
    EXPECT_EQ(op_path.data()[static_cast<size_t>(i)],
              fused.data()[static_cast<size_t>(i)])
        << i;
  }
}

TEST(GatLayerTest, FusedUniformAttentionMatchesOpPathBitwise) {
  Rng rng(22);
  GatLayer layer(8, 4, 2, /*concat_heads=*/true, Activation::kElu, rng, 0.2f,
                 /*add_self_loops=*/true, /*residual=*/true,
                 /*use_attention=*/false);
  Tensor x = Tensor::Randn({10, 8}, rng);
  EdgeList edges = PathGraph(10);
  Tensor op_path = layer.Forward(x, edges);
  Tensor fused;
  {
    tensor::NoGradGuard guard;
    fused = layer.Forward(x, edges);
  }
  for (int64_t i = 0; i < op_path.numel(); ++i) {
    EXPECT_EQ(op_path.data()[static_cast<size_t>(i)],
              fused.data()[static_cast<size_t>(i)])
        << i;
  }
}

TEST(GatLayerTest, ForwardBitwiseInvariantToThreadCount) {
  Rng rng(23);
  GatLayer layer(16, 8, 2, /*concat_heads=*/true, Activation::kElu, rng);
  Tensor x = Tensor::Randn({64, 16}, rng);
  EdgeList edges = PathGraph(64);
  size_t saved = GetParallelThreads();
  SetParallelThreads(1);
  Tensor one = layer.Forward(x, edges);
  SetParallelThreads(4);
  Tensor four = layer.Forward(x, edges);
  SetParallelThreads(saved);
  for (int64_t i = 0; i < one.numel(); ++i) {
    EXPECT_EQ(one.data()[static_cast<size_t>(i)],
              four.data()[static_cast<size_t>(i)])
        << i;
  }
}

}  // namespace
}  // namespace sarn::nn
