#include "nn/gat.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nn/losses.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"

namespace sarn::nn {
namespace {

using tensor::Tensor;

EdgeList PathGraph(int64_t n) {
  // 0 -> 1 -> 2 -> ... (both directions).
  EdgeList edges;
  for (int64_t v = 0; v + 1 < n; ++v) {
    edges.Add(v, v + 1);
    edges.Add(v + 1, v);
  }
  return edges;
}

TEST(GatLayerTest, OutputShapeConcatHeads) {
  Rng rng(1);
  GatLayer layer(6, 4, /*num_heads=*/3, /*concat_heads=*/true, Activation::kElu, rng);
  Tensor x = Tensor::Randn({5, 6}, rng);
  Tensor y = layer.Forward(x, PathGraph(5));
  EXPECT_EQ(y.shape(), (tensor::Shape{5, 12}));
  EXPECT_EQ(layer.output_dim(), 12);
}

TEST(GatLayerTest, OutputShapeMeanHeads) {
  Rng rng(2);
  GatLayer layer(6, 4, 3, /*concat_heads=*/false, Activation::kNone, rng);
  Tensor x = Tensor::Randn({5, 6}, rng);
  Tensor y = layer.Forward(x, PathGraph(5));
  EXPECT_EQ(y.shape(), (tensor::Shape{5, 4}));
}

TEST(GatLayerTest, IsolatedVertexGetsSelfLoopOutput) {
  Rng rng(3);
  GatLayer layer(4, 4, 1, true, Activation::kNone, rng);
  Tensor x = Tensor::Randn({3, 4}, rng);
  EdgeList edges;  // No edges at all: only self-loops remain.
  Tensor y = layer.Forward(x, edges);
  // With only a self-loop, attention weight is 1 and output = W x_i.
  float norm = 0.0f;
  for (int64_t j = 0; j < 4; ++j) norm += std::fabs(y.at(0, j));
  EXPECT_GT(norm, 0.0f);
  for (float v : y.data()) EXPECT_TRUE(std::isfinite(v));
}

TEST(GatLayerTest, WithoutSelfLoopsIsolatedVertexIsZero) {
  Rng rng(4);
  GatLayer layer(4, 4, 1, true, Activation::kNone, rng, 0.2f, /*add_self_loops=*/false,
                 /*residual=*/false);
  Tensor x = Tensor::Randn({3, 4}, rng);
  EdgeList edges;
  edges.Add(0, 1);  // Vertex 2 receives nothing.
  Tensor y = layer.Forward(x, edges);
  for (int64_t j = 0; j < 4; ++j) EXPECT_EQ(y.at(2, j), 0.0f);
}

TEST(GatLayerTest, MessagesFlowAlongEdges) {
  Rng rng(5);
  GatLayer layer(4, 4, 1, true, Activation::kNone, rng, 0.2f, /*add_self_loops=*/false,
                 /*residual=*/false);
  Tensor x = Tensor::Randn({2, 4}, rng);
  EdgeList edges;
  edges.Add(0, 1);  // Only 0 -> 1.
  Tensor y = layer.Forward(x, edges);
  // Vertex 1's output depends on x_0: perturb x_0 and observe the change.
  Tensor x2 = x.Clone();
  x2.set(0, 0, x2.at(0, 0) + 1.0f);
  Tensor y2 = layer.Forward(x2, edges);
  float diff = 0.0f;
  for (int64_t j = 0; j < 4; ++j) diff += std::fabs(y2.at(1, j) - y.at(1, j));
  EXPECT_GT(diff, 1e-6f);
  // Vertex 0 receives nothing, so its output stays zero regardless.
  for (int64_t j = 0; j < 4; ++j) EXPECT_EQ(y.at(0, j), 0.0f);
}

TEST(GatLayerTest, GradientsReachAllParameters) {
  Rng rng(6);
  GatLayer layer(4, 4, 2, true, Activation::kElu, rng);
  Tensor x = Tensor::Randn({6, 4}, rng);
  Tensor y = layer.Forward(x, PathGraph(6));
  tensor::Sum(y).Backward();
  for (const Tensor& p : layer.Parameters()) {
    float norm = 0.0f;
    for (float g : p.grad()) norm += std::fabs(g);
    EXPECT_GT(norm, 0.0f);
  }
}

TEST(GatEncoderTest, StackShapes) {
  Rng rng(7);
  GatEncoder encoder(10, 16, 8, /*num_layers=*/3, /*num_heads=*/4, rng);
  EXPECT_EQ(encoder.num_layers(), 3u);
  Tensor x = Tensor::Randn({7, 10}, rng);
  Tensor h = encoder.Forward(x, PathGraph(7));
  EXPECT_EQ(h.shape(), (tensor::Shape{7, 8}));
  EXPECT_EQ(encoder.out_dim(), 8);
}

TEST(GatEncoderTest, SingleLayerVariant) {
  Rng rng(8);
  GatEncoder encoder(10, 16, 8, 1, 4, rng);
  Tensor h = encoder.Forward(Tensor::Randn({4, 10}, rng), PathGraph(4));
  EXPECT_EQ(h.shape(), (tensor::Shape{4, 8}));
}

TEST(GatEncoderTest, FinalLayerParametersAreSubset) {
  Rng rng(9);
  GatEncoder encoder(10, 16, 8, 3, 4, rng);
  EXPECT_LT(encoder.FinalLayerParameters().size(), encoder.Parameters().size());
  // W, a_src, a_dst per head, plus the residual projection.
  EXPECT_EQ(encoder.FinalLayerParameters().size(), 3u * 4u + 1u);
}

TEST(GatEncoderTest, LearnsToSeparateTwoCommunities) {
  // Two cliques weakly connected; train vertex classification by community.
  Rng rng(10);
  EdgeList edges;
  auto clique = [&edges](int64_t lo, int64_t hi) {
    for (int64_t a = lo; a < hi; ++a) {
      for (int64_t b = lo; b < hi; ++b) {
        if (a != b) edges.Add(a, b);
      }
    }
  };
  clique(0, 5);
  clique(5, 10);
  edges.Add(4, 5);
  edges.Add(5, 4);
  Tensor x = Tensor::Randn({10, 8}, rng);  // Fixed random features.
  GatEncoder encoder(8, 8, 2, 2, 2, rng);
  tensor::Adam opt(encoder.Parameters(), 0.01f);
  std::vector<int64_t> labels = {0, 0, 0, 0, 0, 1, 1, 1, 1, 1};
  float final_loss = 1e9f;
  for (int iter = 0; iter < 150; ++iter) {
    opt.ZeroGrad();
    Tensor loss = CrossEntropyWithLogits(encoder.Forward(x, edges), labels);
    final_loss = loss.item();
    loss.Backward();
    opt.Step();
  }
  EXPECT_LT(final_loss, 0.3f);
  Tensor logits = encoder.Forward(x, edges);
  int correct = 0;
  for (int64_t i = 0; i < 10; ++i) {
    int64_t pred = logits.at(i, 0) > logits.at(i, 1) ? 0 : 1;
    correct += pred == labels[static_cast<size_t>(i)] ? 1 : 0;
  }
  EXPECT_GE(correct, 9);
}

}  // namespace
}  // namespace sarn::nn
