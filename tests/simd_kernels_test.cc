// Pins the src/tensor/simd/ contract (DESIGN.md §12):
//  * every available vector tier is BITWISE identical to the scalar fallback
//    on the float scan kernels, across dimensions that exercise full vector
//    widths, tails, and sub-width rows, and every query-block size;
//  * the int8 kernels are exact (integer reductions, one shared float scale
//    expression), so tiers agree exactly there too;
//  * the symmetric quantizer round-trips within half a step and handles the
//    degenerate rows (all-zero, single-element, ±absmax) exactly.

#include "tensor/simd/simd.h"

#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace sarn::tensor::simd {
namespace {

// Restores the previously active tier on scope exit so a failing test cannot
// leak a forced tier into the rest of the binary.
class TierGuard {
 public:
  TierGuard() : prev_(ActiveTier()) {}
  ~TierGuard() { ForceTier(prev_); }

 private:
  Tier prev_;
};

std::vector<float> RandomFloats(Rng& rng, size_t n, double scale = 1.0) {
  std::vector<float> out(n);
  for (float& v : out) v = static_cast<float>(rng.Normal(0.0, scale));
  return out;
}

std::vector<int8_t> RandomInt8(Rng& rng, size_t n) {
  std::vector<int8_t> out(n);
  for (int8_t& v : out) {
    v = static_cast<int8_t>(static_cast<int>(rng.Uniform(-127.0, 128.0)));
  }
  return out;
}

std::vector<Tier> AvailableTiers() {
  std::vector<Tier> tiers = {Tier::kScalar};
  if (TierAvailable(Tier::kAvx2)) tiers.push_back(Tier::kAvx2);
  if (TierAvailable(Tier::kNeon)) tiers.push_back(Tier::kNeon);
  return tiers;
}

// Dimensions covering: sub-width rows, exactly one vector width, a tail of
// every residue class, and multi-width rows.
const int64_t kDims[] = {1, 3, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 64, 100};
// Row counts covering empty-ish scans and AVX2's 4-row unrolls with tails.
const int64_t kRowCounts[] = {1, 2, 7, 33};

TEST(SimdDispatchTest, TierNamesAreStable) {
  EXPECT_STREQ(TierName(Tier::kScalar), "scalar");
  EXPECT_STREQ(TierName(Tier::kAvx2), "avx2");
  EXPECT_STREQ(TierName(Tier::kNeon), "neon");
}

TEST(SimdDispatchTest, ScalarAlwaysAvailableAndForcible) {
  EXPECT_TRUE(TierAvailable(Tier::kScalar));
  TierGuard guard;
  ForceTier(Tier::kScalar);
  EXPECT_EQ(ActiveTier(), Tier::kScalar);
}

TEST(SimdDispatchTest, ActiveTierIsAvailable) {
  EXPECT_TRUE(TierAvailable(ActiveTier()));
}

TEST(SimdKernelsTest, FloatScansBitwiseIdenticalAcrossTiers) {
  Rng rng(7);
  TierGuard guard;
  for (int64_t d : kDims) {
    for (int64_t n : kRowCounts) {
      for (int qn = 1; qn <= kMaxQueryBlock; ++qn) {
        std::vector<float> queries = RandomFloats(rng, qn * d);
        std::vector<float> rows = RandomFloats(rng, n * d);

        ForceTier(Tier::kScalar);
        std::vector<float> dot_ref(qn * n), l1_ref(qn * n);
        DotScan(queries.data(), qn, rows.data(), n, d, dot_ref.data(), n);
        L1Scan(queries.data(), qn, rows.data(), n, d, l1_ref.data(), n);

        for (Tier tier : AvailableTiers()) {
          ForceTier(tier);
          std::vector<float> dot(qn * n), l1(qn * n);
          DotScan(queries.data(), qn, rows.data(), n, d, dot.data(), n);
          L1Scan(queries.data(), qn, rows.data(), n, d, l1.data(), n);
          EXPECT_EQ(std::memcmp(dot.data(), dot_ref.data(),
                                dot.size() * sizeof(float)),
                    0)
              << "DotScan tier=" << TierName(tier) << " d=" << d << " n=" << n
              << " qn=" << qn;
          EXPECT_EQ(std::memcmp(l1.data(), l1_ref.data(),
                                l1.size() * sizeof(float)),
                    0)
              << "L1Scan tier=" << TierName(tier) << " d=" << d << " n=" << n
              << " qn=" << qn;
        }
      }
    }
  }
}

TEST(SimdKernelsTest, FloatScansRespectOutStride) {
  Rng rng(11);
  TierGuard guard;
  const int64_t d = 16, n = 5, stride = 9;
  const int qn = 3;
  std::vector<float> queries = RandomFloats(rng, qn * d);
  std::vector<float> rows = RandomFloats(rng, n * d);
  std::vector<float> dense(qn * n), strided(qn * stride, -1.0f);
  for (Tier tier : AvailableTiers()) {
    ForceTier(tier);
    DotScan(queries.data(), qn, rows.data(), n, d, dense.data(), n);
    DotScan(queries.data(), qn, rows.data(), n, d, strided.data(), stride);
    for (int qi = 0; qi < qn; ++qi) {
      for (int64_t r = 0; r < n; ++r) {
        EXPECT_EQ(strided[qi * stride + r], dense[qi * n + r]);
      }
      for (int64_t r = n; r < stride; ++r) {
        EXPECT_EQ(strided[qi * stride + r], -1.0f) << "stride padding clobbered";
      }
    }
  }
}

TEST(SimdKernelsTest, Int8ScansExactAcrossTiers) {
  Rng rng(13);
  TierGuard guard;
  for (int64_t d : kDims) {
    for (int64_t n : kRowCounts) {
      for (int qn = 1; qn <= kMaxQueryBlock; ++qn) {
        std::vector<int8_t> queries = RandomInt8(rng, qn * d);
        std::vector<int8_t> rows = RandomInt8(rng, n * d);
        std::vector<float> qscales(qn), rscales(n);
        for (float& s : qscales) s = static_cast<float>(rng.Uniform(0.01, 0.1));
        for (float& s : rscales) s = static_cast<float>(rng.Uniform(0.01, 0.1));
        const float shared = 0.03125f;

        // Reference: plain integer reductions + the shared scale expression.
        std::vector<float> dot_ref(qn * n), l1_ref(qn * n);
        for (int qi = 0; qi < qn; ++qi) {
          for (int64_t r = 0; r < n; ++r) {
            int32_t dot = 0;
            int64_t l1 = 0;
            for (int64_t j = 0; j < d; ++j) {
              const int32_t qv = queries[qi * d + j];
              const int32_t rv = rows[r * d + j];
              dot += qv * rv;
              l1 += std::abs(qv - rv);
            }
            dot_ref[qi * n + r] =
                static_cast<float>(dot) * (qscales[qi] * rscales[r]);
            l1_ref[qi * n + r] = -(static_cast<float>(l1) * shared);
          }
        }

        for (Tier tier : AvailableTiers()) {
          ForceTier(tier);
          std::vector<float> dot(qn * n), l1(qn * n);
          DotScanI8(queries.data(), qscales.data(), qn, rows.data(),
                    rscales.data(), n, d, dot.data(), n);
          L1ScanI8(queries.data(), qn, rows.data(), n, d, shared, l1.data(), n);
          EXPECT_EQ(std::memcmp(dot.data(), dot_ref.data(),
                                dot.size() * sizeof(float)),
                    0)
              << "DotScanI8 tier=" << TierName(tier) << " d=" << d
              << " n=" << n << " qn=" << qn;
          EXPECT_EQ(std::memcmp(l1.data(), l1_ref.data(),
                                l1.size() * sizeof(float)),
                    0)
              << "L1ScanI8 tier=" << TierName(tier) << " d=" << d
              << " n=" << n << " qn=" << qn;
        }
      }
    }
  }
}

TEST(SimdKernelsTest, Int8SaturatingMagnitudesStayExact) {
  // ±127 everywhere is the worst case for the AVX2 maddubs pairing; the pair
  // sums (127 * 127 * 2 = 32258) must not saturate the i16 intermediates.
  TierGuard guard;
  const int64_t d = 64, n = 3;
  std::vector<int8_t> q(d, 127), rows(n * d);
  std::fill_n(rows.begin(), d, int8_t{127});
  std::fill_n(rows.begin() + d, d, int8_t{-127});
  for (int64_t j = 0; j < d; ++j) rows[2 * d + j] = (j % 2) ? 127 : -127;
  const float qs = 1.0f, rs[] = {1.0f, 1.0f, 1.0f};
  for (Tier tier : AvailableTiers()) {
    ForceTier(tier);
    std::vector<float> dot(n), l1(n);
    DotScanI8(q.data(), &qs, 1, rows.data(), rs, n, d, dot.data(), n);
    L1ScanI8(q.data(), 1, rows.data(), n, d, 1.0f, l1.data(), n);
    EXPECT_EQ(dot[0], static_cast<float>(127 * 127 * d)) << TierName(tier);
    EXPECT_EQ(dot[1], static_cast<float>(-127 * 127 * d)) << TierName(tier);
    EXPECT_EQ(dot[2], 0.0f) << TierName(tier);
    EXPECT_EQ(l1[0], 0.0f) << TierName(tier);
    EXPECT_EQ(l1[1], -static_cast<float>(254 * d)) << TierName(tier);
    EXPECT_EQ(l1[2], -static_cast<float>(254 * (d / 2))) << TierName(tier);
  }
}

TEST(QuantizeTest, RoundTripWithinHalfStep) {
  Rng rng(17);
  for (int64_t d : {1, 7, 64, 257}) {
    std::vector<float> row = RandomFloats(rng, d, 3.0);
    std::vector<int8_t> q(d);
    std::vector<float> back(d);
    float scale = -1.0f;
    QuantizeRowI8(row.data(), d, q.data(), &scale);
    ASSERT_GT(scale, 0.0f);
    DequantizeRowI8(q.data(), d, scale, back.data());
    for (int64_t j = 0; j < d; ++j) {
      EXPECT_LE(std::fabs(back[j] - row[j]), scale * 0.5f + 1e-7f)
          << "d=" << d << " j=" << j;
    }
  }
}

TEST(QuantizeTest, AllZeroRow) {
  std::vector<float> row(32, 0.0f);
  std::vector<int8_t> q(32, 42);
  float scale = -1.0f;
  QuantizeRowI8(row.data(), 32, q.data(), &scale);
  EXPECT_EQ(scale, 0.0f);
  for (int8_t v : q) EXPECT_EQ(v, 0);
  std::vector<float> back(32, 1.0f);
  DequantizeRowI8(q.data(), 32, scale, back.data());
  for (float v : back) EXPECT_EQ(v, 0.0f);
}

TEST(QuantizeTest, SingleElementRow) {
  float x = -2.5f;
  int8_t q = 0;
  float scale = 0.0f;
  QuantizeRowI8(&x, 1, &q, &scale);
  // The absmax element always maps to ±127 and round-trips exactly.
  EXPECT_EQ(q, -127);
  EXPECT_FLOAT_EQ(scale, 2.5f / 127.0f);
  float back = 0.0f;
  DequantizeRowI8(&q, 1, scale, &back);
  EXPECT_FLOAT_EQ(back, -2.5f);
}

TEST(QuantizeTest, MaxMagnitudeElementsMapToPlusMinus127) {
  std::vector<float> row = {5.0f, -5.0f, 2.5f, 0.0f};
  std::vector<int8_t> q(row.size());
  float scale = 0.0f;
  QuantizeRowI8(row.data(), static_cast<int64_t>(row.size()), q.data(), &scale);
  EXPECT_EQ(q[0], 127);
  EXPECT_EQ(q[1], -127);
  EXPECT_EQ(q[2], 64);  // lrintf(2.5 / 5 * 127) = lrintf(63.5) = 64.
  EXPECT_EQ(q[3], 0);
}

TEST(QuantizeTest, SharedScaleMatchesPerRowOnTheAbsmaxRow) {
  Rng rng(19);
  std::vector<float> row = RandomFloats(rng, 16);
  std::vector<int8_t> per_row(16), shared(16);
  float scale = 0.0f;
  QuantizeRowI8(row.data(), 16, per_row.data(), &scale);
  QuantizeRowI8WithScale(row.data(), 16, scale, shared.data());
  EXPECT_EQ(std::memcmp(per_row.data(), shared.data(), 16), 0);
  // Zero shared scale degenerates to all-zero codes, not a division.
  QuantizeRowI8WithScale(row.data(), 16, 0.0f, shared.data());
  for (int8_t v : shared) EXPECT_EQ(v, 0);
}

}  // namespace
}  // namespace sarn::tensor::simd
