// Deterministic corruption sweep over the snapshot container: every
// mutation class (header bit flips, version lies, truncations at every
// section boundary, section-table geometry lies, payload flips, meta
// garbage) must be rejected with exactly the typed SnapshotError documented
// in format.h — never UB, never a crash. tools/verify.sh runs this suite
// under ASan/LSan; the random bit-flip fuzz at the end mirrors
// csv_fuzz_test.cc.

#include "snapshot/snapshot.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/binary_io.h"
#include "common/rng.h"
#include "tasks/embedding_index.h"
#include "tensor/tensor.h"

namespace sarn::snapshot {
namespace {

using tasks::EmbeddingIndex;
using tasks::IndexMetric;
using tasks::IndexPrecision;
using tensor::Tensor;

// One fully loaded arena: meta + model + float + int8 (+ scales) + locator.
std::string BaseArena() {
  Rng rng(20260809);
  Tensor embeddings = Tensor::Randn({12, 8}, rng);
  EmbeddingIndex float_index(embeddings, IndexMetric::kCosine,
                             IndexPrecision::kFloat32);
  EmbeddingIndex int8_index(embeddings, IndexMetric::kCosine,
                            IndexPrecision::kInt8);
  std::vector<geo::LatLng> midpoints(12);
  for (size_t i = 0; i < midpoints.size(); ++i) {
    midpoints[i] = {30.0 + 0.001 * static_cast<double>(i), 104.0};
  }
  SnapshotContents contents;
  contents.n = 12;
  contents.d = 8;
  contents.metric = IndexMetric::kCosine;
  contents.model_embeddings = &embeddings;
  contents.float_index = &float_index;
  contents.int8_index = &int8_index;
  contents.midpoints = &midpoints;
  contents.locator_cell_side_meters = 120.0;
  return BuildServingSnapshot(contents);
}

// Maps mutated bytes through a real file, exactly like production loads.
SnapshotStatus MapBytes(const std::string& bytes,
                        std::shared_ptr<const MappedSnapshot>* out = nullptr) {
  static int counter = 0;
  const std::string path = testing::TempDir() + "/sarn_corrupt_" +
                           std::to_string(counter++) + ".sarnsnap";
  EXPECT_TRUE(WriteSnapshotFile(path, bytes).ok());
  std::shared_ptr<const MappedSnapshot> local;
  SnapshotStatus status =
      MappedSnapshot::Map(path, MappedSnapshot::Options{}, out ? out : &local);
  std::remove(path.c_str());
  return status;
}

SnapshotHeader ReadHeader(const std::string& arena) {
  SnapshotHeader header;
  std::memcpy(&header, arena.data(), sizeof(header));
  return header;
}

void WriteHeader(std::string* arena, SnapshotHeader header) {
  header.header_crc = 0;
  std::memcpy(arena->data(), &header, sizeof(header));
  const uint32_t crc = Crc32(arena->data(), offsetof(SnapshotHeader, header_crc));
  std::memcpy(arena->data() + offsetof(SnapshotHeader, header_crc), &crc,
              sizeof(crc));
}

SectionEntry ReadEntry(const std::string& arena, size_t i) {
  SectionEntry entry;
  std::memcpy(&entry,
              arena.data() + sizeof(SnapshotHeader) + i * sizeof(SectionEntry),
              sizeof(entry));
  return entry;
}

void WriteEntry(std::string* arena, size_t i, const SectionEntry& entry) {
  std::memcpy(arena->data() + sizeof(SnapshotHeader) + i * sizeof(SectionEntry),
              &entry, sizeof(entry));
}

// Recomputes table and header CRCs after a deliberate entry/meta edit, so a
// mutation can target one validation step without tripping the earlier CRC
// gates. Payload CRCs are left to the caller (entries carry them).
void Reseal(std::string* arena) {
  SnapshotHeader header = ReadHeader(*arena);
  header.table_crc = Crc32(
      arena->data() + header.table_offset,
      static_cast<size_t>(header.section_count) * sizeof(SectionEntry));
  WriteHeader(arena, header);
}

// Reseal variant that also refreshes one section's payload CRC (used when a
// mutation legitimately rewrites payload bytes, e.g. meta edits).
void ResealWithPayload(std::string* arena, size_t entry_index) {
  SectionEntry entry = ReadEntry(*arena, entry_index);
  entry.crc32 = Crc32(arena->data() + entry.offset, entry.bytes);
  WriteEntry(arena, entry_index, entry);
  Reseal(arena);
}

size_t FindEntryIndex(const std::string& arena, const char* name) {
  const SnapshotHeader header = ReadHeader(arena);
  for (size_t i = 0; i < header.section_count; ++i) {
    if (std::strcmp(ReadEntry(arena, i).name, name) == 0) return i;
  }
  ADD_FAILURE() << "section " << name << " not found";
  return 0;
}

TEST(SnapshotCorruptionTest, PristineArenaMaps) {
  std::shared_ptr<const MappedSnapshot> snap;
  SnapshotStatus status = MapBytes(BaseArena(), &snap);
  ASSERT_TRUE(status.ok()) << status.message;
  EXPECT_EQ(snap->meta().n, 12);
  EXPECT_EQ(snap->meta().d, 8);
  EXPECT_EQ(snap->sections().size(), 6u);
}

TEST(SnapshotCorruptionTest, TruncationBelowHeaderIsTruncated) {
  const std::string arena = BaseArena();
  for (size_t keep : {0u, 1u, 8u, 63u}) {
    SnapshotStatus status = MapBytes(arena.substr(0, keep));
    EXPECT_EQ(status.error, SnapshotError::kTruncated) << "keep=" << keep;
  }
}

TEST(SnapshotCorruptionTest, TruncationAtEverySectionBoundaryIsTruncated) {
  const std::string arena = BaseArena();
  const SnapshotHeader header = ReadHeader(arena);
  std::vector<size_t> cuts = {sizeof(SnapshotHeader),
                              static_cast<size_t>(header.table_offset) +
                                  header.section_count * sizeof(SectionEntry)};
  for (size_t i = 0; i < header.section_count; ++i) {
    const SectionEntry entry = ReadEntry(arena, i);
    cuts.push_back(entry.offset);                // Section start.
    cuts.push_back(entry.offset + entry.bytes);  // Section end (pre-padding).
    cuts.push_back(entry.offset + entry.bytes / 2);
  }
  cuts.push_back(arena.size() - 1);
  for (size_t cut : cuts) {
    if (cut >= arena.size()) continue;
    SnapshotStatus status = MapBytes(arena.substr(0, cut));
    EXPECT_EQ(status.error, SnapshotError::kTruncated) << "cut=" << cut;
  }
  // Appending garbage is the same lie in the other direction.
  SnapshotStatus status = MapBytes(arena + std::string(64, 'x'));
  EXPECT_EQ(status.error, SnapshotError::kTruncated);
}

TEST(SnapshotCorruptionTest, EveryHeaderByteFlipIsTyped) {
  const std::string arena = BaseArena();
  for (size_t i = 0; i < sizeof(SnapshotHeader); ++i) {
    std::string mutated = arena;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x40);
    SnapshotStatus status = MapBytes(mutated);
    if (i < sizeof(kSnapshotMagic)) {
      EXPECT_EQ(status.error, SnapshotError::kBadMagic) << "byte " << i;
    } else {
      // Any other header flip — fields or the CRC itself — is caught by the
      // header checksum before the lying field is ever trusted.
      EXPECT_EQ(status.error, SnapshotError::kCrcMismatch) << "byte " << i;
    }
  }
}

TEST(SnapshotCorruptionTest, FutureMajorVersionIsRejectedWithClearError) {
  std::string arena = BaseArena();
  SnapshotHeader header = ReadHeader(arena);
  header.version_major = kSnapshotVersionMajor + 1;
  WriteHeader(&arena, header);
  SnapshotStatus status = MapBytes(arena);
  EXPECT_EQ(status.error, SnapshotError::kBadVersion);
  EXPECT_NE(status.message.find("newer than this build"), std::string::npos)
      << status.message;

  // A minor bump stays readable (additive evolution).
  header = ReadHeader(BaseArena());
  arena = BaseArena();
  header.version_minor = kSnapshotVersionMinor + 7;
  WriteHeader(&arena, header);
  EXPECT_TRUE(MapBytes(arena).ok());
}

TEST(SnapshotCorruptionTest, FileBytesLieIsTruncated) {
  std::string arena = BaseArena();
  SnapshotHeader header = ReadHeader(arena);
  header.file_bytes += 64;
  WriteHeader(&arena, header);
  EXPECT_EQ(MapBytes(arena).error, SnapshotError::kTruncated);
}

TEST(SnapshotCorruptionTest, SectionCountLieIsBadSectionTable) {
  std::string arena = BaseArena();
  SnapshotHeader header = ReadHeader(arena);
  header.section_count = 1u << 20;
  WriteHeader(&arena, header);
  EXPECT_EQ(MapBytes(arena).error, SnapshotError::kBadSectionTable);
}

TEST(SnapshotCorruptionTest, TableOffsetLieIsBadSectionTable) {
  for (uint64_t offset : {uint64_t{0}, uint64_t{63}, uint64_t{1} << 40}) {
    std::string arena = BaseArena();
    SnapshotHeader header = ReadHeader(arena);
    header.table_offset = offset;
    WriteHeader(&arena, header);
    EXPECT_EQ(MapBytes(arena).error, SnapshotError::kBadSectionTable)
        << "offset=" << offset;
  }
}

TEST(SnapshotCorruptionTest, TableByteFlipIsCrcMismatch) {
  const std::string arena = BaseArena();
  const SnapshotHeader header = ReadHeader(arena);
  const size_t table_bytes = header.section_count * sizeof(SectionEntry);
  for (size_t i = 0; i < table_bytes; i += 17) {
    std::string mutated = arena;
    mutated[header.table_offset + i] ^= 0x01;
    EXPECT_EQ(MapBytes(mutated).error, SnapshotError::kCrcMismatch)
        << "table byte " << i;
  }
}

TEST(SnapshotCorruptionTest, EntryLiesAreBadSectionTable) {
  const std::string base = BaseArena();
  const size_t meta_i = FindEntryIndex(base, kSectionMeta);
  const size_t rows_i = FindEntryIndex(base, kSectionIndexF32Rows);

  {  // Empty name.
    std::string arena = base;
    SectionEntry entry = ReadEntry(arena, rows_i);
    std::memset(entry.name, 0, sizeof(entry.name));
    WriteEntry(&arena, rows_i, entry);
    Reseal(&arena);
    EXPECT_EQ(MapBytes(arena).error, SnapshotError::kBadSectionTable);
  }
  {  // Name without a NUL terminator.
    std::string arena = base;
    SectionEntry entry = ReadEntry(arena, rows_i);
    std::memset(entry.name, 'x', sizeof(entry.name));
    WriteEntry(&arena, rows_i, entry);
    Reseal(&arena);
    EXPECT_EQ(MapBytes(arena).error, SnapshotError::kBadSectionTable);
  }
  {  // Misaligned offset.
    std::string arena = base;
    SectionEntry entry = ReadEntry(arena, rows_i);
    entry.offset += 1;
    WriteEntry(&arena, rows_i, entry);
    Reseal(&arena);
    EXPECT_EQ(MapBytes(arena).error, SnapshotError::kBadSectionTable);
  }
  {  // Offset pointing past EOF.
    std::string arena = base;
    SectionEntry entry = ReadEntry(arena, rows_i);
    entry.offset = (base.size() + kSectionAlignment) / kSectionAlignment *
                   kSectionAlignment * 2;
    WriteEntry(&arena, rows_i, entry);
    Reseal(&arena);
    EXPECT_EQ(MapBytes(arena).error, SnapshotError::kBadSectionTable);
  }
  {  // Extent overflowing EOF (and, with a huge value, uint64 wraparound).
    for (uint64_t bytes : {static_cast<uint64_t>(base.size()),
                           ~uint64_t{0} - 32}) {
      std::string arena = base;
      SectionEntry entry = ReadEntry(arena, rows_i);
      entry.bytes = bytes;
      WriteEntry(&arena, rows_i, entry);
      Reseal(&arena);
      EXPECT_EQ(MapBytes(arena).error, SnapshotError::kBadSectionTable)
          << "bytes=" << bytes;
    }
  }
  {  // Offset overlapping the section table itself.
    std::string arena = base;
    SectionEntry entry = ReadEntry(arena, rows_i);
    entry.offset = sizeof(SnapshotHeader);
    WriteEntry(&arena, rows_i, entry);
    Reseal(&arena);
    EXPECT_EQ(MapBytes(arena).error, SnapshotError::kBadSectionTable);
  }
  {  // Unknown dtype.
    std::string arena = base;
    SectionEntry entry = ReadEntry(arena, rows_i);
    entry.dtype = 200;
    WriteEntry(&arena, rows_i, entry);
    Reseal(&arena);
    EXPECT_EQ(MapBytes(arena).error, SnapshotError::kBadSectionTable);
  }
  {  // Duplicate name.
    std::string arena = base;
    SectionEntry entry = ReadEntry(arena, rows_i);
    const SectionEntry meta_entry = ReadEntry(arena, meta_i);
    std::memcpy(entry.name, meta_entry.name, sizeof(entry.name));
    WriteEntry(&arena, rows_i, entry);
    Reseal(&arena);
    EXPECT_EQ(MapBytes(arena).error, SnapshotError::kBadSectionTable);
  }
}

TEST(SnapshotCorruptionTest, PayloadByteFlipsAreCrcMismatch) {
  const std::string arena = BaseArena();
  const SnapshotHeader header = ReadHeader(arena);
  for (size_t i = 0; i < header.section_count; ++i) {
    const SectionEntry entry = ReadEntry(arena, i);
    if (entry.bytes == 0) continue;
    for (size_t pos : {size_t{0}, static_cast<size_t>(entry.bytes) / 2,
                       static_cast<size_t>(entry.bytes) - 1}) {
      std::string mutated = arena;
      mutated[entry.offset + pos] ^= 0x10;
      EXPECT_EQ(MapBytes(mutated).error, SnapshotError::kCrcMismatch)
          << "section " << entry.name << " pos " << pos;
    }
  }
}

TEST(SnapshotCorruptionTest, PayloadFlipSlipsThroughWithCrcVerifyOff) {
  // Documents the verify_payload_crc=false contract: geometry is still
  // checked, payload bytes are trusted.
  std::string arena = BaseArena();
  const SectionEntry entry =
      ReadEntry(arena, FindEntryIndex(arena, kSectionIndexF32Rows));
  arena[entry.offset] ^= 0x10;
  static int counter = 0;
  const std::string path = testing::TempDir() + "/sarn_noverify_" +
                           std::to_string(counter++) + ".sarnsnap";
  ASSERT_TRUE(WriteSnapshotFile(path, arena).ok());
  MappedSnapshot::Options options;
  options.verify_payload_crc = false;
  std::shared_ptr<const MappedSnapshot> snap;
  EXPECT_TRUE(MappedSnapshot::Map(path, options, &snap).ok());
  std::remove(path.c_str());
}

TEST(SnapshotCorruptionTest, MetaGarbageIsMalformed) {
  const std::string base = BaseArena();
  const size_t meta_i = FindEntryIndex(base, kSectionMeta);
  const SectionEntry meta_entry = ReadEntry(base, meta_i);

  {  // Meta too short to parse.
    std::string arena = base;
    SectionEntry entry = meta_entry;
    entry.bytes = 4;
    WriteEntry(&arena, meta_i, entry);
    ResealWithPayload(&arena, meta_i);
    EXPECT_EQ(MapBytes(arena).error, SnapshotError::kMalformed);
  }
  {  // Unknown metric enum value.
    std::string arena = base;
    const size_t metric_off = meta_entry.offset + 4 + 8 + 8;
    const uint32_t bogus = 7;
    std::memcpy(arena.data() + metric_off, &bogus, sizeof(bogus));
    ResealWithPayload(&arena, meta_i);
    EXPECT_EQ(MapBytes(arena).error, SnapshotError::kMalformed);
  }
  {  // Negative n.
    std::string arena = base;
    const int64_t bogus = -3;
    std::memcpy(arena.data() + meta_entry.offset + 4, &bogus, sizeof(bogus));
    ResealWithPayload(&arena, meta_i);
    EXPECT_EQ(MapBytes(arena).error, SnapshotError::kMalformed);
  }
  {  // Future meta payload version.
    std::string arena = base;
    const uint32_t bogus = kMetaVersion + 9;
    std::memcpy(arena.data() + meta_entry.offset, &bogus, sizeof(bogus));
    ResealWithPayload(&arena, meta_i);
    EXPECT_EQ(MapBytes(arena).error, SnapshotError::kMalformed);
  }
  {  // Meta section missing entirely (renamed).
    std::string arena = base;
    SectionEntry entry = meta_entry;
    std::strcpy(entry.name, "mete");
    WriteEntry(&arena, meta_i, entry);
    Reseal(&arena);
    EXPECT_EQ(MapBytes(arena).error, SnapshotError::kMalformed);
  }
  {  // Advertised payload section missing (renamed).
    std::string arena = base;
    const size_t rows_i = FindEntryIndex(base, kSectionIndexF32Rows);
    SectionEntry entry = ReadEntry(arena, rows_i);
    entry.name[std::strlen(entry.name) - 1] = 'z';
    WriteEntry(&arena, rows_i, entry);
    Reseal(&arena);
    EXPECT_EQ(MapBytes(arena).error, SnapshotError::kMalformed);
  }
}

TEST(SnapshotCorruptionTest, ShapeLiesAreShapeMismatch) {
  const std::string base = BaseArena();
  const size_t meta_i = FindEntryIndex(base, kSectionMeta);
  const SectionEntry meta_entry = ReadEntry(base, meta_i);
  {  // n+1: every payload section's byte count now disagrees.
    std::string arena = base;
    const int64_t n = 13;
    std::memcpy(arena.data() + meta_entry.offset + 4, &n, sizeof(n));
    ResealWithPayload(&arena, meta_i);
    EXPECT_EQ(MapBytes(arena).error, SnapshotError::kShapeMismatch);
  }
  {  // d halved.
    std::string arena = base;
    const int64_t d = 4;
    std::memcpy(arena.data() + meta_entry.offset + 12, &d, sizeof(d));
    ResealWithPayload(&arena, meta_i);
    EXPECT_EQ(MapBytes(arena).error, SnapshotError::kShapeMismatch);
  }
}

TEST(SnapshotCorruptionTest, RandomBitFlipFuzzNeverSucceedsOutsidePadding) {
  const std::string arena = BaseArena();
  const SnapshotHeader header = ReadHeader(arena);
  // Bytes covered by some checksum or geometry check: header, table, and
  // every section extent. Only alignment padding is (by design) unchecked.
  std::vector<bool> covered(arena.size(), false);
  const size_t table_end =
      header.table_offset + header.section_count * sizeof(SectionEntry);
  for (size_t i = 0; i < table_end; ++i) covered[i] = true;
  for (size_t s = 0; s < header.section_count; ++s) {
    const SectionEntry entry = ReadEntry(arena, s);
    for (uint64_t i = entry.offset; i < entry.offset + entry.bytes; ++i) {
      covered[i] = true;
    }
  }

  Rng rng(424242);
  for (int trial = 0; trial < 300; ++trial) {
    const size_t byte = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(arena.size()) - 1));
    const int bit = static_cast<int>(rng.UniformInt(0, 7));
    std::string mutated = arena;
    mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
    SnapshotStatus status = MapBytes(mutated);
    if (covered[byte]) {
      EXPECT_NE(status.error, SnapshotError::kOk)
          << "flip at covered byte " << byte << " bit " << bit << " got through";
    } else {
      EXPECT_TRUE(status.ok())
          << "flip in padding byte " << byte << " should be benign: "
          << status.message;
    }
  }
}

TEST(SnapshotCorruptionTest, ErrorNamesAreStable) {
  EXPECT_STREQ(SnapshotErrorName(SnapshotError::kOk), "ok");
  EXPECT_STREQ(SnapshotErrorName(SnapshotError::kBadMagic), "bad_magic");
  EXPECT_STREQ(SnapshotErrorName(SnapshotError::kBadVersion), "bad_version");
  EXPECT_STREQ(SnapshotErrorName(SnapshotError::kTruncated), "truncated");
  EXPECT_STREQ(SnapshotErrorName(SnapshotError::kBadSectionTable),
               "bad_section_table");
  EXPECT_STREQ(SnapshotErrorName(SnapshotError::kCrcMismatch), "crc_mismatch");
  EXPECT_STREQ(SnapshotErrorName(SnapshotError::kMalformed), "malformed");
  EXPECT_STREQ(SnapshotErrorName(SnapshotError::kShapeMismatch),
               "shape_mismatch");
}

TEST(SnapshotCorruptionTest, MissingFileIsIoError) {
  std::shared_ptr<const MappedSnapshot> snap;
  SnapshotStatus status = MappedSnapshot::Map(
      testing::TempDir() + "/definitely_missing.sarnsnap", {}, &snap);
  EXPECT_EQ(status.error, SnapshotError::kIoError);
  EXPECT_EQ(snap, nullptr);
}

}  // namespace
}  // namespace sarn::snapshot
