#include "core/spatial_similarity.h"

#include <set>

#include <gtest/gtest.h>

#include "geo/point.h"
#include "roadnet/synthetic_city.h"

namespace sarn::core {
namespace {

TEST(SimilarityFunctionsTest, DistanceSimilarityEndpoints) {
  // Eq. 4: 1 at zero distance, 0 at/beyond the threshold.
  EXPECT_NEAR(DistanceSimilarity(0.0, 200.0), 1.0, 1e-12);
  EXPECT_NEAR(DistanceSimilarity(200.0, 200.0), 0.0, 1e-12);
  EXPECT_NEAR(DistanceSimilarity(900.0, 200.0), 0.0, 1e-12);  // Clamped.
}

TEST(SimilarityFunctionsTest, DistanceSimilarityMonotone) {
  double prev = 1.1;
  for (double d = 0.0; d <= 200.0; d += 20.0) {
    double s = DistanceSimilarity(d, 200.0);
    EXPECT_LT(s, prev);
    prev = s;
  }
}

TEST(SimilarityFunctionsTest, AngleSimilarityEndpoints) {
  double delta = geo::kPi / 8.0;
  EXPECT_NEAR(AngleSimilarity(0.0, delta), 1.0, 1e-12);
  EXPECT_NEAR(AngleSimilarity(delta, delta), 0.0, 1e-12);
  EXPECT_NEAR(AngleSimilarity(geo::kPi, delta), 0.0, 1e-12);
}

class PairSimilarityTest : public testing::Test {
 protected:
  PairSimilarityTest() : proj_(geo::LatLng{30.0, 104.0}) {}

  roadnet::RoadSegment Segment(double x, double y, double radian, double length = 80.0) {
    roadnet::RoadSegment s;
    s.start = proj_.ToLatLng(x, y);
    s.end = proj_.ToLatLng(x + length * std::cos(radian), y + length * std::sin(radian));
    s.radian = radian;
    s.length_meters = length;
    return s;
  }

  geo::LocalProjection proj_;
  SpatialSimilarityConfig config_;
};

TEST_F(PairSimilarityTest, ParallelCloseSegmentsHighSimilarity) {
  roadnet::RoadSegment a = Segment(0, 0, 0.0);
  roadnet::RoadSegment b = Segment(0, 30, 0.0);  // 30 m north, same direction.
  double sim = SpatialSimilarity(a, b, config_);
  EXPECT_GT(sim, 0.8);
  EXPECT_LE(sim, 1.0);
}

TEST_F(PairSimilarityTest, FarSegmentsZero) {
  roadnet::RoadSegment a = Segment(0, 0, 0.0);
  roadnet::RoadSegment b = Segment(0, 500, 0.0);  // Beyond 200 m threshold.
  EXPECT_EQ(SpatialSimilarity(a, b, config_), 0.0);
}

TEST_F(PairSimilarityTest, PerpendicularSegmentsZero) {
  roadnet::RoadSegment a = Segment(0, 0, 0.0);
  roadnet::RoadSegment b = Segment(0, 30, geo::kPi / 2.0);
  EXPECT_EQ(SpatialSimilarity(a, b, config_), 0.0);
}

TEST_F(PairSimilarityTest, SymmetricInArguments) {
  roadnet::RoadSegment a = Segment(0, 0, 0.1);
  roadnet::RoadSegment b = Segment(50, 40, 0.25);
  EXPECT_DOUBLE_EQ(SpatialSimilarity(a, b, config_), SpatialSimilarity(b, a, config_));
}

TEST_F(PairSimilarityTest, CloserPairsMoreSimilar) {
  roadnet::RoadSegment a = Segment(0, 0, 0.0);
  double near = SpatialSimilarity(a, Segment(0, 20, 0.0), config_);
  double far = SpatialSimilarity(a, Segment(0, 120, 0.0), config_);
  EXPECT_GT(near, far);
  EXPECT_GT(far, 0.0);
}

class BuildEdgesTest : public testing::Test {
 protected:
  BuildEdgesTest() {
    roadnet::SyntheticCityConfig config;
    config.rows = 14;
    config.cols = 14;
    network_ = roadnet::GenerateSyntheticCity(config);
  }
  roadnet::RoadNetwork network_;
  SpatialSimilarityConfig config_;
};

TEST_F(BuildEdgesTest, EdgesAreValidAndCanonical) {
  auto edges = BuildSpatialEdges(network_, config_);
  ASSERT_FALSE(edges.empty());
  std::set<std::pair<int64_t, int64_t>> seen;
  for (const SpatialEdge& e : edges) {
    EXPECT_LT(e.a, e.b);  // Canonical undirected representation.
    EXPECT_GE(e.a, 0);
    EXPECT_LT(e.b, network_.num_segments());
    EXPECT_GT(e.weight, 0.0);
    EXPECT_LE(e.weight, 1.0);
    EXPECT_TRUE(seen.emplace(e.a, e.b).second) << "duplicate edge";
  }
}

TEST_F(BuildEdgesTest, EdgesMatchDirectComputation) {
  auto edges = BuildSpatialEdges(network_, config_);
  for (size_t i = 0; i < std::min<size_t>(edges.size(), 100); ++i) {
    const SpatialEdge& e = edges[i];
    double direct = SpatialSimilarity(network_.segment(e.a), network_.segment(e.b),
                                      config_);
    EXPECT_NEAR(e.weight, direct, 1e-12);
  }
}

TEST_F(BuildEdgesTest, EdgeCountSameOrderAsTopoEdges) {
  // Paper Table 3: |A^s| is within ~25% of |A^t| on every dataset.
  auto edges = BuildSpatialEdges(network_, config_);
  double ratio = static_cast<double>(edges.size()) / network_.topo_edges().size();
  EXPECT_GT(ratio, 0.3);
  EXPECT_LT(ratio, 3.0);
}

TEST_F(BuildEdgesTest, NeighborCapRespectedApproximately) {
  SpatialSimilarityConfig tight = config_;
  tight.max_spatial_neighbors = 2;
  auto edges_tight = BuildSpatialEdges(network_, tight);
  auto edges_loose = BuildSpatialEdges(network_, config_);
  EXPECT_LT(edges_tight.size(), edges_loose.size());
}

TEST_F(BuildEdgesTest, LargerRadiusMoreEdges) {
  SpatialSimilarityConfig wide = config_;
  wide.delta_ds_meters = 400.0;
  wide.max_spatial_neighbors = 1000;
  SpatialSimilarityConfig narrow = config_;
  narrow.delta_ds_meters = 100.0;
  narrow.max_spatial_neighbors = 1000;
  EXPECT_GT(BuildSpatialEdges(network_, wide).size(),
            BuildSpatialEdges(network_, narrow).size());
}

TEST_F(BuildEdgesTest, DualTypedEdgesAreMinority) {
  auto edges = BuildSpatialEdges(network_, config_);
  int64_t dual = CountDualTypedEdges(network_, edges);
  EXPECT_GE(dual, 0);
  // Paper: ~7.5% on CD. Ours should also be a small minority.
  EXPECT_LT(static_cast<double>(dual), 0.5 * static_cast<double>(edges.size()));
}

}  // namespace
}  // namespace sarn::core
