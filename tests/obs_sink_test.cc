// Tests for the JSON validator and the JSONL metrics sink: record
// serialisation, file append semantics (checkpoint-resume continuity), and
// checkpoint lifecycle events.

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/metrics_sink.h"

namespace sarn::obs {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  EXPECT_TRUE(file.is_open()) << path;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

std::vector<std::string> NonEmptyLines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

TEST(JsonValidatorTest, AcceptsValidDocuments) {
  for (const char* text :
       {"null", "true", "42", "-3.25e-2", "\"hi \\u00e9 \\n\"", "[]",
        "[1, 2, [3]]", "{}", "{\"a\": {\"b\": [1, null, false]}}",
        "  {\"trailing\": \"ws\"}  \n"}) {
    std::string error;
    EXPECT_TRUE(JsonValid(text, &error)) << text << ": " << error;
  }
}

TEST(JsonValidatorTest, RejectsInvalidDocuments) {
  for (const char* text :
       {"", "{", "}", "[1,]", "{\"a\":}", "{\"a\" 1}", "nul", "01", "1.",
        "\"unterminated", "\"bad\\q\"", "{\"a\":1} extra", "[1 2]", "+5",
        "'single'", "NaN"}) {
    std::string error;
    EXPECT_FALSE(JsonValid(text, &error)) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(JsonValidatorTest, JsonLinesChecksEveryLine) {
  EXPECT_TRUE(JsonLinesValid(""));
  EXPECT_TRUE(JsonLinesValid("{\"a\":1}\n{\"b\":2}\n"));
  EXPECT_TRUE(JsonLinesValid("{\"a\":1}\n\n{\"b\":2}"));  // Blank lines skipped.
  std::string error;
  EXPECT_FALSE(JsonLinesValid("{\"a\":1}\n{broken\n", &error));
  EXPECT_FALSE(error.empty());
}

TEST(JsonValidatorTest, EscapeAndNumberHelpers) {
  std::string out;
  JsonEscape("a\"b\\c\nd", &out);
  EXPECT_EQ(out, "a\\\"b\\\\c\\nd");
  EXPECT_EQ(JsonNumber(0.5), "0.5");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(JsonNumber(std::nan("")), "null");
}

TEST(EpochRecordJsonTest, SerialisesAllSections) {
  EpochRecord record;
  record.run = "sarn";
  record.epoch = 3;
  record.loss = 1.5;
  record.grad_norm = 0.25;
  record.learning_rate = 0.001;
  record.batches = 7;
  record.epoch_seconds = 2.0;
  record.resumed = true;
  record.phase_seconds = {{"augmentation", 0.5}, {"backward", 1.0}};
  record.queue_stored = 100;
  record.queue_nonempty_cells = 12;
  record.queue_pushes = 400;
  record.queue_evictions = 300;
  record.checkpoint_bytes = 2048;
  record.checkpoint_seconds = 0.01;
  record.pool_regions = 5;
  std::string json = EpochRecordToJson(record);
  std::string error;
  EXPECT_TRUE(JsonValid(json, &error)) << error;
  EXPECT_NE(json.find("\"event\":\"epoch\""), std::string::npos);
  EXPECT_NE(json.find("\"epoch\":3"), std::string::npos);
  EXPECT_NE(json.find("\"resumed\":true"), std::string::npos);
  EXPECT_NE(json.find("\"augmentation\":0.5"), std::string::npos);
  EXPECT_NE(json.find("\"stored\":100"), std::string::npos);
  EXPECT_NE(json.find("\"bytes\":2048"), std::string::npos);
  EXPECT_NE(json.find("\"regions\":5"), std::string::npos);
}

TEST(EpochRecordJsonTest, QueueSectionOmittedWhenTrainerHasNoQueue) {
  EpochRecord record;
  record.run = "graphcl";
  record.queue_stored = -1;  // GraphCL has no negative queue.
  std::string json = EpochRecordToJson(record);
  std::string error;
  EXPECT_TRUE(JsonValid(json, &error)) << error;
  EXPECT_EQ(json.find("\"queue\""), std::string::npos);
}

TEST(CheckpointEventJsonTest, SerialisesActionAndDetail) {
  CheckpointEvent event;
  event.action = CheckpointEvent::Action::kSkippedCorrupt;
  event.path = "/tmp/ckpt_000001.sarn";
  event.epoch = 1;
  event.detail = "bad magic";
  std::string json = CheckpointEventToJson(event);
  std::string error;
  EXPECT_TRUE(JsonValid(json, &error)) << error;
  EXPECT_NE(json.find("\"event\":\"checkpoint\""), std::string::npos);
  EXPECT_NE(json.find("\"action\":\"skipped_corrupt\""), std::string::npos);
  EXPECT_NE(json.find("\"detail\":\"bad magic\""), std::string::npos);
  EXPECT_STREQ(CheckpointActionName(CheckpointEvent::Action::kWritten), "written");
  EXPECT_STREQ(CheckpointActionName(CheckpointEvent::Action::kResumedFrom),
               "resumed_from");
}

TEST(JsonlMetricsSinkTest, WritesOneValidLinePerRecord) {
  std::string path = ::testing::TempDir() + "/obs_sink_lines.jsonl";
  std::remove(path.c_str());
  {
    JsonlMetricsSink sink(path);
    ASSERT_TRUE(sink.ok());
    EpochRecord record;
    for (int epoch = 0; epoch < 3; ++epoch) {
      record.epoch = epoch;
      sink.OnEpoch(record);
    }
    CheckpointEvent event;
    event.action = CheckpointEvent::Action::kWritten;
    sink.OnCheckpoint(event);
    sink.Flush();
  }
  std::string text = ReadFileOrDie(path);
  std::string error;
  EXPECT_TRUE(JsonLinesValid(text, &error)) << error;
  std::vector<std::string> lines = NonEmptyLines(text);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_NE(lines[0].find("\"epoch\":0"), std::string::npos);
  EXPECT_NE(lines[2].find("\"epoch\":2"), std::string::npos);
  EXPECT_NE(lines[3].find("\"event\":\"checkpoint\""), std::string::npos);
}

TEST(JsonlMetricsSinkTest, AppendsAcrossSinkInstancesLikeResume) {
  // A killed-and-resumed run constructs a fresh sink on the same path; the
  // epoch series must stay continuous in one file.
  std::string path = ::testing::TempDir() + "/obs_sink_resume.jsonl";
  std::remove(path.c_str());
  {
    JsonlMetricsSink sink(path);
    EpochRecord record;
    record.epoch = 0;
    sink.OnEpoch(record);
    record.epoch = 1;
    sink.OnEpoch(record);
  }
  {
    JsonlMetricsSink sink(path);  // "Resumed" process.
    EpochRecord record;
    record.resumed = true;
    record.epoch = 2;
    sink.OnEpoch(record);
  }
  std::vector<std::string> lines = NonEmptyLines(ReadFileOrDie(path));
  ASSERT_EQ(lines.size(), 3u);
  for (int epoch = 0; epoch < 3; ++epoch) {
    EXPECT_NE(lines[epoch].find("\"epoch\":" + std::to_string(epoch)),
              std::string::npos)
        << lines[epoch];
  }
  EXPECT_NE(lines[2].find("\"resumed\":true"), std::string::npos);
}

TEST(JsonlMetricsSinkTest, UnopenableFileReportsNotOk) {
  JsonlMetricsSink sink("/nonexistent_dir_zz/metrics.jsonl");
  EXPECT_FALSE(sink.ok());
  EpochRecord record;
  sink.OnEpoch(record);  // Dropped, but must not crash.
}

TEST(RecordCheckpointEventTest, BumpsRegistryAndForwardsToSink) {
  // A collecting sink to observe forwarding.
  class CollectingSink : public MetricsSink {
   public:
    void OnEpoch(const EpochRecord&) override {}
    void OnCheckpoint(const CheckpointEvent& event) override {
      events.push_back(event);
    }
    std::vector<CheckpointEvent> events;
  };

  MetricsRegistry& registry = MetricsRegistry::Default();
  uint64_t written_before =
      registry.GetCounter("sarn.checkpoint.written").Value();
  uint64_t bytes_before =
      registry.GetCounter("sarn.checkpoint.bytes_written").Value();

  CollectingSink sink;
  CheckpointEvent event;
  event.action = CheckpointEvent::Action::kWritten;
  event.path = "/tmp/ckpt_000002.sarn";
  event.epoch = 2;
  event.bytes = 512;
  event.seconds = 0.005;
  RecordCheckpointEvent(&sink, event);
  RecordCheckpointEvent(nullptr, event);  // Null sink is allowed.

  EXPECT_EQ(registry.GetCounter("sarn.checkpoint.written").Value(),
            written_before + 2);
  EXPECT_EQ(registry.GetCounter("sarn.checkpoint.bytes_written").Value(),
            bytes_before + 1024);
  ASSERT_EQ(sink.events.size(), 1u);
  EXPECT_EQ(sink.events[0].path, event.path);
  EXPECT_EQ(sink.events[0].bytes, 512);
}

}  // namespace
}  // namespace sarn::obs
