#include "common/check.h"

#include <gtest/gtest.h>

namespace sarn {
namespace {

TEST(CheckTest, PassingChecksDoNothing) {
  SARN_CHECK(true);
  SARN_CHECK_EQ(1, 1);
  SARN_CHECK_NE(1, 2);
  SARN_CHECK_LT(1, 2);
  SARN_CHECK_LE(2, 2);
  SARN_CHECK_GT(3, 2);
  SARN_CHECK_GE(3, 3);
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH({ SARN_CHECK(false) << "boom"; }, "boom");
}

TEST(CheckDeathTest, FailingComparisonShowsValues) {
  int a = 3, b = 5;
  EXPECT_DEATH({ SARN_CHECK_EQ(a, b); }, "3 vs 5");
}

TEST(CheckDeathTest, MessageIncludesExpression) {
  EXPECT_DEATH({ SARN_CHECK(1 > 2); }, "1 > 2");
}

TEST(CheckTest, DcheckPassesInAnyBuild) { SARN_DCHECK(2 + 2 == 4); }

}  // namespace
}  // namespace sarn
