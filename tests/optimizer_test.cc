#include "tensor/optimizer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace sarn::tensor {
namespace {

// Quadratic bowl: loss = ||x - target||^2. Any sane optimizer must converge.
float QuadraticStep(Optimizer& opt, Tensor& x, const Tensor& target) {
  opt.ZeroGrad();
  Tensor loss = Sum(Square(Sub(x, target)));
  float value = loss.item();
  loss.Backward();
  opt.Step();
  return value;
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Tensor x = Tensor::FromVector({3}, {5.0f, -3.0f, 1.0f});
  x.RequiresGrad();
  Tensor target = Tensor::FromVector({3}, {1.0f, 2.0f, -1.0f});
  Sgd opt({x}, /*learning_rate=*/0.1f);
  for (int i = 0; i < 200; ++i) QuadraticStep(opt, x, target);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(x.at(i), target.at(i), 1e-3f);
}

TEST(SgdTest, MomentumAcceleratesConvergence) {
  auto run = [](float momentum) {
    Tensor x = Tensor::FromVector({1}, {10.0f});
    x.RequiresGrad();
    Tensor target = Tensor::FromVector({1}, {0.0f});
    Sgd opt({x}, 0.01f, momentum);
    float last = 0;
    for (int i = 0; i < 50; ++i) last = QuadraticStep(opt, x, target);
    return last;
  };
  EXPECT_LT(run(0.9f), run(0.0f));
}

TEST(SgdTest, WeightDecayShrinksWeights) {
  Tensor x = Tensor::FromVector({1}, {1.0f});
  x.RequiresGrad();
  Sgd opt({x}, 0.1f, 0.0f, /*weight_decay=*/0.5f);
  // No data gradient at all: decay alone must shrink the weight.
  opt.ZeroGrad();
  opt.Step();
  EXPECT_NEAR(x.at(0), 1.0f - 0.1f * 0.5f, 1e-6f);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Tensor x = Tensor::FromVector({3}, {5.0f, -3.0f, 1.0f});
  x.RequiresGrad();
  Tensor target = Tensor::FromVector({3}, {1.0f, 2.0f, -1.0f});
  Adam opt({x}, 0.1f);
  for (int i = 0; i < 500; ++i) QuadraticStep(opt, x, target);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(x.at(i), target.at(i), 1e-2f);
}

TEST(AdamTest, FirstStepMagnitudeIsLearningRate) {
  // With bias correction, the first Adam step is ~lr in the gradient
  // direction regardless of gradient scale.
  for (float scale : {0.01f, 1.0f, 100.0f}) {
    Tensor x = Tensor::FromVector({1}, {0.0f});
    x.RequiresGrad();
    Adam opt({x}, 0.05f);
    opt.ZeroGrad();
    Tensor loss = MulScalar(Sum(x), scale);
    loss.Backward();
    opt.Step();
    EXPECT_NEAR(x.at(0), -0.05f, 1e-4f) << "scale " << scale;
  }
}

TEST(AdamTest, StepCountIncrements) {
  Tensor x = Tensor::FromVector({1}, {1.0f});
  x.RequiresGrad();
  Adam opt({x}, 0.01f);
  EXPECT_EQ(opt.step_count(), 0);
  QuadraticStep(opt, x, Tensor::FromVector({1}, {0.0f}));
  EXPECT_EQ(opt.step_count(), 1);
}

TEST(OptimizerTest, ZeroGradClearsAllParameters) {
  Tensor a = Tensor::FromVector({2}, {1, 2});
  a.RequiresGrad();
  Tensor b = Tensor::FromVector({2}, {3, 4});
  b.RequiresGrad();
  Sgd opt({a, b}, 0.1f);
  Sum(Add(Square(a), Square(b))).Backward();
  EXPECT_NE(a.grad()[0], 0.0f);
  EXPECT_NE(b.grad()[0], 0.0f);
  opt.ZeroGrad();
  for (float g : a.grad()) EXPECT_EQ(g, 0.0f);
  for (float g : b.grad()) EXPECT_EQ(g, 0.0f);
}

TEST(OptimizerDeathTest, RejectsNonGradParameters) {
  Tensor x = Tensor::FromVector({1}, {1.0f});  // No RequiresGrad.
  EXPECT_DEATH(Sgd({x}, 0.1f), "require grad");
}

TEST(CosineScheduleTest, EndpointsAndMidpoint) {
  CosineAnnealingSchedule schedule(/*lr_max=*/0.1f, /*max_epochs=*/100, /*lr_min=*/0.0f);
  EXPECT_NEAR(schedule.LearningRateAt(0), 0.1f, 1e-6f);
  EXPECT_NEAR(schedule.LearningRateAt(50), 0.05f, 1e-6f);
  EXPECT_NEAR(schedule.LearningRateAt(100), 0.0f, 1e-6f);
}

TEST(CosineScheduleTest, MonotoneDecreasing) {
  CosineAnnealingSchedule schedule(0.1f, 50);
  for (int e = 1; e <= 50; ++e) {
    EXPECT_LE(schedule.LearningRateAt(e), schedule.LearningRateAt(e - 1) + 1e-7f);
  }
}

TEST(CosineScheduleTest, ClampsOutOfRangeEpochs) {
  CosineAnnealingSchedule schedule(0.1f, 10, 0.01f);
  EXPECT_NEAR(schedule.LearningRateAt(-5), 0.1f, 1e-6f);
  EXPECT_NEAR(schedule.LearningRateAt(99), 0.01f, 1e-6f);
}

TEST(CosineScheduleTest, OnEpochUpdatesOptimizer) {
  Tensor x = Tensor::FromVector({1}, {1.0f});
  x.RequiresGrad();
  Sgd opt({x}, 0.1f);
  CosineAnnealingSchedule schedule(0.1f, 10);
  schedule.OnEpoch(opt, 10);
  EXPECT_NEAR(opt.learning_rate(), 0.0f, 1e-6f);
}

}  // namespace
}  // namespace sarn::tensor
