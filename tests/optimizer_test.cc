#include "tensor/optimizer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/binary_io.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace sarn::tensor {
namespace {

// Quadratic bowl: loss = ||x - target||^2. Any sane optimizer must converge.
float QuadraticStep(Optimizer& opt, Tensor& x, const Tensor& target) {
  opt.ZeroGrad();
  Tensor loss = Sum(Square(Sub(x, target)));
  float value = loss.item();
  loss.Backward();
  opt.Step();
  return value;
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Tensor x = Tensor::FromVector({3}, {5.0f, -3.0f, 1.0f});
  x.RequiresGrad();
  Tensor target = Tensor::FromVector({3}, {1.0f, 2.0f, -1.0f});
  Sgd opt({x}, /*learning_rate=*/0.1f);
  for (int i = 0; i < 200; ++i) QuadraticStep(opt, x, target);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(x.at(i), target.at(i), 1e-3f);
}

TEST(SgdTest, MomentumAcceleratesConvergence) {
  auto run = [](float momentum) {
    Tensor x = Tensor::FromVector({1}, {10.0f});
    x.RequiresGrad();
    Tensor target = Tensor::FromVector({1}, {0.0f});
    Sgd opt({x}, 0.01f, momentum);
    float last = 0;
    for (int i = 0; i < 50; ++i) last = QuadraticStep(opt, x, target);
    return last;
  };
  EXPECT_LT(run(0.9f), run(0.0f));
}

TEST(SgdTest, WeightDecayShrinksWeights) {
  Tensor x = Tensor::FromVector({1}, {1.0f});
  x.RequiresGrad();
  Sgd opt({x}, 0.1f, 0.0f, /*weight_decay=*/0.5f);
  // No data gradient at all: decay alone must shrink the weight.
  opt.ZeroGrad();
  opt.Step();
  EXPECT_NEAR(x.at(0), 1.0f - 0.1f * 0.5f, 1e-6f);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Tensor x = Tensor::FromVector({3}, {5.0f, -3.0f, 1.0f});
  x.RequiresGrad();
  Tensor target = Tensor::FromVector({3}, {1.0f, 2.0f, -1.0f});
  Adam opt({x}, 0.1f);
  for (int i = 0; i < 500; ++i) QuadraticStep(opt, x, target);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(x.at(i), target.at(i), 1e-2f);
}

TEST(AdamTest, FirstStepMagnitudeIsLearningRate) {
  // With bias correction, the first Adam step is ~lr in the gradient
  // direction regardless of gradient scale.
  for (float scale : {0.01f, 1.0f, 100.0f}) {
    Tensor x = Tensor::FromVector({1}, {0.0f});
    x.RequiresGrad();
    Adam opt({x}, 0.05f);
    opt.ZeroGrad();
    Tensor loss = MulScalar(Sum(x), scale);
    loss.Backward();
    opt.Step();
    EXPECT_NEAR(x.at(0), -0.05f, 1e-4f) << "scale " << scale;
  }
}

TEST(AdamTest, StepCountIncrements) {
  Tensor x = Tensor::FromVector({1}, {1.0f});
  x.RequiresGrad();
  Adam opt({x}, 0.01f);
  EXPECT_EQ(opt.step_count(), 0);
  QuadraticStep(opt, x, Tensor::FromVector({1}, {0.0f}));
  EXPECT_EQ(opt.step_count(), 1);
}

TEST(OptimizerTest, ZeroGradClearsAllParameters) {
  Tensor a = Tensor::FromVector({2}, {1, 2});
  a.RequiresGrad();
  Tensor b = Tensor::FromVector({2}, {3, 4});
  b.RequiresGrad();
  Sgd opt({a, b}, 0.1f);
  Sum(Add(Square(a), Square(b))).Backward();
  EXPECT_NE(a.grad()[0], 0.0f);
  EXPECT_NE(b.grad()[0], 0.0f);
  opt.ZeroGrad();
  for (float g : a.grad()) EXPECT_EQ(g, 0.0f);
  for (float g : b.grad()) EXPECT_EQ(g, 0.0f);
}

TEST(OptimizerDeathTest, RejectsNonGradParameters) {
  Tensor x = Tensor::FromVector({1}, {1.0f});  // No RequiresGrad.
  EXPECT_DEATH(Sgd({x}, 0.1f), "require grad");
}

// --- Checkpoint state round-trips -------------------------------------------

TEST(AdamTest, StateRoundTripContinuesBitwise) {
  // Two optimizers over identical parameters: run A for 5 steps, serialize,
  // load into B (fresh moments), then both must take *bitwise* identical
  // steps — the moments and bias-correction step count fully transferred.
  Tensor xa = Tensor::FromVector({3}, {5.0f, -3.0f, 1.0f});
  xa.RequiresGrad();
  Tensor target = Tensor::FromVector({3}, {1.0f, 2.0f, -1.0f});
  Adam a({xa}, 0.1f);
  for (int i = 0; i < 5; ++i) QuadraticStep(a, xa, target);

  Tensor xb = Tensor::FromVector({3}, {xa.at(0), xa.at(1), xa.at(2)});
  xb.RequiresGrad();
  Adam b({xb}, 0.05f);  // Different LR: must be overwritten by LoadState.
  ByteWriter writer;
  a.SaveState(writer);
  ByteReader reader(writer.buffer());
  ASSERT_TRUE(b.LoadState(reader));
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(b.step_count(), 5);
  EXPECT_EQ(b.learning_rate(), a.learning_rate());

  for (int i = 0; i < 5; ++i) {
    QuadraticStep(a, xa, target);
    QuadraticStep(b, xb, target);
    for (int j = 0; j < 3; ++j) {
      ASSERT_EQ(xa.at(j), xb.at(j)) << "step " << i << " param " << j;
    }
  }
}

TEST(SgdTest, StateRoundTripRestoresVelocity) {
  Tensor xa = Tensor::FromVector({2}, {4.0f, -4.0f});
  xa.RequiresGrad();
  Tensor target = Tensor::FromVector({2}, {0.0f, 0.0f});
  Sgd a({xa}, 0.05f, /*momentum=*/0.9f);
  for (int i = 0; i < 4; ++i) QuadraticStep(a, xa, target);

  Tensor xb = Tensor::FromVector({2}, {xa.at(0), xa.at(1)});
  xb.RequiresGrad();
  Sgd b({xb}, 0.05f, 0.9f);
  ByteWriter writer;
  a.SaveState(writer);
  ByteReader reader(writer.buffer());
  ASSERT_TRUE(b.LoadState(reader));

  for (int i = 0; i < 4; ++i) {
    QuadraticStep(a, xa, target);
    QuadraticStep(b, xb, target);
    ASSERT_EQ(xa.at(0), xb.at(0));
    ASSERT_EQ(xa.at(1), xb.at(1));
  }
}

TEST(AdamTest, LoadStateRejectsMismatchedParameterShapes) {
  Tensor x3 = Tensor::FromVector({3}, {1, 2, 3});
  x3.RequiresGrad();
  Adam a({x3}, 0.1f);
  Tensor t = Tensor::FromVector({3}, {0, 0, 0});
  QuadraticStep(a, x3, t);

  Tensor x2 = Tensor::FromVector({2}, {1, 2});
  x2.RequiresGrad();
  Adam b({x2}, 0.1f);
  ByteWriter writer;
  a.SaveState(writer);
  ByteReader reader(writer.buffer());
  EXPECT_FALSE(b.LoadState(reader));
  EXPECT_EQ(b.step_count(), 0);  // State untouched on failure.
}

TEST(AdamTest, LoadStateRejectsTruncatedInput) {
  Tensor x = Tensor::FromVector({2}, {1, 2});
  x.RequiresGrad();
  Adam a({x}, 0.1f);
  QuadraticStep(a, x, Tensor::FromVector({2}, {0, 0}));
  ByteWriter writer;
  a.SaveState(writer);
  std::string truncated = writer.buffer().substr(0, writer.buffer().size() - 3);

  Tensor y = Tensor::FromVector({2}, {1, 2});
  y.RequiresGrad();
  Adam b({y}, 0.1f);
  ByteReader reader(truncated);
  EXPECT_FALSE(b.LoadState(reader));
  EXPECT_EQ(b.step_count(), 0);
}

TEST(CosineScheduleTest, StateRoundTripRestoresPosition) {
  Tensor x = Tensor::FromVector({1}, {1.0f});
  x.RequiresGrad();
  Sgd opt({x}, 0.1f);
  CosineAnnealingSchedule a(0.1f, 20);
  a.OnEpoch(opt, 7);
  EXPECT_EQ(a.last_epoch(), 7);

  CosineAnnealingSchedule b(0.1f, 20);
  ByteWriter writer;
  a.SaveState(writer);
  ByteReader reader(writer.buffer());
  ASSERT_TRUE(b.LoadState(reader));
  EXPECT_EQ(b.last_epoch(), 7);
}

TEST(CosineScheduleTest, LoadStateRejectsDifferentHorizon) {
  CosineAnnealingSchedule a(0.1f, 20);
  CosineAnnealingSchedule b(0.1f, 30);  // Different max_epochs.
  ByteWriter writer;
  a.SaveState(writer);
  ByteReader reader(writer.buffer());
  EXPECT_FALSE(b.LoadState(reader));
  EXPECT_EQ(b.last_epoch(), -1);
}

TEST(CosineScheduleTest, EndpointsAndMidpoint) {
  CosineAnnealingSchedule schedule(/*lr_max=*/0.1f, /*max_epochs=*/100, /*lr_min=*/0.0f);
  EXPECT_NEAR(schedule.LearningRateAt(0), 0.1f, 1e-6f);
  EXPECT_NEAR(schedule.LearningRateAt(50), 0.05f, 1e-6f);
  EXPECT_NEAR(schedule.LearningRateAt(100), 0.0f, 1e-6f);
}

TEST(CosineScheduleTest, MonotoneDecreasing) {
  CosineAnnealingSchedule schedule(0.1f, 50);
  for (int e = 1; e <= 50; ++e) {
    EXPECT_LE(schedule.LearningRateAt(e), schedule.LearningRateAt(e - 1) + 1e-7f);
  }
}

TEST(CosineScheduleTest, ClampsOutOfRangeEpochs) {
  CosineAnnealingSchedule schedule(0.1f, 10, 0.01f);
  EXPECT_NEAR(schedule.LearningRateAt(-5), 0.1f, 1e-6f);
  EXPECT_NEAR(schedule.LearningRateAt(99), 0.01f, 1e-6f);
}

TEST(CosineScheduleTest, OnEpochUpdatesOptimizer) {
  Tensor x = Tensor::FromVector({1}, {1.0f});
  x.RequiresGrad();
  Sgd opt({x}, 0.1f);
  CosineAnnealingSchedule schedule(0.1f, 10);
  schedule.OnEpoch(opt, 10);
  EXPECT_NEAR(opt.learning_rate(), 0.0f, 1e-6f);
}

}  // namespace
}  // namespace sarn::tensor
