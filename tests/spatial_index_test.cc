#include "geo/spatial_index.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geo/point.h"

namespace sarn::geo {
namespace {

class SpatialIndexTest : public testing::Test {
 protected:
  SpatialIndexTest() : proj_(LatLng{30.0, 104.0}) {}

  // Points on a 10x10 lattice with 100 m spacing.
  std::vector<LatLng> LatticePoints() {
    std::vector<LatLng> points;
    for (int i = 0; i < 10; ++i) {
      for (int j = 0; j < 10; ++j) {
        points.push_back(proj_.ToLatLng(i * 100.0, j * 100.0));
      }
    }
    return points;
  }

  LocalProjection proj_;
};

TEST_F(SpatialIndexTest, WithinRadiusMatchesBruteForce) {
  std::vector<LatLng> points = LatticePoints();
  SpatialIndex index(points, 150.0);
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    LatLng center = proj_.ToLatLng(rng.Uniform(0, 900), rng.Uniform(0, 900));
    double radius = rng.Uniform(50, 400);
    std::vector<uint32_t> got = index.WithinRadius(center, radius);
    std::set<uint32_t> got_set(got.begin(), got.end());
    EXPECT_EQ(got_set.size(), got.size()) << "duplicates returned";
    for (uint32_t id = 0; id < points.size(); ++id) {
      bool expected = HaversineMeters(center, points[id]) <= radius;
      EXPECT_EQ(got_set.count(id) > 0, expected) << "id " << id;
    }
  }
}

TEST_F(SpatialIndexTest, NearestMatchesBruteForce) {
  std::vector<LatLng> points = LatticePoints();
  SpatialIndex index(points, 150.0);
  Rng rng(6);
  for (int trial = 0; trial < 50; ++trial) {
    LatLng center = proj_.ToLatLng(rng.Uniform(-100, 1000), rng.Uniform(-100, 1000));
    auto got = index.Nearest(center);
    ASSERT_TRUE(got.has_value());
    double best = 1e18;
    for (const LatLng& p : points) best = std::min(best, HaversineMeters(center, p));
    EXPECT_NEAR(HaversineMeters(center, points[*got]), best, 1e-6);
  }
}

TEST_F(SpatialIndexTest, EmptyIndexBehaviour) {
  SpatialIndex index({}, 100.0);
  EXPECT_TRUE(index.WithinRadius(LatLng{30, 104}, 1000.0).empty());
  EXPECT_FALSE(index.Nearest(LatLng{30, 104}).has_value());
}

TEST_F(SpatialIndexTest, SinglePoint) {
  LatLng p = proj_.ToLatLng(50.0, 50.0);
  SpatialIndex index({p}, 100.0);
  auto nearest = index.Nearest(proj_.ToLatLng(500.0, 500.0));
  ASSERT_TRUE(nearest.has_value());
  EXPECT_EQ(*nearest, 0u);
  EXPECT_EQ(index.WithinRadius(p, 1.0).size(), 1u);
}

TEST_F(SpatialIndexTest, NearestRespectsMaxRadius) {
  LatLng p = proj_.ToLatLng(0.0, 0.0);
  SpatialIndex index({p}, 100.0);
  LatLng far = proj_.ToLatLng(5000.0, 0.0);
  EXPECT_FALSE(index.Nearest(far, /*max_radius_meters=*/1000.0).has_value());
  EXPECT_TRUE(index.Nearest(far, /*max_radius_meters=*/6000.0).has_value());
}

TEST_F(SpatialIndexTest, DuplicatePointsAllReturned) {
  LatLng p = proj_.ToLatLng(10.0, 10.0);
  SpatialIndex index({p, p, p}, 100.0);
  EXPECT_EQ(index.WithinRadius(p, 1.0).size(), 3u);
}

TEST_F(SpatialIndexTest, LargeRandomConsistency) {
  Rng rng(7);
  std::vector<LatLng> points;
  for (int i = 0; i < 2000; ++i) {
    points.push_back(proj_.ToLatLng(rng.Uniform(0, 5000), rng.Uniform(0, 5000)));
  }
  SpatialIndex index(points, 200.0);
  LatLng center = proj_.ToLatLng(2500.0, 2500.0);
  std::vector<uint32_t> got = index.WithinRadius(center, 300.0);
  size_t brute = 0;
  for (const LatLng& p : points) {
    if (HaversineMeters(center, p) <= 300.0) ++brute;
  }
  EXPECT_EQ(got.size(), brute);
}

}  // namespace
}  // namespace sarn::geo
