#include "nn/linear.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nn/losses.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"

namespace sarn::nn {
namespace {

using tensor::Tensor;

TEST(LinearTest, OutputShape) {
  Rng rng(1);
  Linear layer(4, 3, rng);
  Tensor x = Tensor::Zeros({5, 4});
  Tensor y = layer.Forward(x);
  EXPECT_EQ(y.shape(), (tensor::Shape{5, 3}));
}

TEST(LinearTest, ZeroInputGivesBias) {
  Rng rng(2);
  Linear layer(4, 2, rng);
  Tensor y = layer.Forward(Tensor::Zeros({1, 4}));
  // Bias initialises to zero.
  EXPECT_EQ(y.at(0, 0), 0.0f);
  EXPECT_EQ(y.at(0, 1), 0.0f);
}

TEST(LinearTest, NoBiasVariant) {
  Rng rng(3);
  Linear layer(4, 2, rng, /*bias=*/false);
  EXPECT_EQ(layer.Parameters().size(), 1u);
}

TEST(LinearTest, ParameterCount) {
  Rng rng(4);
  Linear layer(4, 3, rng);
  EXPECT_EQ(layer.NumParameters(), 4 * 3 + 3);
}

TEST(LinearTest, LearnsLinearMap) {
  Rng rng(5);
  Linear layer(2, 1, rng);
  tensor::Adam opt(layer.Parameters(), 0.05f);
  // Target: y = 2*x0 - 3*x1 + 0.5
  for (int iter = 0; iter < 600; ++iter) {
    Tensor x = Tensor::Uniform({16, 2}, rng, -1.0f, 1.0f);
    std::vector<float> target_values;
    for (int64_t i = 0; i < 16; ++i) {
      target_values.push_back(2.0f * x.at(i, 0) - 3.0f * x.at(i, 1) + 0.5f);
    }
    Tensor target = Tensor::FromVector({16, 1}, target_values);
    opt.ZeroGrad();
    Tensor loss = MseLoss(layer.Forward(x), target);
    loss.Backward();
    opt.Step();
  }
  Tensor probe = Tensor::FromVector({1, 2}, {1.0f, 1.0f});
  EXPECT_NEAR(layer.Forward(probe).at(0, 0), -0.5f, 0.05f);
}

TEST(FfnTest, StructureAndShapes) {
  Rng rng(6);
  Ffn ffn({8, 16, 4}, Activation::kRelu, rng);
  EXPECT_EQ(ffn.num_layers(), 2u);
  Tensor y = ffn.Forward(Tensor::Zeros({3, 8}));
  EXPECT_EQ(y.shape(), (tensor::Shape{3, 4}));
}

TEST(FfnTest, LearnsXor) {
  Rng rng(7);
  Ffn ffn({2, 8, 2}, Activation::kTanh, rng);
  tensor::Adam opt(ffn.Parameters(), 0.05f);
  Tensor x = Tensor::FromVector({4, 2}, {0, 0, 0, 1, 1, 0, 1, 1});
  std::vector<int64_t> labels = {0, 1, 1, 0};
  for (int iter = 0; iter < 500; ++iter) {
    opt.ZeroGrad();
    Tensor loss = CrossEntropyWithLogits(ffn.Forward(x), labels);
    loss.Backward();
    opt.Step();
  }
  Tensor logits = ffn.Forward(x);
  for (int64_t i = 0; i < 4; ++i) {
    int64_t pred = logits.at(i, 0) > logits.at(i, 1) ? 0 : 1;
    EXPECT_EQ(pred, labels[static_cast<size_t>(i)]) << "row " << i;
  }
}

TEST(ApplyTest, AllActivationsFinite) {
  Tensor x = Tensor::FromVector({4}, {-2.0f, -0.1f, 0.1f, 2.0f});
  for (Activation act : {Activation::kNone, Activation::kRelu, Activation::kLeakyRelu,
                         Activation::kElu, Activation::kSigmoid, Activation::kTanh}) {
    Tensor y = Apply(act, x);
    for (float v : y.data()) EXPECT_TRUE(std::isfinite(v));
  }
}

}  // namespace
}  // namespace sarn::nn
