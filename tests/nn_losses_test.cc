#include "nn/losses.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/ops.h"

namespace sarn::nn {
namespace {

using tensor::Tensor;

TEST(LossesTest, MseZeroForIdentical) {
  Tensor a = Tensor::FromVector({3}, {1, 2, 3});
  EXPECT_FLOAT_EQ(MseLoss(a, a).item(), 0.0f);
}

TEST(LossesTest, MseKnownValue) {
  Tensor p = Tensor::FromVector({2}, {1, 3});
  Tensor t = Tensor::FromVector({2}, {0, 1});
  EXPECT_FLOAT_EQ(MseLoss(p, t).item(), (1.0f + 4.0f) / 2.0f);
}

TEST(LossesTest, L1KnownValue) {
  Tensor p = Tensor::FromVector({2}, {1, -3});
  Tensor t = Tensor::FromVector({2}, {0, 1});
  EXPECT_FLOAT_EQ(L1Loss(p, t).item(), (1.0f + 4.0f) / 2.0f);
}

TEST(LossesTest, CrossEntropyUniformLogits) {
  Tensor logits = Tensor::Zeros({4, 3});
  EXPECT_NEAR(CrossEntropyWithLogits(logits, {0, 1, 2, 0}).item(), std::log(3.0f), 1e-5f);
}

TEST(LossesTest, CrossEntropyConfidentCorrectIsSmall) {
  Tensor logits = Tensor::FromVector({1, 2}, {10.0f, -10.0f});
  EXPECT_LT(CrossEntropyWithLogits(logits, {0}).item(), 1e-4f);
}

TEST(LossesTest, CrossEntropyConfidentWrongIsLarge) {
  Tensor logits = Tensor::FromVector({1, 2}, {10.0f, -10.0f});
  EXPECT_GT(CrossEntropyWithLogits(logits, {1}).item(), 10.0f);
}

TEST(LossesTest, BceMatchesManualComputation) {
  Tensor logits = Tensor::FromVector({2}, {0.0f, 2.0f});
  float expected =
      (-std::log(0.5f) - std::log(1.0f / (1.0f + std::exp(-2.0f)))) / 2.0f;
  EXPECT_NEAR(BinaryCrossEntropyWithLogits(logits, {1.0f, 1.0f}).item(), expected, 1e-5f);
}

TEST(LossesTest, BceStableForExtremeLogits) {
  Tensor logits = Tensor::FromVector({2}, {-80.0f, 80.0f});
  float loss = BinaryCrossEntropyWithLogits(logits, {0.0f, 1.0f}).item();
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_NEAR(loss, 0.0f, 1e-4f);
}

TEST(LossesTest, InfoNceUniformSimilaritiesGiveLogK1) {
  // Equal positive and negative similarities: -log(1/(K+1)).
  Tensor pos = Tensor::Zeros({4});
  Tensor neg = Tensor::Zeros({4, 7});
  EXPECT_NEAR(InfoNceLoss(pos, neg, 1.0f).item(), std::log(8.0f), 1e-5f);
}

TEST(LossesTest, InfoNceDecreasesWithBetterPositive) {
  Tensor neg = Tensor::Zeros({2, 5});
  float worse = InfoNceLoss(Tensor::Full({2}, 0.1f), neg, 0.5f).item();
  float better = InfoNceLoss(Tensor::Full({2}, 2.0f), neg, 0.5f).item();
  EXPECT_LT(better, worse);
}

TEST(LossesTest, InfoNceIncreasesWithHarderNegatives) {
  Tensor pos = Tensor::Full({2}, 1.0f);
  float easy = InfoNceLoss(pos, Tensor::Full({2, 5}, -1.0f), 0.5f).item();
  float hard = InfoNceLoss(pos, Tensor::Full({2, 5}, 1.0f), 0.5f).item();
  EXPECT_GT(hard, easy);
}

TEST(LossesTest, InfoNceTemperatureSharpens) {
  // With pos > neg, smaller temperature pushes loss towards zero.
  Tensor pos = Tensor::Full({2}, 1.0f);
  Tensor neg = Tensor::Full({2, 5}, 0.5f);
  float cool = InfoNceLoss(pos, neg, 0.05f).item();
  float warm = InfoNceLoss(pos, neg, 1.0f).item();
  EXPECT_LT(cool, warm);
}

TEST(LossesTest, InfoNceGradientPullsPositiveUp) {
  Tensor pos = Tensor::Zeros({3});
  pos.RequiresGrad();
  Tensor neg = Tensor::Zeros({3, 4});
  neg.RequiresGrad();
  InfoNceLoss(pos, neg, 0.5f).Backward();
  for (float g : pos.grad()) EXPECT_LT(g, 0.0f);  // Increasing pos lowers loss.
  for (float g : neg.grad()) EXPECT_GT(g, 0.0f);  // Increasing neg raises loss.
}

}  // namespace
}  // namespace sarn::nn
