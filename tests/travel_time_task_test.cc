#include "tasks/travel_time_task.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/sarn_model.h"
#include "roadnet/synthetic_city.h"
#include "traj/trajectory_generator.h"

namespace sarn::tasks {
namespace {

class TravelTimeTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    roadnet::SyntheticCityConfig city;
    city.rows = 12;
    city.cols = 12;
    network_ = new roadnet::RoadNetwork(roadnet::GenerateSyntheticCity(city));
  }
  static void TearDownTestSuite() {
    delete network_;
    network_ = nullptr;
  }

  static std::vector<std::vector<int64_t>> MakeRoutes(int count) {
    traj::TrajectoryGeneratorConfig config;
    config.min_route_segments = 6;
    traj::TrajectoryGenerator generator(*network_, config);
    std::vector<std::vector<int64_t>> routes;
    for (const auto& trip : generator.Generate(count)) {
      routes.push_back(trip.ground_truth);
    }
    return routes;
  }

  static roadnet::RoadNetwork* network_;
};

roadnet::RoadNetwork* TravelTimeTest::network_ = nullptr;

TEST_F(TravelTimeTest, SimulatedTimePositiveAndAdditive) {
  auto routes = MakeRoutes(5);
  ASSERT_FALSE(routes.empty());
  const auto& route = routes[0];
  double whole = SimulatedTravelTimeSeconds(*network_, route);
  EXPECT_GT(whole, 0.0);
  // Additivity: time(route) = time(prefix) + time(suffix).
  size_t half = route.size() / 2;
  std::vector<int64_t> prefix(route.begin(), route.begin() + static_cast<int64_t>(half));
  std::vector<int64_t> suffix(route.begin() + static_cast<int64_t>(half), route.end());
  EXPECT_NEAR(whole,
              SimulatedTravelTimeSeconds(*network_, prefix) +
                  SimulatedTravelTimeSeconds(*network_, suffix),
              1e-9);
}

TEST_F(TravelTimeTest, FasterRoadsYieldShorterTimesPerMeter) {
  // A motorway segment must be traversed faster than a residential one.
  roadnet::SegmentId motorway = -1, residential = -1;
  for (int64_t i = 0; i < network_->num_segments(); ++i) {
    if (network_->segment(i).type == roadnet::HighwayType::kMotorway) motorway = i;
    if (network_->segment(i).type == roadnet::HighwayType::kResidential) residential = i;
  }
  ASSERT_GE(motorway, 0);
  ASSERT_GE(residential, 0);
  double motorway_rate = SimulatedTravelTimeSeconds(*network_, {motorway}) /
                         network_->segment(motorway).length_meters;
  double residential_rate = SimulatedTravelTimeSeconds(*network_, {residential}) /
                            network_->segment(residential).length_meters;
  EXPECT_LT(motorway_rate, residential_rate);
}

TEST_F(TravelTimeTest, EvaluateLearnsBetterThanMeanPredictor) {
  auto routes = MakeRoutes(120);
  TravelTimeConfig config;
  config.epochs = 6;
  TravelTimeTask task(*network_, routes, config);

  core::SarnConfig sarn_config;
  sarn_config.hidden_dim = 16;
  sarn_config.embedding_dim = 16;
  sarn_config.projection_dim = 8;
  sarn_config.gat_layers = 2;
  sarn_config.gat_heads = 2;
  sarn_config.feature_dim_per_feature = 4;
  sarn_config.max_epochs = 8;
  core::SarnModel model(*network_, sarn_config);
  model.Train();
  FrozenEmbeddingSource source(model.Embeddings());
  TravelTimeResult result = task.Evaluate(source);
  EXPECT_GT(result.num_test, 10);
  EXPECT_TRUE(std::isfinite(result.mae_seconds));
  EXPECT_LT(result.mape, 0.6);  // Should be a real predictor, not noise.
}

TEST_F(TravelTimeTest, RejectsTooFewRoutes) {
  auto routes = MakeRoutes(5);
  TravelTimeConfig config;
  EXPECT_DEATH({ TravelTimeTask task(*network_, routes, config); }, "");
}

}  // namespace
}  // namespace sarn::tasks
