#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geo/point.h"
#include "roadnet/synthetic_city.h"
#include "traj/frechet.h"
#include "traj/map_matching.h"
#include "traj/trajectory.h"
#include "traj/trajectory_generator.h"

namespace sarn::traj {
namespace {

std::vector<geo::LatLng> Line(const geo::LocalProjection& proj, double y, int n,
                              double step = 100.0) {
  std::vector<geo::LatLng> points;
  for (int i = 0; i < n; ++i) points.push_back(proj.ToLatLng(i * step, y));
  return points;
}

class FrechetTest : public testing::Test {
 protected:
  FrechetTest() : proj_(geo::LatLng{30.0, 104.0}) {}
  geo::LocalProjection proj_;
};

TEST_F(FrechetTest, IdenticalCurvesZero) {
  auto a = Line(proj_, 0.0, 10);
  EXPECT_NEAR(DiscreteFrechet(a, a), 0.0, 1e-9);
}

TEST_F(FrechetTest, ParallelLinesDistanceIsOffset) {
  auto a = Line(proj_, 0.0, 10);
  auto b = Line(proj_, 250.0, 10);
  EXPECT_NEAR(DiscreteFrechet(a, b), 250.0, 2.0);
}

TEST_F(FrechetTest, Symmetric) {
  auto a = Line(proj_, 0.0, 8);
  auto b = Line(proj_, 100.0, 5);
  EXPECT_NEAR(DiscreteFrechet(a, b), DiscreteFrechet(b, a), 1e-9);
}

TEST_F(FrechetTest, TriangleInequalityHolds) {
  Rng rng(2);
  auto random_curve = [&](int n) {
    std::vector<geo::LatLng> pts;
    for (int i = 0; i < n; ++i) {
      pts.push_back(proj_.ToLatLng(rng.Uniform(0, 2000), rng.Uniform(0, 2000)));
    }
    return pts;
  };
  for (int trial = 0; trial < 20; ++trial) {
    auto a = random_curve(6), b = random_curve(7), c = random_curve(5);
    double ab = DiscreteFrechet(a, b);
    double bc = DiscreteFrechet(b, c);
    double ac = DiscreteFrechet(a, c);
    EXPECT_LE(ac, ab + bc + 1e-6);
  }
}

TEST_F(FrechetTest, DominatesEndpointDistances) {
  // Fréchet >= max(d(a0,b0), d(an,bm)) for coupled endpoints.
  auto a = Line(proj_, 0.0, 6);
  auto b = Line(proj_, 300.0, 9);
  double endpoint = geo::HaversineMeters(a.front(), b.front());
  EXPECT_GE(DiscreteFrechet(a, b) + 1e-6, endpoint);
}

TEST_F(FrechetTest, SinglePointCurves) {
  std::vector<geo::LatLng> a = {proj_.ToLatLng(0, 0)};
  std::vector<geo::LatLng> b = {proj_.ToLatLng(300, 400)};
  EXPECT_NEAR(DiscreteFrechet(a, b), 500.0, 1.0);
}

TEST_F(FrechetTest, ReversedCurveIsFar) {
  // Fréchet is order-aware: reversing a long line yields ~its length.
  auto a = Line(proj_, 0.0, 20);
  auto b = a;
  std::reverse(b.begin(), b.end());
  EXPECT_GT(DiscreteFrechet(a, b), 900.0);
}

TEST(TrajectoryTest, SplitOnTimeGap) {
  Trajectory t;
  for (int i = 0; i < 5; ++i) t.points.push_back({{30.0, 104.0}, i * 10.0});
  t.points.push_back({{30.0, 104.0}, 2000.0});  // 20+ min gap.
  t.points.push_back({{30.0, 104.0}, 2010.0});
  auto pieces = SplitOnTimeGap(t, 1200.0);
  ASSERT_EQ(pieces.size(), 2u);
  EXPECT_EQ(pieces[0].size(), 5u);
  EXPECT_EQ(pieces[1].size(), 2u);
}

TEST(TrajectoryTest, SplitDiscardsSingletons) {
  Trajectory t;
  t.points.push_back({{30.0, 104.0}, 0.0});
  t.points.push_back({{30.0, 104.0}, 5000.0});
  auto pieces = SplitOnTimeGap(t, 1200.0);
  EXPECT_TRUE(pieces.empty());
}

TEST(TrajectoryTest, TruncateSegments) {
  MatchedTrajectory m;
  for (int i = 0; i < 100; ++i) m.segments.push_back(i);
  EXPECT_EQ(TruncateSegments(m, 60).size(), 60u);
  EXPECT_EQ(TruncateSegments(m, 200).size(), 100u);
  EXPECT_EQ(TruncateSegments(m, 60).segments[59], 59);
}

TEST(TrajectoryTest, LengthMeters) {
  geo::LocalProjection proj(geo::LatLng{30.0, 104.0});
  Trajectory t;
  t.points.push_back({proj.ToLatLng(0, 0), 0});
  t.points.push_back({proj.ToLatLng(300, 0), 10});
  t.points.push_back({proj.ToLatLng(300, 400), 20});
  EXPECT_NEAR(t.LengthMeters(), 700.0, 2.0);
}

TEST(PointToSegmentTest, PerpendicularAndClamped) {
  geo::LocalProjection proj(geo::LatLng{30.0, 104.0});
  geo::LatLng s = proj.ToLatLng(0, 0);
  geo::LatLng e = proj.ToLatLng(100, 0);
  // Perpendicular foot inside the segment.
  EXPECT_NEAR(PointToSegmentMeters(proj.ToLatLng(50, 30), s, e), 30.0, 0.5);
  // Beyond the end: distance to the endpoint.
  EXPECT_NEAR(PointToSegmentMeters(proj.ToLatLng(160, 80), s, e), 100.0, 0.5);
  // Degenerate segment.
  EXPECT_NEAR(PointToSegmentMeters(proj.ToLatLng(30, 40), s, s), 50.0, 0.5);
}

class GeneratorMatcherTest : public testing::Test {
 protected:
  GeneratorMatcherTest() {
    roadnet::SyntheticCityConfig config;
    config.rows = 14;
    config.cols = 14;
    network_ = roadnet::GenerateSyntheticCity(config);
  }
  roadnet::RoadNetwork network_;
};

TEST_F(GeneratorMatcherTest, GeneratesValidRoutes) {
  TrajectoryGeneratorConfig config;
  config.min_route_segments = 5;
  TrajectoryGenerator generator(network_, config);
  auto trips = generator.Generate(20);
  ASSERT_EQ(trips.size(), 20u);
  graph::CsrGraph routing = network_.ToLengthWeightedGraph();
  for (const GeneratedTrajectory& trip : trips) {
    ASSERT_GE(trip.ground_truth.size(), 5u);
    EXPECT_GE(trip.gps.points.size(), 2u);
    // Ground truth is a connected path in the segment graph.
    for (size_t i = 0; i + 1 < trip.ground_truth.size(); ++i) {
      auto neighbors = routing.OutNeighbors(trip.ground_truth[i]);
      EXPECT_TRUE(std::find(neighbors.begin(), neighbors.end(),
                            trip.ground_truth[i + 1]) != neighbors.end());
    }
    // Timestamps strictly increasing.
    for (size_t i = 1; i < trip.gps.points.size(); ++i) {
      EXPECT_GT(trip.gps.points[i].timestamp_s, trip.gps.points[i - 1].timestamp_s);
    }
  }
}

TEST_F(GeneratorMatcherTest, ChainedLegsProduceLongTrajectories) {
  TrajectoryGeneratorConfig single;
  single.min_route_segments = 6;
  TrajectoryGeneratorConfig chained = single;
  chained.legs = 8;
  chained.max_route_segments = 400;
  TrajectoryGenerator g1(network_, single);
  TrajectoryGenerator g8(network_, chained);
  double mean1 = 0, mean8 = 0;
  auto trips1 = g1.Generate(10);
  auto trips8 = g8.Generate(10);
  for (const auto& t : trips1) mean1 += static_cast<double>(t.ground_truth.size());
  for (const auto& t : trips8) mean8 += static_cast<double>(t.ground_truth.size());
  mean1 /= trips1.size();
  mean8 /= trips8.size();
  EXPECT_GT(mean8, mean1 * 3.0);
  // Chained routes are still connected paths.
  graph::CsrGraph routing = network_.ToLengthWeightedGraph();
  for (const auto& trip : trips8) {
    for (size_t i = 0; i + 1 < trip.ground_truth.size(); ++i) {
      auto neighbors = routing.OutNeighbors(trip.ground_truth[i]);
      ASSERT_TRUE(std::find(neighbors.begin(), neighbors.end(),
                            trip.ground_truth[i + 1]) != neighbors.end());
    }
  }
}

TEST_F(GeneratorMatcherTest, DeterministicForSeed) {
  TrajectoryGeneratorConfig config;
  config.seed = 99;
  TrajectoryGenerator g1(network_, config);
  TrajectoryGenerator g2(network_, config);
  auto a = g1.Generate(5);
  auto b = g2.Generate(5);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ground_truth, b[i].ground_truth);
  }
}

TEST_F(GeneratorMatcherTest, SnapPointFindsCoveringSegment) {
  MapMatcher matcher(network_);
  for (int64_t sid = 0; sid < std::min<int64_t>(network_.num_segments(), 50); sid += 7) {
    const roadnet::RoadSegment& s = network_.segment(sid);
    roadnet::SegmentId snapped = matcher.SnapPoint(s.Midpoint());
    ASSERT_GE(snapped, 0);
    // The snap must be geometrically at least as close as the true segment.
    const roadnet::RoadSegment& t = network_.segment(snapped);
    EXPECT_LE(PointToSegmentMeters(s.Midpoint(), t.start, t.end),
              PointToSegmentMeters(s.Midpoint(), s.start, s.end) + 1e-6);
  }
}

TEST_F(GeneratorMatcherTest, SnapPointRejectsFarAway) {
  MapMatcher matcher(network_);
  geo::LocalProjection proj(
      geo::LatLng{network_.bounding_box().min_lat, network_.bounding_box().min_lng});
  geo::LatLng far = proj.ToLatLng(-5000.0, -5000.0);
  EXPECT_EQ(matcher.SnapPoint(far), -1);
}

TEST_F(GeneratorMatcherTest, MatchRecoversMostOfGroundTruth) {
  TrajectoryGeneratorConfig config;
  config.gps_noise_meters = 6.0;
  config.sample_interval_s = 8.0;
  TrajectoryGenerator generator(network_, config);
  MapMatcher matcher(network_);
  auto trips = generator.Generate(10);
  ASSERT_FALSE(trips.empty());
  double total_recall = 0.0;
  for (const GeneratedTrajectory& trip : trips) {
    MatchedTrajectory matched = matcher.Match(trip.gps);
    ASSERT_FALSE(matched.empty());
    std::set<roadnet::SegmentId> matched_set(matched.segments.begin(),
                                             matched.segments.end());
    int hit = 0;
    for (roadnet::SegmentId sid : trip.ground_truth) {
      hit += matched_set.count(sid) > 0 ? 1 : 0;
    }
    total_recall += static_cast<double>(hit) / trip.ground_truth.size();
  }
  // The matcher may pick a parallel twin segment occasionally; most of the
  // route must still be recovered.
  EXPECT_GT(total_recall / trips.size(), 0.6);
}

TEST_F(GeneratorMatcherTest, MatchedMidpointsAlignWithGps) {
  TrajectoryGeneratorConfig config;
  config.gps_noise_meters = 5.0;
  TrajectoryGenerator generator(network_, config);
  MapMatcher matcher(network_);
  auto trip = generator.GenerateOne();
  ASSERT_TRUE(trip.has_value());
  MatchedTrajectory matched = matcher.Match(trip->gps);
  std::vector<geo::LatLng> mids = MatchedMidpoints(matched, network_);
  std::vector<geo::LatLng> gps;
  for (const GpsPoint& p : trip->gps.points) gps.push_back(p.position);
  // The matched polyline stays within a couple of blocks of the GPS trace.
  EXPECT_LT(DiscreteFrechet(mids, gps), 400.0);
}

}  // namespace
}  // namespace sarn::traj
