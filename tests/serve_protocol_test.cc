#include "serve/protocol.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "serve/query_engine.h"

namespace sarn::serve {
namespace {

constexpr int kDefaultK = 10;

ParsedLine Parse(const std::string& line) { return ParseRequestLine(line, kDefaultK); }

TEST(ServeProtocolTest, ParsesByIdWithDefaults) {
  ParsedLine parsed = Parse(R"({"id":12})");
  ASSERT_EQ(parsed.op, ParsedLine::Op::kQuery);  // "op" defaults to query.
  EXPECT_EQ(parsed.request.kind, ServeRequest::Kind::kById);
  EXPECT_EQ(parsed.request.id, 12);
  EXPECT_EQ(parsed.request.k, kDefaultK);
}

TEST(ServeProtocolTest, ParsesExplicitQueryWithK) {
  ParsedLine parsed = Parse(R"({"op":"query","id":0,"k":3})");
  ASSERT_EQ(parsed.op, ParsedLine::Op::kQuery);
  EXPECT_EQ(parsed.request.id, 0);
  EXPECT_EQ(parsed.request.k, 3);
}

TEST(ServeProtocolTest, ParsesVector) {
  ParsedLine parsed = Parse(R"({"vector":[1.5,-2,3e-1],"k":2})");
  ASSERT_EQ(parsed.op, ParsedLine::Op::kQuery);
  EXPECT_EQ(parsed.request.kind, ServeRequest::Kind::kByVector);
  ASSERT_EQ(parsed.request.vector.size(), 3u);
  EXPECT_FLOAT_EQ(parsed.request.vector[0], 1.5f);
  EXPECT_FLOAT_EQ(parsed.request.vector[1], -2.0f);
  EXPECT_FLOAT_EQ(parsed.request.vector[2], 0.3f);
}

TEST(ServeProtocolTest, ParsesLatLngAndLonAlias) {
  for (const char* line : {R"({"lat":30.65,"lng":104.06})",
                           R"({"lat":30.65,"lon":104.06})"}) {
    ParsedLine parsed = Parse(line);
    ASSERT_EQ(parsed.op, ParsedLine::Op::kQuery) << line;
    EXPECT_EQ(parsed.request.kind, ServeRequest::Kind::kByPoint);
    EXPECT_DOUBLE_EQ(parsed.request.point.lat, 30.65);
    EXPECT_DOUBLE_EQ(parsed.request.point.lng, 104.06);
  }
}

TEST(ServeProtocolTest, ParsesStatsAndReload) {
  EXPECT_EQ(Parse(R"({"op":"stats"})").op, ParsedLine::Op::kStats);
  EXPECT_EQ(Parse(R"({"op":"statsz"})").op, ParsedLine::Op::kStatsz);
  ParsedLine reload = Parse(R"({"op":"reload","embeddings":"new emb.csv"})");
  ASSERT_EQ(reload.op, ParsedLine::Op::kReload);
  EXPECT_EQ(reload.reload_path, "new emb.csv");
  EXPECT_EQ(Parse(R"({"op":"reload"})").op, ParsedLine::Op::kInvalid);
}

TEST(ServeProtocolTest, StringEscapes) {
  ParsedLine parsed = Parse(R"({"op":"reload","embeddings":"a\tbA\"c"})");
  ASSERT_EQ(parsed.op, ParsedLine::Op::kReload);
  EXPECT_EQ(parsed.reload_path, "a\tbA\"c");
  // ASCII \u escapes decode; non-ASCII ones are out of scope for paths.
  EXPECT_EQ(Parse("{\"op\":\"reload\",\"embeddings\":\"\\u0041.csv\"}").reload_path,
            "A.csv");
  EXPECT_EQ(Parse("{\"op\":\"reload\",\"embeddings\":\"\\u20ac\"}").op,
            ParsedLine::Op::kInvalid);
}

TEST(ServeProtocolTest, RejectsMalformedLines) {
  const char* bad[] = {
      "",                                        // Empty.
      "not json",                                // Not an object.
      R"({"id":1} trailing)",                    // Trailing characters.
      R"({"id":{"nested":1}})",                  // Nested object.
      R"({"id":1,"vector":[1]})",                // Two selectors.
      R"({"k":5})",                              // No selector.
      R"({"id":-1})",                            // Negative id.
      R"({"id":1.5})",                           // Fractional id.
      R"({"id":1,"k":-2})",                      // Negative k.
      R"({"id":1,"k":2000000})",                 // k over the sanity cap.
      R"({"op":"frobnicate","id":1})",           // Unknown op.
      R"({"lat":30.0})",                         // lat without lng.
      R"({"vector":[]})",                        // Empty vector.
      R"({"vector":["x"]})",                     // Non-numeric vector.
      R"({"id":1)",                              // Unterminated object.
  };
  for (const char* line : bad) {
    ParsedLine parsed = Parse(line);
    EXPECT_EQ(parsed.op, ParsedLine::Op::kInvalid) << "'" << line << "'";
    EXPECT_FALSE(parsed.error.empty()) << "'" << line << "'";
  }
}

TEST(ServeProtocolTest, FormattedLinesAreValidJson) {
  ServeResponse ok;
  ok.ok = true;
  ok.epoch = 3;
  ok.cache_hit = true;
  ok.query_id = 12;
  ok.neighbors = {{7, 0.93}, {9, -0.25}};

  ServeResponse vector_response = ok;
  vector_response.query_id = -1;  // No "id" field emitted.

  ServeResponse error;
  error.ok = false;
  error.error = "bad \"quotes\"\nand\tcontrol";

  ServeStats stats;
  stats.requests = 10;
  stats.qps = 123.456;
  stats.latency_p99_ms = 1.25;

  std::vector<std::string> lines = {
      FormatResponseLine(0, ok),
      FormatResponseLine(1, vector_response),
      FormatResponseLine(2, error),
      FormatStatsLine(3, stats),
      FormatErrorLine(4, "plain"),
      FormatReloadLine(5, true, 2, ""),
      FormatReloadLine(6, false, 0, "cannot load x.csv"),
  };
  for (const std::string& line : lines) {
    std::string json_error;
    EXPECT_TRUE(obs::JsonValid(line, &json_error)) << line << ": " << json_error;
  }
  EXPECT_NE(lines[0].find("\"epoch\":3"), std::string::npos);
  EXPECT_NE(lines[0].find("\"id\":12"), std::string::npos);
  EXPECT_EQ(lines[1].find("\"id\":12"), std::string::npos);
  EXPECT_NE(lines[3].find("\"requests\":10"), std::string::npos);
}

TEST(ServeProtocolTest, StatsLineCarriesSnapshotLoadTelemetry) {
  ServeStats stats;
  stats.requests = 2;
  stats.snapshot_loads = 3;
  stats.snapshot_load_errors = 1;
  stats.snapshot_bytes = 4096;
  stats.snapshot_mapped_bytes = 4000;
  stats.snapshot_copied_bytes = 96;
  std::string line = FormatStatsLine(0, stats);
  std::string json_error;
  EXPECT_TRUE(obs::JsonValid(line, &json_error)) << line << ": " << json_error;
  EXPECT_NE(line.find("\"snapshot\":{"), std::string::npos);
  EXPECT_NE(line.find("\"loads\":3"), std::string::npos);
  EXPECT_NE(line.find("\"load_errors\":1"), std::string::npos);
  EXPECT_NE(line.find("\"bytes\":4096"), std::string::npos);
  EXPECT_NE(line.find("\"mapped_bytes\":4000"), std::string::npos);
  EXPECT_NE(line.find("\"copied_bytes\":96"), std::string::npos);
}

TEST(ServeProtocolTest, StatszLineIsValidJsonWithStagesAndRecords) {
  ServeTraceStats stats;
  stats.enabled = true;
  stats.sample_every = 16;
  stats.admitted = 32;
  stats.traced = 2;
  stats.traced_total_ms = 3.5;
  stats.attributed_fraction = 1.0;
  for (const char* name : {"admission", "queue", "cache", "scan", "reply"}) {
    ServeTraceStats::StageStat stage;
    stage.stage = name;
    stage.count = 2;
    stage.total_ms = 0.7;
    stage.p50_ms = 0.3;
    stage.p95_ms = 0.6;
    stage.p99_ms = 0.65;
    stage.exemplars = {16, 32};
    stats.stages.push_back(stage);
  }
  obs::RequestRecord record;
  record.id = 16;
  record.admit_ns = 1000;
  record.enqueued_ns = 1100;
  record.batch_formed_ns = 1200;
  record.scan_begin_ns = 1300;
  record.scan_end_ns = 1900;
  record.replied_ns = 2000;
  record.cache_hit = true;
  record.ok = true;
  stats.recent.push_back(record);
  stats.slowest.push_back(record);

  std::string line = FormatStatszLine(7, stats);
  std::string json_error;
  EXPECT_TRUE(obs::JsonValid(line, &json_error)) << line << ": " << json_error;
  EXPECT_NE(line.find("\"seq\":7"), std::string::npos);
  EXPECT_NE(line.find("\"statsz\":{"), std::string::npos);
  EXPECT_NE(line.find("\"sample_every\":16"), std::string::npos);
  EXPECT_NE(line.find("\"admitted\":32"), std::string::npos);
  EXPECT_NE(line.find("\"attributed_fraction\":1"), std::string::npos);
  for (const char* name : {"admission", "queue", "cache", "scan", "reply"}) {
    EXPECT_NE(line.find(std::string("\"stage\":\"") + name + "\""),
              std::string::npos);
  }
  EXPECT_NE(line.find("\"exemplar_ids\":[16,32]"), std::string::npos);
  EXPECT_NE(line.find("\"recent\":["), std::string::npos);
  EXPECT_NE(line.find("\"slowest\":["), std::string::npos);
  EXPECT_NE(line.find("\"cache_hit\":true"), std::string::npos);
}

TEST(ServeProtocolTest, StatszLineWhenTracingDisabled) {
  ServeTraceStats stats;  // enabled=false, no stages.
  std::string line = FormatStatszLine(0, stats);
  std::string json_error;
  EXPECT_TRUE(obs::JsonValid(line, &json_error)) << line << ": " << json_error;
  EXPECT_NE(line.find("\"enabled\":false"), std::string::npos);
}

// Round-trip: a formatted response parses back through the flat reader used
// for requests (shared grammar subset: flat object, numbers, strings).
TEST(ServeProtocolTest, ErrorLineRoundTripsThroughEscaping) {
  std::string line = FormatErrorLine(9, "path \\ with \"stuff\"\t");
  std::string json_error;
  EXPECT_TRUE(obs::JsonValid(line, &json_error)) << json_error;
}

}  // namespace
}  // namespace sarn::serve
