// Golden-file compatibility suite for snapshot format v1. A small snapshot
// committed under tests/data/ pins the exact on-disk layout: the writer must
// re-encode the deterministic golden contents byte-for-byte, and every
// future build must keep loading the committed file (and answering the
// pinned queries bitwise) forever. Regenerate after a DELIBERATE format
// change with:
//   SARN_REGEN_GOLDEN=1 ./snapshot_compat_test
// and bump kSnapshotVersionMajor/Minor per the rules in format.h.

#include "snapshot/snapshot.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/binary_io.h"
#include "geo/point.h"
#include "tasks/embedding_index.h"
#include "tensor/tensor.h"

namespace sarn::snapshot {
namespace {

using tasks::EmbeddingIndex;
using tasks::IndexMetric;
using tasks::IndexPrecision;
using tasks::Neighbor;
using tensor::Tensor;

constexpr int64_t kGoldenN = 8;
constexpr int64_t kGoldenD = 4;

std::string GoldenPath() {
  return std::string(SARN_TEST_DATA_DIR) + "/golden_v1.sarnsnap";
}

// Pure integer arithmetic producing exact dyadic floats — identical on every
// platform, compiler and libm, so the golden bytes are reproducible.
Tensor GoldenEmbeddings() {
  std::vector<float> values;
  values.reserve(static_cast<size_t>(kGoldenN * kGoldenD));
  for (int64_t i = 0; i < kGoldenN; ++i) {
    for (int64_t j = 0; j < kGoldenD; ++j) {
      const int64_t raw = (i * 31 + j * 17) % 97 - 48;
      values.push_back(static_cast<float>(raw) / 64.0f);
    }
  }
  return Tensor::FromVector({kGoldenN, kGoldenD}, std::move(values));
}

std::vector<geo::LatLng> GoldenMidpoints() {
  std::vector<geo::LatLng> midpoints(static_cast<size_t>(kGoldenN));
  for (size_t i = 0; i < midpoints.size(); ++i) {
    midpoints[i] = {30.0 + static_cast<double>(i) / 128.0,
                    104.0 - static_cast<double>(i) / 256.0};
  }
  return midpoints;
}

struct GoldenFixture {
  Tensor embeddings = GoldenEmbeddings();
  EmbeddingIndex float_index{embeddings, IndexMetric::kCosine,
                             IndexPrecision::kFloat32};
  EmbeddingIndex int8_index{embeddings, IndexMetric::kCosine,
                            IndexPrecision::kInt8};
  std::vector<geo::LatLng> midpoints = GoldenMidpoints();

  SnapshotContents Contents() const {
    SnapshotContents contents;
    contents.n = kGoldenN;
    contents.d = kGoldenD;
    contents.metric = IndexMetric::kCosine;
    contents.model_embeddings = &embeddings;
    contents.float_index = &float_index;
    contents.int8_index = &int8_index;
    contents.midpoints = &midpoints;
    contents.locator_cell_side_meters = 300.0;
    return contents;
  }
};

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return in ? buffer.str() : std::string();
}

// The committed file IS the v1 layout spec: any writer change — field order,
// alignment, padding, CRC coverage, section naming — breaks this byte
// comparison and forces a deliberate versioning decision.
TEST(SnapshotCompatTest, WriterReencodesGoldenBytesExactly) {
  GoldenFixture golden;
  const std::string encoded = BuildServingSnapshot(golden.Contents());
  if (std::getenv("SARN_REGEN_GOLDEN") != nullptr) {
    ASSERT_TRUE(WriteSnapshotFile(GoldenPath(), encoded).ok());
    GTEST_SKIP() << "regenerated " << GoldenPath() << " (" << encoded.size()
                 << " bytes)";
  }
  const std::string committed = ReadFileBytes(GoldenPath());
  ASSERT_FALSE(committed.empty()) << "missing golden file " << GoldenPath();
  ASSERT_EQ(encoded.size(), committed.size());
  for (size_t i = 0; i < encoded.size(); ++i) {
    ASSERT_EQ(encoded[i], committed[i])
        << "snapshot v1 layout changed at byte " << i
        << "; if deliberate, bump the format version (format.h) and "
           "regenerate with SARN_REGEN_GOLDEN=1";
  }
}

TEST(SnapshotCompatTest, GoldenSnapshotLoadsForever) {
  std::shared_ptr<const MappedSnapshot> mapping;
  SnapshotStatus status = MappedSnapshot::Map(GoldenPath(), {}, &mapping);
  ASSERT_TRUE(status.ok()) << status.message;
  EXPECT_EQ(mapping->version_major(), 1u);
  EXPECT_EQ(mapping->meta().n, kGoldenN);
  EXPECT_EQ(mapping->meta().d, kGoldenD);
  EXPECT_EQ(mapping->meta().metric, IndexMetric::kCosine);
  EXPECT_EQ(mapping->meta().locator_cell_side_meters, 300.0);
  for (const char* name :
       {kSectionMeta, kSectionModelEmbeddings, kSectionIndexF32Rows,
        kSectionIndexI8Codes, kSectionGeoMidpoints}) {
    EXPECT_NE(mapping->Find(name), nullptr) << name;
  }

  GoldenFixture golden;
  for (IndexPrecision precision :
       {IndexPrecision::kFloat32, IndexPrecision::kInt8}) {
    const EmbeddingIndex& heap = precision == IndexPrecision::kFloat32
                                     ? golden.float_index
                                     : golden.int8_index;
    LoadedSnapshot loaded;
    ASSERT_TRUE(LoadServingSnapshot(GoldenPath(), precision, &loaded).ok());
    // Pinned queries: answers must stay bitwise what a freshly built heap
    // index over the golden embeddings computes.
    for (int64_t id = 0; id < kGoldenN; ++id) {
      const std::vector<Neighbor> expected = heap.QueryById(id, 3);
      const std::vector<Neighbor> actual = loaded.index->QueryById(id, 3);
      ASSERT_EQ(actual.size(), expected.size()) << "id " << id;
      for (size_t r = 0; r < expected.size(); ++r) {
        EXPECT_EQ(actual[r].id, expected[r].id) << "id " << id;
        EXPECT_EQ(actual[r].score, expected[r].score) << "id " << id;
      }
    }
    ASSERT_NE(loaded.locator, nullptr);
    for (size_t i = 0; i < golden.midpoints.size(); ++i) {
      EXPECT_EQ(loaded.locator->point(i), golden.midpoints[i]);
    }
  }
}

// Forward-compat stance (format.h): minor bumps stay readable, a higher
// major is a typed, actionable rejection — never a misparse.
TEST(SnapshotCompatTest, FutureMajorVersionIsRejected) {
  std::string bytes = ReadFileBytes(GoldenPath());
  ASSERT_GE(bytes.size(), sizeof(SnapshotHeader));
  SnapshotHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  header.version_major = kSnapshotVersionMajor + 1;
  header.header_crc = Crc32(&header, offsetof(SnapshotHeader, header_crc));
  std::memcpy(bytes.data(), &header, sizeof(header));

  const std::string path = testing::TempDir() + "/sarn_compat_future.sarnsnap";
  ASSERT_TRUE(WriteSnapshotFile(path, bytes).ok());
  std::shared_ptr<const MappedSnapshot> mapping;
  SnapshotStatus status = MappedSnapshot::Map(path, {}, &mapping);
  EXPECT_EQ(status.error, SnapshotError::kBadVersion);
  EXPECT_NE(status.message.find("version"), std::string::npos)
      << "rejection must tell the operator what is wrong: " << status.message;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sarn::snapshot
