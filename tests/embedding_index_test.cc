#include "tasks/embedding_index.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace sarn::tasks {
namespace {

using tensor::Tensor;

Tensor ClusteredEmbeddings() {
  // Three well-separated clusters of 4 rows each.
  Rng rng(1);
  std::vector<float> data;
  for (int cluster = 0; cluster < 3; ++cluster) {
    for (int member = 0; member < 4; ++member) {
      for (int j = 0; j < 8; ++j) {
        float center = j == cluster ? 10.0f : 0.0f;
        data.push_back(center + static_cast<float>(rng.Normal(0.0, 0.1)));
      }
    }
  }
  return Tensor::FromVector({12, 8}, std::move(data));
}

TEST(EmbeddingIndexTest, CosineFindsClusterMembers) {
  EmbeddingIndex index(ClusteredEmbeddings(), IndexMetric::kCosine);
  for (int64_t q = 0; q < 12; ++q) {
    std::vector<Neighbor> top = index.QueryById(q, 3);
    ASSERT_EQ(top.size(), 3u);
    for (const Neighbor& n : top) {
      EXPECT_EQ(n.id / 4, q / 4) << "query " << q << " matched " << n.id;
      EXPECT_NE(n.id, q);
    }
  }
}

TEST(EmbeddingIndexTest, L1FindsClusterMembers) {
  EmbeddingIndex index(ClusteredEmbeddings(), IndexMetric::kL1);
  for (int64_t q = 0; q < 12; ++q) {
    std::vector<Neighbor> top = index.QueryById(q, 3);
    for (const Neighbor& n : top) EXPECT_EQ(n.id / 4, q / 4);
  }
}

TEST(EmbeddingIndexTest, ScoresDescending) {
  EmbeddingIndex index(ClusteredEmbeddings(), IndexMetric::kCosine);
  std::vector<Neighbor> top = index.QueryById(0, 11);
  ASSERT_EQ(top.size(), 11u);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].score, top[i].score);
  }
}

TEST(EmbeddingIndexTest, MatchesBruteForceOnRandomData) {
  Rng rng(2);
  Tensor embeddings = Tensor::Randn({40, 6}, rng);
  EmbeddingIndex index(embeddings, IndexMetric::kL1);
  for (int64_t q = 0; q < 40; q += 7) {
    std::vector<Neighbor> top = index.QueryById(q, 1);
    ASSERT_EQ(top.size(), 1u);
    // Brute force.
    double best = 1e18;
    int64_t best_id = -1;
    for (int64_t o = 0; o < 40; ++o) {
      if (o == q) continue;
      double l1 = 0;
      for (int64_t j = 0; j < 6; ++j) {
        l1 += std::fabs(embeddings.at(q, j) - embeddings.at(o, j));
      }
      if (l1 < best) {
        best = l1;
        best_id = o;
      }
    }
    EXPECT_EQ(top[0].id, best_id);
    EXPECT_NEAR(-top[0].score, best, 1e-4);
  }
}

TEST(EmbeddingIndexTest, QueryByVectorCosineScaleInvariant) {
  EmbeddingIndex index(ClusteredEmbeddings(), IndexMetric::kCosine);
  std::vector<float> query(8, 0.0f);
  query[1] = 1.0f;  // Points at cluster 1.
  std::vector<Neighbor> small = index.QueryByVector(query, 4);
  for (float& v : query) v *= 1000.0f;
  std::vector<Neighbor> large = index.QueryByVector(query, 4);
  ASSERT_EQ(small.size(), large.size());
  for (size_t i = 0; i < small.size(); ++i) {
    EXPECT_EQ(small[i].id, large[i].id);
    EXPECT_EQ(small[i].id / 4, 1);
  }
}

TEST(EmbeddingIndexTest, KClamping) {
  EmbeddingIndex index(ClusteredEmbeddings(), IndexMetric::kCosine);
  EXPECT_EQ(index.QueryById(0, 100).size(), 11u);  // n - 1.
  EXPECT_EQ(index.QueryById(0, 0).size(), 0u);
  EXPECT_EQ(index.QueryByVector(std::vector<float>(8, 1.0f), 100).size(), 12u);
}

}  // namespace
}  // namespace sarn::tasks
