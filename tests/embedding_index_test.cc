#include "tasks/embedding_index.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/rng.h"
#include "tensor/storage.h"
#include "tensor/tensor.h"

namespace sarn::tasks {
namespace {

using tensor::Tensor;

Tensor ClusteredEmbeddings() {
  // Three well-separated clusters of 4 rows each.
  Rng rng(1);
  std::vector<float> data;
  for (int cluster = 0; cluster < 3; ++cluster) {
    for (int member = 0; member < 4; ++member) {
      for (int j = 0; j < 8; ++j) {
        float center = j == cluster ? 10.0f : 0.0f;
        data.push_back(center + static_cast<float>(rng.Normal(0.0, 0.1)));
      }
    }
  }
  return Tensor::FromVector({12, 8}, std::move(data));
}

TEST(EmbeddingIndexTest, CosineFindsClusterMembers) {
  EmbeddingIndex index(ClusteredEmbeddings(), IndexMetric::kCosine);
  for (int64_t q = 0; q < 12; ++q) {
    std::vector<Neighbor> top = index.QueryById(q, 3);
    ASSERT_EQ(top.size(), 3u);
    for (const Neighbor& n : top) {
      EXPECT_EQ(n.id / 4, q / 4) << "query " << q << " matched " << n.id;
      EXPECT_NE(n.id, q);
    }
  }
}

TEST(EmbeddingIndexTest, L1FindsClusterMembers) {
  EmbeddingIndex index(ClusteredEmbeddings(), IndexMetric::kL1);
  for (int64_t q = 0; q < 12; ++q) {
    std::vector<Neighbor> top = index.QueryById(q, 3);
    for (const Neighbor& n : top) EXPECT_EQ(n.id / 4, q / 4);
  }
}

TEST(EmbeddingIndexTest, ScoresDescending) {
  EmbeddingIndex index(ClusteredEmbeddings(), IndexMetric::kCosine);
  std::vector<Neighbor> top = index.QueryById(0, 11);
  ASSERT_EQ(top.size(), 11u);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].score, top[i].score);
  }
}

TEST(EmbeddingIndexTest, MatchesBruteForceOnRandomData) {
  Rng rng(2);
  Tensor embeddings = Tensor::Randn({40, 6}, rng);
  EmbeddingIndex index(embeddings, IndexMetric::kL1);
  for (int64_t q = 0; q < 40; q += 7) {
    std::vector<Neighbor> top = index.QueryById(q, 1);
    ASSERT_EQ(top.size(), 1u);
    // Brute force.
    double best = 1e18;
    int64_t best_id = -1;
    for (int64_t o = 0; o < 40; ++o) {
      if (o == q) continue;
      double l1 = 0;
      for (int64_t j = 0; j < 6; ++j) {
        l1 += std::fabs(embeddings.at(q, j) - embeddings.at(o, j));
      }
      if (l1 < best) {
        best = l1;
        best_id = o;
      }
    }
    EXPECT_EQ(top[0].id, best_id);
    EXPECT_NEAR(-top[0].score, best, 1e-4);
  }
}

TEST(EmbeddingIndexTest, QueryByVectorCosineScaleInvariant) {
  EmbeddingIndex index(ClusteredEmbeddings(), IndexMetric::kCosine);
  std::vector<float> query(8, 0.0f);
  query[1] = 1.0f;  // Points at cluster 1.
  std::vector<Neighbor> small = index.QueryByVector(query, 4);
  for (float& v : query) v *= 1000.0f;
  std::vector<Neighbor> large = index.QueryByVector(query, 4);
  ASSERT_EQ(small.size(), large.size());
  for (size_t i = 0; i < small.size(); ++i) {
    EXPECT_EQ(small[i].id, large[i].id);
    EXPECT_EQ(small[i].id / 4, 1);
  }
}

TEST(EmbeddingIndexTest, KClamping) {
  EmbeddingIndex index(ClusteredEmbeddings(), IndexMetric::kCosine);
  EXPECT_EQ(index.QueryById(0, 100).size(), 11u);  // n - 1.
  EXPECT_EQ(index.QueryById(0, 0).size(), 0u);
  EXPECT_EQ(index.QueryByVector(std::vector<float>(8, 1.0f), 100).size(), 12u);
}

// ---------------------------------------------------------------------------
// QueryBatch — the core the wrappers above are now thin shims over.

std::vector<IndexQuery> MixedQueries(int64_t n, int64_t d, int count, uint64_t seed) {
  Rng rng(seed);
  std::vector<IndexQuery> queries;
  for (int i = 0; i < count; ++i) {
    if (i % 2 == 0) {
      queries.push_back(IndexQuery::ById(i % n));
    } else {
      std::vector<float> v(static_cast<size_t>(d));
      for (float& x : v) x = static_cast<float>(rng.Normal(0.0, 1.0));
      queries.push_back(IndexQuery::ByVector(std::move(v)));
    }
  }
  return queries;
}

// The batch scan must be bitwise identical to issuing every query alone:
// same neighbor ids, same scores to the last bit, for both metrics. This is
// the contract that lets the serve layer batch arbitrarily without changing
// any answer.
TEST(EmbeddingIndexTest, BatchMatchesSequentialBitwiseBothMetrics) {
  Rng rng(7);
  Tensor embeddings = Tensor::Randn({50, 16}, rng);
  for (IndexMetric metric : {IndexMetric::kCosine, IndexMetric::kL1}) {
    EmbeddingIndex index(embeddings, metric);
    std::vector<IndexQuery> queries = MixedQueries(50, 16, 64, 11);
    std::vector<std::vector<Neighbor>> batched = index.QueryBatch(queries, 5);
    ASSERT_EQ(batched.size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      std::vector<std::vector<Neighbor>> alone =
          index.QueryBatch({&queries[i], 1}, 5);
      ASSERT_EQ(batched[i].size(), alone[0].size()) << "query " << i;
      for (size_t j = 0; j < batched[i].size(); ++j) {
        EXPECT_EQ(batched[i][j].id, alone[0][j].id) << "query " << i;
        // Bitwise: EQ, not NEAR.
        EXPECT_EQ(batched[i][j].score, alone[0][j].score) << "query " << i;
      }
    }
  }
}

// The single-query wrappers are literally batch-of-one calls.
TEST(EmbeddingIndexTest, WrappersMatchBatchOfOne) {
  EmbeddingIndex index(ClusteredEmbeddings(), IndexMetric::kCosine);
  IndexQuery by_id = IndexQuery::ById(3);
  std::vector<Neighbor> wrapped = index.QueryById(3, 4);
  std::vector<std::vector<Neighbor>> batched = index.QueryBatch({&by_id, 1}, 4);
  ASSERT_EQ(wrapped.size(), batched[0].size());
  for (size_t j = 0; j < wrapped.size(); ++j) {
    EXPECT_EQ(wrapped[j].id, batched[0][j].id);
    EXPECT_EQ(wrapped[j].score, batched[0][j].score);
  }
}

TEST(EmbeddingIndexTest, BatchSelfExclusionAndClamping) {
  EmbeddingIndex index(ClusteredEmbeddings(), IndexMetric::kCosine);
  std::vector<IndexQuery> queries;
  queries.push_back(IndexQuery::ById(5));                        // Excludes row 5.
  queries.push_back(IndexQuery::ByVector(std::vector<float>(8, 1.0f)));
  std::vector<std::vector<Neighbor>> results = index.QueryBatch(queries, 100);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].size(), 11u);  // n - 1: self excluded.
  EXPECT_EQ(results[1].size(), 12u);  // Vectors see every row.
  for (const Neighbor& n : results[0]) EXPECT_NE(n.id, 5);
}

TEST(EmbeddingIndexTest, BatchEmptyAndKZero) {
  EmbeddingIndex index(ClusteredEmbeddings(), IndexMetric::kL1);
  EXPECT_TRUE(index.QueryBatch({}, 5).empty());
  IndexQuery q = IndexQuery::ById(0);
  std::vector<std::vector<Neighbor>> results = index.QueryBatch({&q, 1}, 0);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].empty());
}

TEST(EmbeddingIndexTest, QueryBatchBuildsNoTapeNodesAndNoSteadyStateAllocs) {
  // The serve path must never touch the autograd tape, and after the first
  // batch warms the pool's size classes, repeated batches must run without a
  // single pool-miss allocation.
  Rng rng(11);
  tensor::NoGradGuard guard;
  EmbeddingIndex index(tensor::Tensor::Randn({300, 24}, rng), IndexMetric::kCosine);
  std::vector<IndexQuery> queries;
  for (int i = 0; i < 16; ++i) queries.push_back(IndexQuery::ById(i * 7));
  uint64_t tape_before = tensor::internal::TapeNodeCount();
  std::vector<std::vector<Neighbor>> warm = index.QueryBatch(queries, 10);
  for (int round = 0; round < 3; ++round) {
    tensor::StepScope scope;
    std::vector<std::vector<Neighbor>> result = index.QueryBatch(queries, 10);
    EXPECT_EQ(scope.pool_misses(), 0u) << "round " << round;
    ASSERT_EQ(result.size(), warm.size());
    for (size_t q = 0; q < result.size(); ++q) {
      ASSERT_EQ(result[q].size(), warm[q].size());
      for (size_t j = 0; j < result[q].size(); ++j) {
        EXPECT_EQ(result[q][j].id, warm[q][j].id);
        EXPECT_EQ(result[q][j].score, warm[q][j].score);
      }
    }
  }
  EXPECT_EQ(tensor::internal::TapeNodeCount(), tape_before);
}

TEST(EmbeddingIndexTest, QueryBatchBitwiseInvariantToThreadCount) {
  Rng rng(12);
  tensor::Tensor embeddings = tensor::Tensor::Randn({200, 16}, rng);
  std::vector<IndexQuery> queries;
  for (int i = 0; i < 8; ++i) queries.push_back(IndexQuery::ById(i * 11));
  queries.push_back(IndexQuery::ByVector(std::vector<float>(16, 0.5f)));
  for (IndexMetric metric : {IndexMetric::kCosine, IndexMetric::kL1}) {
    EmbeddingIndex index(embeddings, metric);
    size_t saved = GetParallelThreads();
    SetParallelThreads(1);
    std::vector<std::vector<Neighbor>> one = index.QueryBatch(queries, 12);
    SetParallelThreads(4);
    std::vector<std::vector<Neighbor>> four = index.QueryBatch(queries, 12);
    SetParallelThreads(saved);
    ASSERT_EQ(one.size(), four.size());
    for (size_t q = 0; q < one.size(); ++q) {
      ASSERT_EQ(one[q].size(), four[q].size());
      for (size_t j = 0; j < one[q].size(); ++j) {
        EXPECT_EQ(one[q][j].id, four[q][j].id);
        EXPECT_EQ(one[q][j].score, four[q][j].score);
      }
    }
  }
}

}  // namespace
}  // namespace sarn::tasks
