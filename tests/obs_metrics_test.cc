// Tests for the obs metrics registry: counters, gauges, histogram bucket and
// percentile math, snapshots, and lock-free updates from ParallelFor workers
// (the concurrent cases are the ones the TSan build watches).

#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "obs/metrics.h"

namespace sarn::obs {
namespace {

TEST(CounterTest, IncrementAndReset) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.Value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge gauge;
  EXPECT_DOUBLE_EQ(gauge.Value(), 0.0);
  gauge.Set(3.5);
  gauge.Set(-1.25);
  EXPECT_DOUBLE_EQ(gauge.Value(), -1.25);
  gauge.Reset();
  EXPECT_DOUBLE_EQ(gauge.Value(), 0.0);
}

TEST(HistogramTest, BucketAssignmentWithInclusiveBounds) {
  Histogram histogram({1.0, 2.0, 4.0});
  histogram.Observe(0.5);  // (0, 1]   -> bucket 0
  histogram.Observe(1.0);  // == bound -> bucket 0 (inclusive upper bound)
  histogram.Observe(1.5);  // (1, 2]   -> bucket 1
  histogram.Observe(4.0);  // == bound -> bucket 2
  histogram.Observe(9.0);  // overflow -> bucket 3
  std::vector<uint64_t> counts = histogram.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);  // 3 finite buckets + overflow.
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(histogram.Count(), 5u);
  EXPECT_DOUBLE_EQ(histogram.Sum(), 0.5 + 1.0 + 1.5 + 4.0 + 9.0);
  EXPECT_DOUBLE_EQ(histogram.Mean(), histogram.Sum() / 5.0);
}

TEST(HistogramTest, PercentileInterpolatesWithinBucket) {
  // 10 samples all landing in bucket (10, 20]: rank r of 10 maps to
  // 10 + 10 * r/10, i.e. p50 -> 15, p100 -> 20.
  Histogram histogram({10.0, 20.0, 30.0});
  for (int i = 0; i < 10; ++i) histogram.Observe(15.0);
  EXPECT_DOUBLE_EQ(histogram.Percentile(50.0), 15.0);
  EXPECT_DOUBLE_EQ(histogram.Percentile(100.0), 20.0);
  EXPECT_DOUBLE_EQ(histogram.Percentile(10.0), 11.0);
}

TEST(HistogramTest, PercentileSpansBuckets) {
  // 50 samples in (0, 1], 50 in (1, 2]: the median sits at the edge of the
  // first bucket and p75 is halfway through the second.
  Histogram histogram({1.0, 2.0});
  for (int i = 0; i < 50; ++i) histogram.Observe(0.5);
  for (int i = 0; i < 50; ++i) histogram.Observe(1.5);
  EXPECT_DOUBLE_EQ(histogram.Percentile(50.0), 1.0);
  EXPECT_DOUBLE_EQ(histogram.Percentile(75.0), 1.5);
}

TEST(HistogramTest, OverflowSamplesClampToLastBound) {
  Histogram histogram({1.0, 2.0});
  for (int i = 0; i < 4; ++i) histogram.Observe(100.0);
  EXPECT_DOUBLE_EQ(histogram.Percentile(50.0), 2.0);
  EXPECT_DOUBLE_EQ(histogram.Percentile(99.0), 2.0);
}

TEST(HistogramTest, EmptyHistogramReportsZero) {
  Histogram histogram({1.0});
  EXPECT_EQ(histogram.Count(), 0u);
  EXPECT_DOUBLE_EQ(histogram.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(histogram.Percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(histogram.Percentile(99.0), 0.0);
}

TEST(HistogramTest, SingleSampleReportsBucketMidpoint) {
  // One sample in (1, 2]: every percentile is the bucket midpoint 1.5 —
  // interpolating a one-sample bucket would just echo `p` back as noise.
  Histogram histogram({1.0, 2.0});
  histogram.Observe(1.7);
  EXPECT_DOUBLE_EQ(histogram.Percentile(1.0), 1.5);
  EXPECT_DOUBLE_EQ(histogram.Percentile(50.0), 1.5);
  EXPECT_DOUBLE_EQ(histogram.Percentile(99.0), 1.5);
}

TEST(HistogramTest, SingleSampleInFirstBucketMidpointFromZero) {
  Histogram histogram({4.0, 8.0});
  histogram.Observe(3.0);  // (0, 4] -> midpoint 2.
  EXPECT_DOUBLE_EQ(histogram.Percentile(50.0), 2.0);
}

TEST(HistogramTest, SingleOverflowSampleClampsToLastBound) {
  Histogram histogram({1.0, 2.0});
  histogram.Observe(100.0);
  EXPECT_DOUBLE_EQ(histogram.Percentile(50.0), 2.0);
}

TEST(PercentileFromCountsTest, MatchesHistogramEdgeCases) {
  std::vector<double> bounds = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(PercentileFromCounts(bounds, {0, 0, 0}, 99.0), 0.0);
  EXPECT_DOUBLE_EQ(PercentileFromCounts(bounds, {0, 1, 0}, 99.0), 1.5);
  EXPECT_DOUBLE_EQ(PercentileFromCounts(bounds, {0, 0, 1}, 99.0), 2.0);
  // Ten samples in (1, 2]: p50 interpolates to 1.5.
  EXPECT_DOUBLE_EQ(PercentileFromCounts(bounds, {0, 10, 0}, 50.0), 1.5);
}

TEST(HistogramTest, ExemplarTagsSampleBucket) {
  Histogram histogram({1.0, 2.0});
  histogram.ObserveWithExemplar(0.5, 17);   // Bucket 0.
  histogram.ObserveWithExemplar(1.5, 42);   // Bucket 1.
  histogram.ObserveWithExemplar(9.0, 99);   // Overflow bucket.
  std::vector<uint64_t> exemplars = histogram.BucketExemplars();
  ASSERT_EQ(exemplars.size(), 3u);
  EXPECT_EQ(exemplars[0], 17u);
  EXPECT_EQ(exemplars[1], 42u);
  EXPECT_EQ(exemplars[2], 99u);

  // Last writer wins; id 0 means "none" and is never stored.
  histogram.ObserveWithExemplar(1.5, 43);
  histogram.ObserveWithExemplar(1.5, 0);
  EXPECT_EQ(histogram.BucketExemplars()[1], 43u);
  EXPECT_EQ(histogram.Count(), 5u);  // Id-0 observations still count.
}

TEST(HistogramTest, ResetClearsExemplars) {
  Histogram histogram({1.0});
  histogram.ObserveWithExemplar(0.5, 7);
  histogram.Reset();
  for (uint64_t e : histogram.BucketExemplars()) EXPECT_EQ(e, 0u);
}

TEST(HistogramTest, ResetZeroesInPlace) {
  Histogram histogram({1.0, 2.0});
  histogram.Observe(0.5);
  histogram.Observe(5.0);
  histogram.Reset();
  EXPECT_EQ(histogram.Count(), 0u);
  EXPECT_DOUBLE_EQ(histogram.Sum(), 0.0);
  for (uint64_t c : histogram.BucketCounts()) EXPECT_EQ(c, 0u);
}

TEST(ExponentialBucketsTest, GeometricSeries) {
  std::vector<double> bounds = ExponentialBuckets(1.0, 2.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[1], 2.0);
  EXPECT_DOUBLE_EQ(bounds[2], 4.0);
  EXPECT_DOUBLE_EQ(bounds[3], 8.0);
  std::vector<double> latency = DefaultLatencyBuckets();
  ASSERT_FALSE(latency.empty());
  for (size_t i = 1; i < latency.size(); ++i) {
    EXPECT_LT(latency[i - 1], latency[i]);
  }
}

TEST(MetricsRegistryTest, InstrumentsArePersistentByName) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("test.counter");
  Counter& b = registry.GetCounter("test.counter");
  EXPECT_EQ(&a, &b);
  a.Increment(7);
  EXPECT_EQ(b.Value(), 7u);

  Gauge& gauge = registry.GetGauge("test.gauge");
  gauge.Set(2.5);
  Histogram& histogram = registry.GetHistogram("test.hist", {1.0, 2.0});
  histogram.Observe(0.5);
  // Second lookup ignores the (different) bounds and returns the same node.
  Histogram& same = registry.GetHistogram("test.hist", {99.0});
  EXPECT_EQ(&histogram, &same);

  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 1u);
  EXPECT_EQ(snapshot.counters[0].first, "test.counter");
  EXPECT_EQ(snapshot.counters[0].second, 7u);
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snapshot.gauges[0].second, 2.5);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].count, 1u);
}

TEST(MetricsRegistryTest, KindTracksRegistration) {
  MetricsRegistry registry;
  EXPECT_FALSE(registry.Kind("unregistered").has_value());
  registry.GetCounter("k.counter");
  registry.GetGauge("k.gauge");
  registry.GetHistogram("k.hist", {1.0});
  EXPECT_EQ(registry.Kind("k.counter"), InstrumentKind::kCounter);
  EXPECT_EQ(registry.Kind("k.gauge"), InstrumentKind::kGauge);
  EXPECT_EQ(registry.Kind("k.hist"), InstrumentKind::kHistogram);
  // Re-requesting the same kind is fine.
  registry.GetCounter("k.counter");
}

TEST(MetricsRegistryDeathTest, NameCollisionAcrossKindsAborts) {
  MetricsRegistry registry;
  registry.GetCounter("collide.name");
  EXPECT_DEATH(registry.GetGauge("collide.name"), "metric name collision");
  EXPECT_DEATH(registry.GetHistogram("collide.name", {1.0}),
               "metric name collision");

  registry.GetHistogram("collide.hist", {1.0});
  EXPECT_DEATH(registry.GetCounter("collide.hist"),
               "registered as a histogram, requested counter");
}

TEST(MetricsRegistryTest, ResetForTestKeepsReferencesValid) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("persist");
  counter.Increment(5);
  registry.ResetForTest();
  EXPECT_EQ(counter.Value(), 0u);
  counter.Increment();  // Reference still valid after reset.
  EXPECT_EQ(registry.GetCounter("persist").Value(), 1u);
}

TEST(MetricsConcurrencyTest, CountersFromParallelForWorkers) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("parallel.items");
  Histogram& histogram = registry.GetHistogram("parallel.values", {256.0, 512.0, 1024.0});
  constexpr size_t kItems = 20000;
  ParallelFor(
      kItems,
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          counter.Increment();
          histogram.Observe(static_cast<double>(i % 1024));
        }
      },
      /*grain=*/64);
  EXPECT_EQ(counter.Value(), kItems);
  EXPECT_EQ(histogram.Count(), kItems);
}

TEST(MetricsConcurrencyTest, RawThreadsAgreeOnTotals) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("threads.count");
  Gauge& gauge = registry.GetGauge("threads.gauge");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &gauge] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.Increment();
        gauge.Set(static_cast<double>(i));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_GE(gauge.Value(), 0.0);
  EXPECT_LT(gauge.Value(), static_cast<double>(kPerThread));
}

}  // namespace
}  // namespace sarn::obs
