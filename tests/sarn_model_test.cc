// End-to-end tests of the SARN model: training decreases the contrastive
// loss, embeddings are well-formed, and the learned space reflects spatial
// structure (the paper's core claim).

#include "core/sarn_model.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "geo/point.h"
#include "roadnet/synthetic_city.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"

namespace sarn::core {
namespace {

using tensor::Tensor;

SarnConfig SmallConfig() {
  SarnConfig config;
  config.hidden_dim = 16;
  config.embedding_dim = 16;
  config.projection_dim = 8;
  config.gat_layers = 2;
  config.gat_heads = 2;
  config.feature_dim_per_feature = 4;
  config.max_epochs = 8;
  config.batch_size = 128;
  config.queue_budget = 400;
  return config;
}

class SarnModelTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    roadnet::SyntheticCityConfig city;
    city.rows = 10;
    city.cols = 10;
    network_ = new roadnet::RoadNetwork(roadnet::GenerateSyntheticCity(city));
  }
  static void TearDownTestSuite() {
    delete network_;
    network_ = nullptr;
  }

  static roadnet::RoadNetwork* network_;
};

roadnet::RoadNetwork* SarnModelTest::network_ = nullptr;

TEST_F(SarnModelTest, EmbeddingsShapeAndFinite) {
  SarnModel model(*network_, SmallConfig());
  Tensor h = model.Embeddings();
  EXPECT_EQ(h.shape(),
            (tensor::Shape{network_->num_segments(), SmallConfig().embedding_dim}));
  for (float v : h.data()) EXPECT_TRUE(std::isfinite(v));
}

TEST_F(SarnModelTest, TrainingDecreasesLoss) {
  SarnConfig config = SmallConfig();
  config.max_epochs = 10;
  SarnModel model(*network_, config);
  TrainStats stats = model.Train();
  ASSERT_GE(stats.epochs_run, 5);
  // Compare the mean of the first two vs last two epochs (epoch 0 has cold
  // queues, so include epoch 1).
  double early = (stats.epoch_losses[1] + stats.epoch_losses[2]) / 2.0;
  double late = (stats.epoch_losses[stats.epochs_run - 2] +
                 stats.epoch_losses[stats.epochs_run - 1]) /
                2.0;
  EXPECT_LT(late, early);
}

TEST_F(SarnModelTest, SpatialEdgesPresentByDefaultAbsentInAblation) {
  SarnModel with(*network_, SmallConfig());
  EXPECT_FALSE(with.spatial_edges().empty());
  SarnConfig ablated = SmallConfig();
  ablated.use_spatial_matrix = false;
  SarnModel without(*network_, ablated);
  EXPECT_TRUE(without.spatial_edges().empty());
}

TEST_F(SarnModelTest, AblationVariantsTrain) {
  for (bool matrix : {true, false}) {
    for (bool negatives : {true, false}) {
      SarnConfig config = SmallConfig();
      config.max_epochs = 3;
      config.use_spatial_matrix = matrix;
      config.use_spatial_negatives = negatives;
      config.random_negatives = 16;
      SarnModel model(*network_, config);
      TrainStats stats = model.Train();
      EXPECT_EQ(stats.epochs_run, 3);
      EXPECT_TRUE(std::isfinite(stats.final_loss));
    }
  }
}

TEST_F(SarnModelTest, TrainedEmbeddingsReflectSpatialStructure) {
  SarnConfig config = SmallConfig();
  config.max_epochs = 12;
  SarnModel model(*network_, config);
  model.Train();
  Tensor h = model.Embeddings();
  Tensor normalized = tensor::RowL2Normalize(h);

  // Average cosine similarity of spatially-close pairs must exceed that of
  // distant random pairs.
  auto cosine = [&](int64_t a, int64_t b) {
    double dot = 0;
    for (int64_t j = 0; j < normalized.shape()[1]; ++j) {
      dot += normalized.at(a, j) * normalized.at(b, j);
    }
    return dot;
  };
  Rng rng(5);
  double near_sum = 0;
  int near_count = 0;
  for (const SpatialEdge& e : model.spatial_edges()) {
    near_sum += cosine(e.a, e.b);
    if (++near_count >= 300) break;
  }
  double far_sum = 0;
  int far_count = 0;
  while (far_count < 300) {
    int64_t a = rng.UniformInt(0, network_->num_segments() - 1);
    int64_t b = rng.UniformInt(0, network_->num_segments() - 1);
    if (a == b) continue;
    double dist = geo::HaversineMeters(network_->segment(a).Midpoint(),
                                       network_->segment(b).Midpoint());
    if (dist < 500.0) continue;
    far_sum += cosine(a, b);
    ++far_count;
  }
  EXPECT_GT(near_sum / near_count, far_sum / far_count + 0.05);
}

TEST_F(SarnModelTest, DeterministicGivenSeed) {
  SarnConfig config = SmallConfig();
  config.max_epochs = 2;
  SetParallelThreads(1);
  SarnModel a(*network_, config);
  a.Train();
  SarnModel b(*network_, config);
  b.Train();
  SetParallelThreads(0);
  Tensor ha = a.Embeddings();
  Tensor hb = b.Embeddings();
  for (int64_t i = 0; i < std::min<int64_t>(ha.numel(), 200); ++i) {
    ASSERT_FLOAT_EQ(ha.data()[static_cast<size_t>(i)], hb.data()[static_cast<size_t>(i)]);
  }
}

TEST_F(SarnModelTest, FineTuneParametersAreFinalLayerOnly) {
  SarnModel model(*network_, SmallConfig());
  EXPECT_LT(model.FineTuneParameters().size(), model.OnlineParameters().size());
  // Fine-tuning step: gradients reach the final layer through
  // EncodeForFineTune.
  Tensor h = model.EncodeForFineTune();
  tensor::Sum(h).Backward();
  for (const Tensor& p : model.FineTuneParameters()) {
    double norm = 0;
    for (float g : p.grad()) norm += std::fabs(g);
    EXPECT_GT(norm, 0.0);
  }
}

TEST_F(SarnModelTest, EarlyStoppingBoundsEpochs) {
  SarnConfig config = SmallConfig();
  config.max_epochs = 50;
  config.patience = 2;
  SarnModel model(*network_, config);
  TrainStats stats = model.Train();
  EXPECT_LE(stats.epochs_run, 50);
  EXPECT_EQ(stats.epoch_losses.size(), static_cast<size_t>(stats.epochs_run));
}

}  // namespace
}  // namespace sarn::core
