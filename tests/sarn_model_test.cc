// End-to-end tests of the SARN model: training decreases the contrastive
// loss, embeddings are well-formed, and the learned space reflects spatial
// structure (the paper's core claim).

#include "core/sarn_model.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "geo/point.h"
#include "roadnet/synthetic_city.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"

namespace sarn::core {
namespace {

using tensor::Tensor;

SarnConfig SmallConfig() {
  SarnConfig config;
  config.hidden_dim = 16;
  config.embedding_dim = 16;
  config.projection_dim = 8;
  config.gat_layers = 2;
  config.gat_heads = 2;
  config.feature_dim_per_feature = 4;
  config.max_epochs = 8;
  config.batch_size = 128;
  config.queue_budget = 400;
  return config;
}

class SarnModelTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    roadnet::SyntheticCityConfig city;
    city.rows = 10;
    city.cols = 10;
    network_ = new roadnet::RoadNetwork(roadnet::GenerateSyntheticCity(city));
  }
  static void TearDownTestSuite() {
    delete network_;
    network_ = nullptr;
  }

  static roadnet::RoadNetwork* network_;
};

roadnet::RoadNetwork* SarnModelTest::network_ = nullptr;

TEST_F(SarnModelTest, EmbeddingsShapeAndFinite) {
  SarnModel model(*network_, SmallConfig());
  Tensor h = model.Embeddings();
  EXPECT_EQ(h.shape(),
            (tensor::Shape{network_->num_segments(), SmallConfig().embedding_dim}));
  for (float v : h.data()) EXPECT_TRUE(std::isfinite(v));
}

TEST_F(SarnModelTest, TrainingDecreasesLoss) {
  SarnConfig config = SmallConfig();
  config.max_epochs = 10;
  SarnModel model(*network_, config);
  TrainStats stats = model.Train();
  ASSERT_GE(stats.epochs_run, 5);
  // Compare the mean of the first two vs last two epochs (epoch 0 has cold
  // queues, so include epoch 1).
  double early = (stats.epoch_losses[1] + stats.epoch_losses[2]) / 2.0;
  double late = (stats.epoch_losses[stats.epochs_run - 2] +
                 stats.epoch_losses[stats.epochs_run - 1]) /
                2.0;
  EXPECT_LT(late, early);
}

TEST_F(SarnModelTest, SpatialEdgesPresentByDefaultAbsentInAblation) {
  SarnModel with(*network_, SmallConfig());
  EXPECT_FALSE(with.spatial_edges().empty());
  SarnConfig ablated = SmallConfig();
  ablated.use_spatial_matrix = false;
  SarnModel without(*network_, ablated);
  EXPECT_TRUE(without.spatial_edges().empty());
}

TEST_F(SarnModelTest, AblationVariantsTrain) {
  for (bool matrix : {true, false}) {
    for (bool negatives : {true, false}) {
      SarnConfig config = SmallConfig();
      config.max_epochs = 3;
      config.use_spatial_matrix = matrix;
      config.use_spatial_negatives = negatives;
      config.random_negatives = 16;
      SarnModel model(*network_, config);
      TrainStats stats = model.Train();
      EXPECT_EQ(stats.epochs_run, 3);
      EXPECT_TRUE(std::isfinite(stats.final_loss));
    }
  }
}

TEST_F(SarnModelTest, TrainedEmbeddingsReflectSpatialStructure) {
  SarnConfig config = SmallConfig();
  config.max_epochs = 12;
  SarnModel model(*network_, config);
  model.Train();
  Tensor h = model.Embeddings();
  Tensor normalized = tensor::RowL2Normalize(h);

  // Average cosine similarity of spatially-close pairs must exceed that of
  // distant random pairs.
  auto cosine = [&](int64_t a, int64_t b) {
    double dot = 0;
    for (int64_t j = 0; j < normalized.shape()[1]; ++j) {
      dot += normalized.at(a, j) * normalized.at(b, j);
    }
    return dot;
  };
  Rng rng(5);
  double near_sum = 0;
  int near_count = 0;
  for (const SpatialEdge& e : model.spatial_edges()) {
    near_sum += cosine(e.a, e.b);
    if (++near_count >= 300) break;
  }
  double far_sum = 0;
  int far_count = 0;
  while (far_count < 300) {
    int64_t a = rng.UniformInt(0, network_->num_segments() - 1);
    int64_t b = rng.UniformInt(0, network_->num_segments() - 1);
    if (a == b) continue;
    double dist = geo::HaversineMeters(network_->segment(a).Midpoint(),
                                       network_->segment(b).Midpoint());
    if (dist < 500.0) continue;
    far_sum += cosine(a, b);
    ++far_count;
  }
  EXPECT_GT(near_sum / near_count, far_sum / far_count + 0.05);
}

TEST_F(SarnModelTest, DeterministicGivenSeed) {
  SarnConfig config = SmallConfig();
  config.max_epochs = 2;
  SetParallelThreads(1);
  SarnModel a(*network_, config);
  a.Train();
  SarnModel b(*network_, config);
  b.Train();
  SetParallelThreads(0);
  Tensor ha = a.Embeddings();
  Tensor hb = b.Embeddings();
  for (int64_t i = 0; i < std::min<int64_t>(ha.numel(), 200); ++i) {
    ASSERT_FLOAT_EQ(ha.data()[static_cast<size_t>(i)], hb.data()[static_cast<size_t>(i)]);
  }
}

TEST_F(SarnModelTest, FineTuneParametersAreFinalLayerOnly) {
  SarnModel model(*network_, SmallConfig());
  EXPECT_LT(model.FineTuneParameters().size(), model.OnlineParameters().size());
  // Fine-tuning step: gradients reach the final layer through
  // EncodeForFineTune.
  Tensor h = model.EncodeForFineTune();
  tensor::Sum(h).Backward();
  for (const Tensor& p : model.FineTuneParameters()) {
    double norm = 0;
    for (float g : p.grad()) norm += std::fabs(g);
    EXPECT_GT(norm, 0.0);
  }
}

// --- Crash-safe checkpoint/resume -------------------------------------------

std::string FreshDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

void ExpectBitwiseEqualParameters(const SarnModel& a, const SarnModel& b) {
  std::vector<Tensor> pa = a.OnlineParameters();
  std::vector<Tensor> pb = b.OnlineParameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i].data(), pb[i].data()) << "online parameter " << i << " diverged";
  }
}

// The golden test of the checkpoint subsystem: training k epochs, "crashing",
// and resuming into *fresh* objects must finish bitwise identical to an
// uninterrupted run — for parameters, loss history and embeddings — at both
// 1 and 4 threads.
TEST_F(SarnModelTest, ResumedRunIsBitwiseIdenticalToStraightRun) {
  for (size_t threads : {size_t{1}, size_t{4}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    SetParallelThreads(threads);
    SarnConfig config = SmallConfig();
    config.max_epochs = 6;

    // Uninterrupted reference run (no checkpointing at all).
    SarnModel straight(*network_, config);
    TrainStats straight_stats = straight.Train();
    ASSERT_EQ(straight_stats.epochs_run, 6);

    // Interrupted run: train 3 epochs with checkpointing, then "crash".
    std::string dir = FreshDir("sarn_resume_" + std::to_string(threads));
    TrainOptions phase1;
    phase1.checkpoint_dir = dir;
    phase1.checkpoint_every = 1;
    phase1.max_epochs = 3;  // Simulated kill after epoch 3.
    {
      SarnModel interrupted(*network_, config);
      TrainStats stats = interrupted.Train(phase1);
      EXPECT_EQ(stats.epochs_run, 3);
      EXPECT_GT(stats.checkpoints_written, 0);
    }  // Model destroyed: resume must work from the files alone.

    // Fresh objects resume from the latest checkpoint and finish the run.
    SarnModel resumed(*network_, config);
    TrainOptions phase2;
    phase2.checkpoint_dir = dir;
    TrainStats resumed_stats = resumed.Train(phase2);
    EXPECT_EQ(resumed_stats.resumed_from_epoch, 3);
    EXPECT_EQ(resumed_stats.epochs_run, 6);

    // Bitwise equality: loss history, final loss, parameters, embeddings.
    ASSERT_EQ(resumed_stats.epoch_losses.size(), straight_stats.epoch_losses.size());
    for (size_t e = 0; e < straight_stats.epoch_losses.size(); ++e) {
      ASSERT_EQ(resumed_stats.epoch_losses[e], straight_stats.epoch_losses[e])
          << "epoch " << e << " loss diverged";
    }
    ASSERT_EQ(resumed_stats.final_loss, straight_stats.final_loss);
    ExpectBitwiseEqualParameters(straight, resumed);
    Tensor ha = straight.Embeddings();
    Tensor hb = resumed.Embeddings();
    ASSERT_EQ(ha.data(), hb.data());
    std::filesystem::remove_all(dir);
  }
  SetParallelThreads(0);
}

TEST_F(SarnModelTest, ResumeSurvivesCorruptLatestCheckpoint) {
  SetParallelThreads(1);
  SarnConfig config = SmallConfig();
  config.max_epochs = 4;
  std::string dir = FreshDir("sarn_resume_corrupt");

  TrainOptions phase1;
  phase1.checkpoint_dir = dir;
  phase1.checkpoint_every = 1;
  phase1.max_epochs = 2;
  {
    SarnModel interrupted(*network_, config);
    interrupted.Train(phase1);
  }
  // Corrupt the newest checkpoint file (flip one byte mid-file); keep an
  // older valid one.
  auto found = nn::ListCheckpoints(dir);
  ASSERT_GE(found.size(), 2u);
  {
    std::fstream f(found.front().second,
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(0, std::ios::end);
    auto size = static_cast<long>(f.tellg());
    f.seekp(size / 2);
    char byte = 0;
    f.seekg(size / 2);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x10);
    f.seekp(size / 2);
    f.write(&byte, 1);
  }

  SarnModel resumed(*network_, config);
  TrainOptions phase2;
  phase2.checkpoint_dir = dir;
  TrainStats stats = resumed.Train(phase2);
  // Fell back to the older valid checkpoint (epoch 1) and still finished.
  EXPECT_EQ(stats.resumed_from_epoch, 1);
  EXPECT_EQ(stats.epochs_run, 4);
  SetParallelThreads(0);
  std::filesystem::remove_all(dir);
}

TEST_F(SarnModelTest, CheckpointRotationKeepsLastK) {
  SetParallelThreads(1);
  SarnConfig config = SmallConfig();
  config.max_epochs = 5;
  std::string dir = FreshDir("sarn_rotation");
  TrainOptions options;
  options.checkpoint_dir = dir;
  options.checkpoint_every = 1;
  options.keep_last = 2;
  SarnModel model(*network_, config);
  TrainStats stats = model.Train(options);
  EXPECT_EQ(stats.epochs_run, 5);
  auto found = nn::ListCheckpoints(dir);
  ASSERT_EQ(found.size(), 2u);
  EXPECT_EQ(found[0].first, 5);
  EXPECT_EQ(found[1].first, 4);
  SetParallelThreads(0);
  std::filesystem::remove_all(dir);
}

TEST_F(SarnModelTest, ResumeRejectsCheckpointFromDifferentSeed) {
  SetParallelThreads(1);
  SarnConfig config = SmallConfig();
  config.max_epochs = 3;
  std::string dir = FreshDir("sarn_seed_mismatch");
  TrainOptions options;
  options.checkpoint_dir = dir;
  options.max_epochs = 2;
  {
    SarnModel model(*network_, config);
    model.Train(options);
  }
  // A model with a different seed must not adopt that checkpoint silently.
  SarnConfig other = config;
  other.seed = config.seed + 99;
  SarnModel model(*network_, other);
  // Point at the mismatched dir: resume skips it and trains from scratch.
  TrainOptions resume_options;
  resume_options.checkpoint_dir = dir;
  TrainStats stats = model.Train(resume_options);
  EXPECT_EQ(stats.resumed_from_epoch, 0);
  EXPECT_EQ(stats.epochs_run, 3);
  SetParallelThreads(0);
  std::filesystem::remove_all(dir);
}

// A checkpoint written by one variant composition must never be adopted —
// silently or otherwise — by a model composed of different registry pieces.
TEST_F(SarnModelTest, ResumeRejectsCheckpointFromDifferentVariant) {
  SetParallelThreads(1);
  SarnConfig rfn_config = SmallConfig();
  rfn_config.max_epochs = 3;
  rfn_config.encoder = "rfn";
  std::string dir = FreshDir("sarn_variant_mismatch_resume");
  TrainOptions options;
  options.checkpoint_dir = dir;
  options.max_epochs = 2;
  {
    SarnModel model(*network_, rfn_config);
    model.Train(options);
  }
  SarnConfig gat_config = rfn_config;
  gat_config.encoder = "gat";
  SarnModel model(*network_, gat_config);
  TrainOptions resume_options;
  resume_options.checkpoint_dir = dir;
  TrainStats stats = model.Train(resume_options);
  EXPECT_EQ(stats.resumed_from_epoch, 0);  // Skipped, trained from scratch.
  EXPECT_EQ(stats.epochs_run, 3);
  SetParallelThreads(0);
  std::filesystem::remove_all(dir);
}

// The typed export path: LoadFromTrainingCheckpoint must report
// kVariantMismatch with a message naming BOTH compositions, and leave the
// model untouched — never a silent shape mismatch.
TEST_F(SarnModelTest, LoadFromTrainingCheckpointReportsVariantMismatch) {
  SetParallelThreads(1);
  SarnConfig rfn_config = SmallConfig();
  rfn_config.max_epochs = 1;
  rfn_config.encoder = "rfn";
  rfn_config.negatives = "in-batch";
  std::string dir = FreshDir("sarn_variant_mismatch_load");
  TrainOptions options;
  options.checkpoint_dir = dir;
  {
    SarnModel model(*network_, rfn_config);
    model.Train(options);
  }
  auto found = nn::ListCheckpoints(dir);
  ASSERT_FALSE(found.empty());
  const std::string path = found.front().second;

  SarnConfig gat_config = rfn_config;
  gat_config.encoder = "gat";
  gat_config.negatives = "spatial";
  SarnModel model(*network_, gat_config);
  Tensor before = model.Embeddings();
  ModelLoadStatus status = model.LoadFromTrainingCheckpoint(path);
  EXPECT_EQ(status.error, ModelLoadError::kVariantMismatch);
  EXPECT_NE(status.message.find("encoder=rfn"), std::string::npos) << status.message;
  EXPECT_NE(status.message.find("encoder=gat"), std::string::npos) << status.message;
  EXPECT_NE(status.message.find("negatives=in-batch"), std::string::npos)
      << status.message;
  Tensor after = model.Embeddings();
  ASSERT_EQ(before.data(), after.data());  // Model untouched on failure.

  // The matching composition restores cleanly from the same file.
  SarnModel matching(*network_, rfn_config);
  EXPECT_TRUE(matching.LoadFromTrainingCheckpoint(path).ok());
  SetParallelThreads(0);
  std::filesystem::remove_all(dir);
}

// Pre-plane checkpoints carry no variant section; they are accepted as the
// default composition instead of being rejected.
TEST_F(SarnModelTest, CheckpointWithoutVariantTagLoadsAsLegacy) {
  SetParallelThreads(1);
  SarnConfig config = SmallConfig();
  config.max_epochs = 1;
  std::string dir = FreshDir("sarn_variant_legacy");
  TrainOptions options;
  options.checkpoint_dir = dir;
  {
    SarnModel model(*network_, config);
    model.Train(options);
  }
  auto found = nn::ListCheckpoints(dir);
  ASSERT_FALSE(found.empty());
  const std::string path = found.front().second;
  // Strip the variant section, simulating a checkpoint from before the
  // pluggable plane existed.
  nn::TrainingCheckpoint ckpt;
  ASSERT_TRUE(nn::LoadCheckpoint(path, &ckpt).ok());
  ckpt.sections.erase(
      std::remove_if(ckpt.sections.begin(), ckpt.sections.end(),
                     [](const auto& s) { return s.first == kSectionVariant; }),
      ckpt.sections.end());
  ASSERT_TRUE(nn::SaveCheckpoint(path, ckpt).ok());

  SarnModel model(*network_, config);
  EXPECT_TRUE(model.LoadFromTrainingCheckpoint(path).ok());
  SetParallelThreads(0);
  std::filesystem::remove_all(dir);
}

TEST_F(SarnModelTest, EarlyStoppingBoundsEpochs) {
  SarnConfig config = SmallConfig();
  config.max_epochs = 50;
  config.patience = 2;
  SarnModel model(*network_, config);
  TrainStats stats = model.Train();
  EXPECT_LE(stats.epochs_run, 50);
  EXPECT_EQ(stats.epoch_losses.size(), static_cast<size_t>(stats.epochs_run));
}

}  // namespace
}  // namespace sarn::core
