// Pins the int8 quantized EmbeddingIndex contract (DESIGN.md §12):
//  * recall@10 >= 0.99 against the exact float index on a synthetic-city
//    embedding matrix, for BOTH metrics (cosine via per-row scales, L1 via
//    the shared scale);
//  * quantized batches are bitwise identical to sequential single queries
//    (the serve layer batches transparently at either precision);
//  * index_bytes shrinks ~4x, and degenerate matrices stay well-defined.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "roadnet/features.h"
#include "roadnet/synthetic_city.h"
#include "tasks/embedding_index.h"
#include "tensor/storage.h"
#include "tensor/tensor.h"

namespace sarn::tasks {
namespace {

using tensor::Tensor;

// Embedding stand-in with real spatial structure: the synthetic city's dense
// segment features (type one-hot, length, heading, normalized midpoint)
// random-projected to 64 dims with a fixed seed. Near neighbors are
// genuinely near (same street type, adjacent midpoints), so the float top-10
// is well separated — what trained embeddings look like, unlike iid noise.
Tensor SyntheticCityEmbeddings(int64_t* n_out) {
  roadnet::SyntheticCityConfig config;
  config.seed = 5;
  config.rows = 10;
  config.cols = 10;
  roadnet::RoadNetwork network = roadnet::GenerateSyntheticCity(config);
  std::vector<std::vector<float>> features =
      roadnet::DenseSegmentFeatures(network);
  const int64_t n = static_cast<int64_t>(features.size());
  const int64_t f = static_cast<int64_t>(features[0].size());
  const int64_t d = 64;
  Rng rng(123);
  std::vector<float> projection(f * d);
  for (float& v : projection) v = static_cast<float>(rng.Normal(0.0, 1.0));
  std::vector<float> data(n * d, 0.0f);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t k = 0; k < f; ++k) {
      const float x = features[i][k];
      if (x == 0.0f) continue;
      for (int64_t j = 0; j < d; ++j) data[i * d + j] += x * projection[k * d + j];
    }
  }
  *n_out = n;
  return Tensor::FromVector({n, d}, std::move(data));
}

double MeanRecallAt10(const EmbeddingIndex& exact, const EmbeddingIndex& approx) {
  const int k = 10;
  double total = 0.0;
  for (int64_t q = 0; q < exact.size(); ++q) {
    std::vector<Neighbor> truth = exact.QueryById(q, k);
    std::vector<Neighbor> got = approx.QueryById(q, k);
    int hits = 0;
    for (const Neighbor& t : truth) {
      for (const Neighbor& g : got) {
        if (g.id == t.id) {
          ++hits;
          break;
        }
      }
    }
    total += static_cast<double>(hits) / static_cast<double>(truth.size());
  }
  return total / static_cast<double>(exact.size());
}

TEST(QuantizedIndexTest, RecallAt10CosineOnSyntheticCity) {
  int64_t n = 0;
  Tensor embeddings = SyntheticCityEmbeddings(&n);
  ASSERT_GT(n, 100);
  EmbeddingIndex exact(embeddings, IndexMetric::kCosine);
  EmbeddingIndex quantized(embeddings, IndexMetric::kCosine,
                           IndexPrecision::kInt8);
  EXPECT_GE(MeanRecallAt10(exact, quantized), 0.99);
}

TEST(QuantizedIndexTest, RecallAt10L1OnSyntheticCity) {
  int64_t n = 0;
  Tensor embeddings = SyntheticCityEmbeddings(&n);
  EmbeddingIndex exact(embeddings, IndexMetric::kL1);
  EmbeddingIndex quantized(embeddings, IndexMetric::kL1, IndexPrecision::kInt8);
  EXPECT_GE(MeanRecallAt10(exact, quantized), 0.99);
}

TEST(QuantizedIndexTest, BatchMatchesSequentialBitwiseBothMetrics) {
  int64_t n = 0;
  Tensor embeddings = SyntheticCityEmbeddings(&n);
  Rng rng(7);
  for (IndexMetric metric : {IndexMetric::kCosine, IndexMetric::kL1}) {
    EmbeddingIndex index(embeddings, metric, IndexPrecision::kInt8);
    std::vector<IndexQuery> queries;
    for (int i = 0; i < 9; ++i) {
      queries.push_back(IndexQuery::ById((i * 37) % n));
    }
    std::vector<float> vec(static_cast<size_t>(index.dim()));
    for (float& v : vec) v = static_cast<float>(rng.Normal(0.0, 1.0));
    queries.push_back(IndexQuery::ByVector(vec));
    std::vector<std::vector<Neighbor>> batched = index.QueryBatch(queries, 10);
    for (size_t i = 0; i < queries.size(); ++i) {
      IndexQuery one = queries[i];
      std::vector<Neighbor> single =
          std::move(index.QueryBatch({&one, 1}, 10)[0]);
      ASSERT_EQ(batched[i].size(), single.size()) << "query " << i;
      for (size_t j = 0; j < single.size(); ++j) {
        EXPECT_EQ(batched[i][j].id, single[j].id) << "query " << i;
        EXPECT_EQ(batched[i][j].score, single[j].score) << "query " << i;
      }
    }
  }
}

TEST(QuantizedIndexTest, ByVectorOfStoredRowFindsThatRowFirst) {
  // Cosine by-vector queries are normalised then quantized with their own
  // scale; a stored row's float vector must still rank that row first.
  int64_t n = 0;
  Tensor embeddings = SyntheticCityEmbeddings(&n);
  EmbeddingIndex index(embeddings, IndexMetric::kCosine, IndexPrecision::kInt8);
  for (int64_t q : {int64_t{0}, n / 2, n - 1}) {
    std::vector<float> row(embeddings.data().begin() + q * index.dim(),
                           embeddings.data().begin() + (q + 1) * index.dim());
    std::vector<Neighbor> top = index.QueryByVector(row, 1);
    ASSERT_EQ(top.size(), 1u);
    EXPECT_EQ(top[0].id, q);
  }
}

TEST(QuantizedIndexTest, IndexBytesShrinkAboutFourX) {
  int64_t n = 0;
  Tensor embeddings = SyntheticCityEmbeddings(&n);
  EmbeddingIndex exact(embeddings, IndexMetric::kCosine);
  EmbeddingIndex cosine_q(embeddings, IndexMetric::kCosine,
                          IndexPrecision::kInt8);
  EmbeddingIndex l1_q(embeddings, IndexMetric::kL1, IndexPrecision::kInt8);
  EXPECT_EQ(exact.index_bytes(),
            static_cast<size_t>(n) * 64 * sizeof(float));
  // codes + one float scale per row (cosine) or one shared scale (L1).
  EXPECT_EQ(cosine_q.index_bytes(),
            static_cast<size_t>(n) * 64 + static_cast<size_t>(n) * sizeof(float));
  EXPECT_EQ(l1_q.index_bytes(), static_cast<size_t>(n) * 64 + sizeof(float));
  EXPECT_LT(static_cast<double>(cosine_q.index_bytes()),
            0.3 * static_cast<double>(exact.index_bytes()));
  EXPECT_EQ(exact.precision(), IndexPrecision::kFloat32);
  EXPECT_EQ(cosine_q.precision(), IndexPrecision::kInt8);
}

TEST(QuantizedIndexTest, PrecisionNamesAreStable) {
  EXPECT_STREQ(PrecisionName(IndexPrecision::kFloat32), "float32");
  EXPECT_STREQ(PrecisionName(IndexPrecision::kInt8), "int8");
}

TEST(QuantizedIndexTest, AllZeroMatrixIsWellDefined) {
  // Zero rows quantize to scale 0 + zero codes; every score is exactly 0 and
  // results stay deterministic (no NaNs from a 0/0 normalisation).
  Tensor zeros = Tensor::Zeros({8, 16});
  for (IndexMetric metric : {IndexMetric::kCosine, IndexMetric::kL1}) {
    EmbeddingIndex index(zeros, metric, IndexPrecision::kInt8);
    std::vector<Neighbor> top = index.QueryById(3, 5);
    ASSERT_EQ(top.size(), 5u);
    for (const Neighbor& nb : top) {
      EXPECT_EQ(nb.score, 0.0);
      EXPECT_NE(nb.id, 3);
    }
  }
}

TEST(QuantizedIndexTest, SteadyStateQueriesAreAllocationFree) {
  // The quantized scan path must hit the BufferPool exactly like the float
  // path: after one warming batch, repeated batches allocate nothing.
  int64_t n = 0;
  Tensor embeddings = SyntheticCityEmbeddings(&n);
  EmbeddingIndex index(embeddings, IndexMetric::kCosine, IndexPrecision::kInt8);
  std::vector<IndexQuery> queries;
  for (int i = 0; i < 16; ++i) queries.push_back(IndexQuery::ById(i * 5));
  index.QueryBatch(queries, 10);
  for (int round = 0; round < 3; ++round) {
    tensor::StepScope scope;
    index.QueryBatch(queries, 10);
    EXPECT_EQ(scope.pool_misses(), 0u) << "round " << round;
  }
}

}  // namespace
}  // namespace sarn::tasks
