// Tests of the pluggable encoder/augmentation plane (DESIGN.md §16).
//
// The anchor is the golden-trace pin: default-config SARN training must be
// bitwise identical to the pre-refactor implementation — same epoch-loss
// bits, same embedding bits — at 1 and 4 threads, with the plan engine off
// and in replay mode. The golden file was generated from the tree as it
// stood *before* SarnModel was split into Encoder/Augmentation/
// NegativeSampler components, so any refactor that perturbs the RNG stream,
// the op sequence or the reduction order fails this test.
//
// Regenerate (only when a change is *supposed* to shift the numerics):
//   SARN_WRITE_GOLDEN=1 ./encoder_plane_test --gtest_filter='*RewriteGolden*'

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "core/sarn_model.h"
#include "core/variant_registry.h"
#include "roadnet/synthetic_city.h"
#include "tasks/embedding_source.h"
#include "tasks/road_property_task.h"
#include "tensor/ops.h"

namespace sarn::core {

// Declared friend in SarnModel (this binary's peer exposes the plan-key
// derivation; sarn_internals_test has its own peer for the loss internals).
class SarnModelTestPeer {
 public:
  explicit SarnModelTestPeer(SarnModel& model) : model_(&model) {}

  /// The step key of a batch over the uncorrupted view (structure only; no
  /// RNG involvement, so it is comparable across model instances).
  plan::PlanKey StepKey(float learning_rate = 0.005f) {
    std::vector<int64_t> batch = {0, 1, 2, 3};
    return model_->MakeStepPlanKey(model_->full_view_, model_->full_view_, batch,
                                   learning_rate);
  }

 private:
  SarnModel* model_;
};

namespace {

using tensor::Tensor;

constexpr char kGoldenFile[] = SARN_TEST_DATA_DIR "/golden_sarn_trace.txt";

SarnConfig GoldenConfig() {
  // Default-config SARN (encoder/augmentation/negatives all defaulted), with
  // only the structural sizes scaled down so four epochs run in test time.
  SarnConfig config;
  config.hidden_dim = 16;
  config.embedding_dim = 16;
  config.projection_dim = 8;
  config.gat_layers = 2;
  config.gat_heads = 2;
  config.feature_dim_per_feature = 4;
  config.max_epochs = 4;
  config.batch_size = 128;
  config.queue_budget = 400;
  config.cell_side_meters = 300.0;
  return config;
}

roadnet::RoadNetwork GoldenCity() {
  roadnet::SyntheticCityConfig city;
  city.rows = 10;
  city.cols = 10;
  return roadnet::GenerateSyntheticCity(city);
}

uint64_t DoubleBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

// FNV-1a over the raw float bits of a tensor, row-major.
uint64_t TensorDigest(const Tensor& t) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (float v : t.data()) {
    uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    for (int shift = 0; shift < 32; shift += 8) {
      h ^= (bits >> shift) & 0xffu;
      h *= 0x100000001b3ull;
    }
  }
  return h;
}

struct Trace {
  std::vector<uint64_t> loss_bits;
  uint64_t embedding_digest = 0;
};

Trace RunTrace(const roadnet::RoadNetwork& network, size_t threads,
               plan::PlanMode mode) {
  size_t saved = GetParallelThreads();
  SetParallelThreads(threads);
  SarnModel model(network, GoldenConfig());
  TrainOptions options;
  options.plan_mode = mode;
  TrainStats stats = model.Train(options);
  Trace trace;
  for (double loss : stats.epoch_losses) trace.loss_bits.push_back(DoubleBits(loss));
  trace.embedding_digest = TensorDigest(model.Embeddings());
  SetParallelThreads(saved);
  return trace;
}

std::string FormatTrace(size_t threads, const Trace& trace) {
  std::ostringstream out;
  out << "threads=" << threads << " losses=";
  for (size_t i = 0; i < trace.loss_bits.size(); ++i) {
    if (i > 0) out << ",";
    out << std::hex << trace.loss_bits[i] << std::dec;
  }
  out << " embeddings=" << std::hex << trace.embedding_digest << std::dec;
  return out.str();
}

// Parses "threads=N losses=hex,hex,... embeddings=hex" lines.
std::map<size_t, Trace> ReadGoldenFile() {
  std::map<size_t, Trace> golden;
  std::ifstream in(kGoldenFile);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    size_t threads = 0;
    Trace trace;
    std::istringstream fields(line);
    std::string field;
    while (fields >> field) {
      if (field.rfind("threads=", 0) == 0) {
        threads = static_cast<size_t>(std::stoull(field.substr(8)));
      } else if (field.rfind("losses=", 0) == 0) {
        std::istringstream values(field.substr(7));
        std::string value;
        while (std::getline(values, value, ',')) {
          trace.loss_bits.push_back(std::stoull(value, nullptr, 16));
        }
      } else if (field.rfind("embeddings=", 0) == 0) {
        trace.embedding_digest = std::stoull(field.substr(11), nullptr, 16);
      }
    }
    if (threads > 0) golden[threads] = trace;
  }
  return golden;
}

TEST(GoldenTrace, RewriteGoldenFile) {
  if (std::getenv("SARN_WRITE_GOLDEN") == nullptr) {
    GTEST_SKIP() << "set SARN_WRITE_GOLDEN=1 to regenerate " << kGoldenFile;
  }
  const auto network = GoldenCity();
  std::ofstream out(kGoldenFile);
  ASSERT_TRUE(out.good()) << "cannot write " << kGoldenFile;
  out << "# Pre-refactor default-config SARN training trace (epoch-loss bits\n"
      << "# and embedding digest); see encoder_plane_test.cc.\n";
  for (size_t threads : {size_t{1}, size_t{4}}) {
    out << FormatTrace(threads, RunTrace(network, threads, plan::PlanMode::kOff))
        << "\n";
  }
}

class GoldenTraceTest : public testing::TestWithParam<std::tuple<size_t, int>> {};

TEST_P(GoldenTraceTest, BitwiseIdenticalToPreRefactorTrace) {
  const size_t threads = std::get<0>(GetParam());
  const plan::PlanMode mode = std::get<1>(GetParam()) == 0 ? plan::PlanMode::kOff
                                                           : plan::PlanMode::kReplay;
  auto golden = ReadGoldenFile();
  ASSERT_TRUE(golden.count(threads))
      << "no golden entry for threads=" << threads << " in " << kGoldenFile;
  const auto network = GoldenCity();
  Trace trace = RunTrace(network, threads, mode);
  const Trace& expected = golden[threads];
  ASSERT_EQ(trace.loss_bits.size(), expected.loss_bits.size());
  for (size_t i = 0; i < trace.loss_bits.size(); ++i) {
    EXPECT_EQ(trace.loss_bits[i], expected.loss_bits[i])
        << "epoch " << i << " loss bits diverge at threads=" << threads;
  }
  EXPECT_EQ(trace.embedding_digest, expected.embedding_digest)
      << "embedding bits diverge at threads=" << threads;
}

INSTANTIATE_TEST_SUITE_P(ThreadsAndPlanModes, GoldenTraceTest,
                         testing::Combine(testing::Values(size_t{1}, size_t{4}),
                                          testing::Values(0, 1)),
                         [](const auto& info) {
                           return "threads" +
                                  std::to_string(std::get<0>(info.param)) +
                                  (std::get<1>(info.param) == 0 ? "_off"
                                                                : "_replay");
                         });

// --- Registry round-trip ------------------------------------------------------
//
// Every registered variant name must construct through SarnModel, train two
// epochs, and evaluate on a downstream task. Each name is exercised against
// the paper defaults for the other two dimensions, so a broken factory or a
// loss/augmentation incompatible with the trainer contract fails by name.

struct VariantCase {
  std::string field;  // "encoder" | "augmentation" | "negatives".
  std::string name;
};

std::vector<VariantCase> AllVariantCases() {
  VariantRegistry& registry = VariantRegistry::Instance();
  std::vector<VariantCase> cases;
  for (const std::string& name : registry.EncoderNames())
    cases.push_back({"encoder", name});
  for (const std::string& name : registry.AugmentationNames())
    cases.push_back({"augmentation", name});
  for (const std::string& name : registry.SamplerNames())
    cases.push_back({"negatives", name});
  return cases;
}

TEST(VariantRegistryRoundTrip, EveryRegisteredNameTrainsAndEvaluates) {
  const auto network = GoldenCity();
  for (const VariantCase& variant : AllVariantCases()) {
    SCOPED_TRACE(variant.field + "=" + variant.name);
    SarnConfig config = GoldenConfig();
    config.max_epochs = 2;
    if (variant.field == "encoder") config.encoder = variant.name;
    if (variant.field == "augmentation") config.augmentation = variant.name;
    if (variant.field == "negatives") config.negatives = variant.name;
    SarnModel model(network, config);
    TrainStats stats = model.Train(TrainOptions{});
    EXPECT_EQ(stats.epochs_run, 2);
    EXPECT_TRUE(std::isfinite(stats.final_loss));
    Tensor embeddings = model.Embeddings();
    ASSERT_EQ(embeddings.shape(),
              (tensor::Shape{network.num_segments(), config.embedding_dim}));
    for (float v : embeddings.data()) ASSERT_TRUE(std::isfinite(v));
    tasks::FrozenEmbeddingSource source(embeddings);
    tasks::RoadPropertyTask task(network, {});
    tasks::RoadPropertyResult result = task.Evaluate(source);
    EXPECT_GE(result.f1, 0.0);
    EXPECT_LE(result.f1, 1.0);
  }
}

TEST(VariantRegistryRoundTrip, RegistryEnumeratesTheBuiltIns) {
  VariantRegistry& registry = VariantRegistry::Instance();
  EXPECT_TRUE(registry.HasEncoder("gat"));
  EXPECT_TRUE(registry.HasEncoder("rfn"));
  EXPECT_TRUE(registry.HasAugmentation("spatial-importance"));
  EXPECT_TRUE(registry.HasAugmentation("third-law"));
  EXPECT_TRUE(registry.HasAugmentation("uniform-drop"));
  EXPECT_TRUE(registry.HasAugmentation("adaptive-drop"));
  EXPECT_TRUE(registry.HasSampler("spatial"));
  EXPECT_TRUE(registry.HasSampler("random"));
  EXPECT_TRUE(registry.HasSampler("in-batch"));
  EXPECT_TRUE(registry.HasSampler("all-vertex"));
  EXPECT_FALSE(registry.HasEncoder("no-such-encoder"));
}

// --- PlanKey variant identity -------------------------------------------------
//
// Plans recorded under one variant must never replay under another: the
// variant names are part of the step key's config hash, so two models that
// differ only in a registry name produce different keys for the same batch
// and graph structure.

TEST(PlanKeyVariantIdentity, EachVariantDimensionChangesTheKey) {
  const auto network = GoldenCity();
  SarnConfig base_config = GoldenConfig();
  SarnModel base(network, base_config);
  plan::PlanKey base_key = SarnModelTestPeer(base).StepKey();

  auto key_for = [&](SarnConfig config) {
    SarnModel model(network, config);
    return SarnModelTestPeer(model).StepKey();
  };

  SarnConfig rfn = base_config;
  rfn.encoder = "rfn";
  EXPECT_NE(key_for(rfn).config_hash, base_key.config_hash)
      << "encoder name not part of the plan identity";

  SarnConfig third_law = base_config;
  third_law.augmentation = "third-law";
  EXPECT_NE(key_for(third_law).config_hash, base_key.config_hash)
      << "augmentation name not part of the plan identity";

  SarnConfig in_batch = base_config;
  in_batch.negatives = "in-batch";
  EXPECT_NE(key_for(in_batch).config_hash, base_key.config_hash)
      << "negatives name not part of the plan identity";

  // Same composition -> same key (the hash is structural, not per-instance).
  EXPECT_EQ(key_for(base_config).config_hash, base_key.config_hash);
  EXPECT_EQ(key_for(base_config), base_key);
}

// The legacy SARN-w/o-NL switch resolves to the "random" sampler: both the
// variant tag and the plan identity must reflect the resolved name, and the
// key must still differ from the default composition (the hash covers the
// raw config too, so a plan from either spelling never replays as "spatial").
TEST(PlanKeyVariantIdentity, LegacyAblationSwitchResolvesToRandom) {
  const auto network = GoldenCity();
  SarnConfig legacy = GoldenConfig();
  legacy.use_spatial_negatives = false;
  SarnConfig named = GoldenConfig();
  named.negatives = "random";

  SarnModel legacy_model(network, legacy);
  SarnModel named_model(network, named);
  SarnModel default_model(network, GoldenConfig());
  EXPECT_EQ(std::string(legacy_model.negatives_name()), "random");
  EXPECT_EQ(legacy_model.variant_tag(), named_model.variant_tag());
  uint64_t default_hash = SarnModelTestPeer(default_model).StepKey().config_hash;
  EXPECT_NE(SarnModelTestPeer(legacy_model).StepKey().config_hash, default_hash);
  EXPECT_NE(SarnModelTestPeer(named_model).StepKey().config_hash, default_hash);
}

}  // namespace
}  // namespace sarn::core
