#include "roadnet/osm_import.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace sarn::roadnet {
namespace {

// A small, valid OSM extract: a two-way residential street of two segments,
// a one-way primary with maxspeed, and a non-highway way (building) that
// must be ignored.
constexpr const char* kSampleOsm = R"(<?xml version="1.0" encoding="UTF-8"?>
<osm version="0.6" generator="test">
  <!-- four street nodes -->
  <node id="1" lat="30.6500" lon="104.0600"/>
  <node id="2" lat="30.6510" lon="104.0600"/>
  <node id="3" lat="30.6520" lon="104.0600"/>
  <node id="4" lat="30.6520" lon="104.0610"/>
  <node id="5" lat="30.6530" lon="104.0610"/>
  <way id="100">
    <nd ref="1"/>
    <nd ref="2"/>
    <nd ref="3"/>
    <tag k="highway" v="residential"/>
    <tag k="name" v="Test Street"/>
  </way>
  <way id="101">
    <nd ref="3"/>
    <nd ref="4"/>
    <tag k="highway" v="primary"/>
    <tag k="oneway" v="yes"/>
    <tag k="maxspeed" v="60"/>
  </way>
  <way id="102">
    <nd ref="4"/>
    <nd ref="5"/>
    <tag k="building" v="yes"/>
  </way>
</osm>)";

TEST(OsmImportTest, ParsesSampleExtract) {
  OsmImportStats stats;
  auto network = ParseOsmXml(kSampleOsm, &stats);
  ASSERT_TRUE(network.has_value());
  EXPECT_EQ(stats.nodes_parsed, 5);
  EXPECT_EQ(stats.ways_parsed, 3);
  EXPECT_EQ(stats.ways_kept, 2);
  // Way 100: 2 node pairs x 2 directions = 4; way 101: 1 pair x 1 = 1.
  EXPECT_EQ(stats.segments_created, 5);
  EXPECT_EQ(network->num_segments(), 5);
}

TEST(OsmImportTest, SegmentAttributesParsed) {
  auto network = ParseOsmXml(kSampleOsm);
  ASSERT_TRUE(network.has_value());
  int primaries = 0, residentials = 0;
  for (const RoadSegment& s : network->segments()) {
    if (s.type == HighwayType::kPrimary) {
      ++primaries;
      EXPECT_EQ(s.speed_limit_kmh.value(), 60);
    }
    if (s.type == HighwayType::kResidential) {
      ++residentials;
      EXPECT_FALSE(s.speed_limit_kmh.has_value());
      EXPECT_NEAR(s.length_meters, 111.2, 5.0);  // 0.001 deg latitude.
    }
  }
  EXPECT_EQ(primaries, 1);
  EXPECT_EQ(residentials, 4);
}

TEST(OsmImportTest, ConnectivityAcrossWays) {
  auto network = ParseOsmXml(kSampleOsm);
  ASSERT_TRUE(network.has_value());
  // The residential into-node-3 segment must connect to the primary 3->4.
  bool found = false;
  for (const TopoEdge& e : network->topo_edges()) {
    if (network->segment(e.to).type == HighwayType::kPrimary) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(OsmImportTest, LinkTypesMapToBaseClass) {
  std::string xml = R"(<osm>
    <node id="1" lat="0.0" lon="0.0"/>
    <node id="2" lat="0.001" lon="0.0"/>
    <way id="1"><nd ref="1"/><nd ref="2"/>
      <tag k="highway" v="motorway_link"/></way>
  </osm>)";
  auto network = ParseOsmXml(xml);
  ASSERT_TRUE(network.has_value());
  EXPECT_EQ(network->segment(0).type, HighwayType::kMotorway);
}

TEST(OsmImportTest, MphMaxspeedConverted) {
  std::string xml = R"(<osm>
    <node id="1" lat="0.0" lon="0.0"/>
    <node id="2" lat="0.001" lon="0.0"/>
    <way id="1"><nd ref="1"/><nd ref="2"/>
      <tag k="highway" v="primary"/>
      <tag k="maxspeed" v="30 mph"/></way>
  </osm>)";
  auto network = ParseOsmXml(xml);
  ASSERT_TRUE(network.has_value());
  EXPECT_EQ(network->segment(0).speed_limit_kmh.value(), 48);  // 30 mph ~ 48 km/h.
}

TEST(OsmImportTest, SingleQuotedAttributes) {
  std::string xml = "<osm><node id='1' lat='0.0' lon='0.0'/>"
                    "<node id='2' lat='0.001' lon='0.0'/>"
                    "<way id='1'><nd ref='1'/><nd ref='2'/>"
                    "<tag k='highway' v='tertiary'/></way></osm>";
  auto network = ParseOsmXml(xml);
  ASSERT_TRUE(network.has_value());
  EXPECT_EQ(network->segment(0).type, HighwayType::kTertiary);
}

TEST(OsmImportTest, ClippedExtractSkipsMissingNodes) {
  // Node 3 is referenced but missing (clipped at the boundary).
  std::string xml = R"(<osm>
    <node id="1" lat="0.0" lon="0.0"/>
    <node id="2" lat="0.001" lon="0.0"/>
    <way id="1"><nd ref="1"/><nd ref="2"/><nd ref="3"/>
      <tag k="highway" v="residential"/></way>
  </osm>)";
  auto network = ParseOsmXml(xml);
  ASSERT_TRUE(network.has_value());
  EXPECT_EQ(network->num_segments(), 2);  // Only 1<->2, both directions.
}

TEST(OsmImportTest, RejectsNonOsmDocuments) {
  EXPECT_FALSE(ParseOsmXml("<html><body>hi</body></html>").has_value());
  EXPECT_FALSE(ParseOsmXml("").has_value());
  EXPECT_FALSE(ParseOsmXml("<osm></osm>").has_value());  // No ways.
}

TEST(OsmImportTest, UnknownHighwayValuesIgnored) {
  std::string xml = R"(<osm>
    <node id="1" lat="0.0" lon="0.0"/>
    <node id="2" lat="0.001" lon="0.0"/>
    <way id="1"><nd ref="1"/><nd ref="2"/>
      <tag k="highway" v="bridleway"/></way>
  </osm>)";
  EXPECT_FALSE(ParseOsmXml(xml).has_value());
}

TEST(OsmImportTest, LoadFromFile) {
  std::string path = testing::TempDir() + "/sarn_sample.osm";
  {
    std::ofstream out(path);
    out << kSampleOsm;
  }
  OsmImportStats stats;
  auto network = LoadOsmFile(path, &stats);
  ASSERT_TRUE(network.has_value());
  EXPECT_EQ(network->num_segments(), 5);
  EXPECT_FALSE(LoadOsmFile("/nonexistent.osm").has_value());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sarn::roadnet
