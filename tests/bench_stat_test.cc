#include <gtest/gtest.h>

#include "bench_common.h"

namespace sarn::bench {
namespace {

TEST(StatTest, SingleValueNoDeviation) {
  Stat stat;
  stat.Add(42.5);
  EXPECT_EQ(stat.count, 1);
  EXPECT_DOUBLE_EQ(stat.mean, 42.5);
  EXPECT_EQ(stat.Cell(1), "42.5");
}

TEST(StatTest, MeanAndStdOverKnownValues) {
  Stat stat;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stat.Add(v);
  EXPECT_EQ(stat.count, 8);
  EXPECT_DOUBLE_EQ(stat.mean, 5.0);
  // Sample stddev of this classic set is sqrt(32/7) ~ 2.138.
  std::string cell = stat.Cell(2);
  EXPECT_NE(cell.find("5.00"), std::string::npos);
  EXPECT_NE(cell.find("2.14"), std::string::npos);
}

TEST(StatTest, CellUsesPlusMinusSeparator) {
  Stat stat;
  stat.Add(1.0);
  stat.Add(3.0);
  EXPECT_NE(stat.Cell(1).find("±"), std::string::npos);
}

TEST(StatTest, EmptyStatRendersZero) {
  Stat stat;
  EXPECT_EQ(stat.count, 0);
  EXPECT_EQ(stat.Cell(0), "0");
}

TEST(BenchEnvTest, DefaultsSane) {
  BenchEnv env = GetEnv();  // May be overridden by ambient env vars.
  EXPECT_GT(env.scale, 0.0);
  EXPECT_GT(env.epochs, 0);
  EXPECT_GT(env.reps, 0);
  EXPECT_GT(env.trajectories, 0);
}

TEST(BenchCommonTest, NumFormatsDecimals) {
  EXPECT_EQ(Num(3.14159, 2), "3.14");
  EXPECT_EQ(Num(2.0, 0), "2");
}

}  // namespace
}  // namespace sarn::bench
