// Coverage for small public surfaces: logging levels, tensor printing,
// EdgeList, timers.

#include <cmath>
#include <thread>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/timer.h"
#include "nn/gat.h"
#include "tensor/tensor.h"

namespace sarn {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, MacroCompilesForAllLevels) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);  // Suppress output during the test.
  SARN_LOG(Debug) << "debug " << 1;
  SARN_LOG(Info) << "info " << 2.5;
  SARN_LOG(Warning) << "warn " << "text";
  SARN_LOG(Error) << "";
  SetLogLevel(original);
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  double elapsed = timer.ElapsedMillis();
  EXPECT_GE(elapsed, 15.0);
  EXPECT_LT(elapsed, 2000.0);
  timer.Reset();
  EXPECT_LT(timer.ElapsedMillis(), 15.0);
}

TEST(TensorToStringTest, FormatsVectorsAndMatrices) {
  tensor::Tensor v = tensor::Tensor::FromVector({3}, {1, 2, 3});
  std::string s = v.ToString();
  EXPECT_NE(s.find("[3]"), std::string::npos);
  EXPECT_NE(s.find("1"), std::string::npos);

  tensor::Tensor m = tensor::Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  std::string ms = m.ToString();
  EXPECT_NE(ms.find("[2, 2]"), std::string::npos);

  tensor::Tensor undefined;
  EXPECT_EQ(undefined.ToString(), "Tensor(undefined)");
}

TEST(TensorToStringTest, TruncatesLongTensors) {
  tensor::Tensor v = tensor::Tensor::Zeros({100});
  EXPECT_NE(v.ToString(4).find("..."), std::string::npos);
}

TEST(EdgeListTest, AddAndSize) {
  nn::EdgeList edges;
  EXPECT_EQ(edges.size(), 0u);
  edges.Add(1, 2);
  edges.Add(3, 4);
  EXPECT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges.src[1], 3);
  EXPECT_EQ(edges.dst[1], 4);
}

}  // namespace
}  // namespace sarn
