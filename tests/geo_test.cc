#include "geo/point.h"

#include <gtest/gtest.h>

namespace sarn::geo {
namespace {

TEST(GeoTest, HaversineZeroForIdenticalPoints) {
  LatLng p{30.66, 104.06};
  EXPECT_DOUBLE_EQ(HaversineMeters(p, p), 0.0);
}

TEST(GeoTest, HaversineKnownDistance) {
  // One degree of latitude is ~111.19 km.
  LatLng a{0.0, 0.0}, b{1.0, 0.0};
  EXPECT_NEAR(HaversineMeters(a, b), 111195.0, 100.0);
}

TEST(GeoTest, HaversineSymmetric) {
  LatLng a{30.0, 104.0}, b{30.01, 104.02};
  EXPECT_DOUBLE_EQ(HaversineMeters(a, b), HaversineMeters(b, a));
}

TEST(GeoTest, HaversineLongitudeShrinksWithLatitude) {
  // A fixed longitude delta spans fewer meters at higher latitude.
  double at_equator = HaversineMeters({0.0, 0.0}, {0.0, 1.0});
  double at_60 = HaversineMeters({60.0, 0.0}, {60.0, 1.0});
  EXPECT_NEAR(at_60 / at_equator, 0.5, 0.01);
}

TEST(GeoTest, AngularDistanceBasics) {
  EXPECT_DOUBLE_EQ(AngularDistance(0.0, 0.0), 0.0);
  EXPECT_NEAR(AngularDistance(0.0, kPi / 2), kPi / 2, 1e-12);
  EXPECT_NEAR(AngularDistance(kPi / 2, 0.0), kPi / 2, 1e-12);
}

TEST(GeoTest, AngularDistanceWrapsAround) {
  // 350 degrees vs 10 degrees is 20 degrees apart, not 340.
  double a = DegToRad(350.0), b = DegToRad(10.0);
  EXPECT_NEAR(AngularDistance(a, b), DegToRad(20.0), 1e-9);
}

TEST(GeoTest, AngularDistanceMaxIsPi) {
  EXPECT_NEAR(AngularDistance(0.0, kPi), kPi, 1e-12);
  EXPECT_NEAR(AngularDistance(0.25, 0.25 + kPi), kPi, 1e-9);
}

TEST(GeoTest, SegmentRadianCardinalDirections) {
  LatLng origin{30.0, 104.0};
  LocalProjection proj(origin);
  LatLng east = proj.ToLatLng(100.0, 0.0);
  LatLng north = proj.ToLatLng(0.0, 100.0);
  LatLng west = proj.ToLatLng(-100.0, 0.0);
  EXPECT_NEAR(SegmentRadian(origin, east), 0.0, 1e-6);
  EXPECT_NEAR(SegmentRadian(origin, north), kPi / 2, 1e-6);
  EXPECT_NEAR(SegmentRadian(origin, west), kPi, 1e-6);
}

TEST(GeoTest, SegmentRadianInRange) {
  LatLng origin{30.0, 104.0};
  LocalProjection proj(origin);
  for (double angle = 0.0; angle < 2 * kPi; angle += 0.3) {
    LatLng target = proj.ToLatLng(100.0 * std::cos(angle), 100.0 * std::sin(angle));
    double r = SegmentRadian(origin, target);
    EXPECT_GE(r, 0.0);
    EXPECT_LT(r, 2 * kPi + 1e-9);
    EXPECT_NEAR(r, angle, 1e-4);
  }
}

TEST(GeoTest, LocalProjectionRoundTrip) {
  LocalProjection proj(LatLng{37.77, -122.42});
  for (double x : {-3000.0, 0.0, 1234.5}) {
    for (double y : {-2000.0, 0.0, 987.6}) {
      LatLng p = proj.ToLatLng(x, y);
      double rx, ry;
      proj.ToMeters(p, &rx, &ry);
      EXPECT_NEAR(rx, x, 1e-6);
      EXPECT_NEAR(ry, y, 1e-6);
    }
  }
}

TEST(GeoTest, LocalProjectionConsistentWithHaversine) {
  LocalProjection proj(LatLng{30.66, 104.06});
  LatLng p = proj.ToLatLng(300.0, 400.0);  // 500 m from origin.
  EXPECT_NEAR(HaversineMeters(proj.origin(), p), 500.0, 1.0);
}

TEST(GeoTest, MidpointIsAverage) {
  LatLng a{10.0, 20.0}, b{12.0, 26.0};
  LatLng mid = Midpoint(a, b);
  EXPECT_DOUBLE_EQ(mid.lat, 11.0);
  EXPECT_DOUBLE_EQ(mid.lng, 23.0);
}

TEST(GeoTest, BoundingBoxExtendAndContains) {
  BoundingBox box = BoundingBox::Empty();
  box.Extend({30.0, 104.0});
  box.Extend({30.1, 104.2});
  EXPECT_TRUE(box.Contains({30.05, 104.1}));
  EXPECT_FALSE(box.Contains({29.9, 104.1}));
  EXPECT_FALSE(box.Contains({30.05, 104.3}));
}

TEST(GeoTest, BoundingBoxDimensions) {
  LocalProjection proj(LatLng{30.0, 104.0});
  BoundingBox box = BoundingBox::Empty();
  box.Extend(proj.ToLatLng(0.0, 0.0));
  box.Extend(proj.ToLatLng(5000.0, 3000.0));
  EXPECT_NEAR(box.WidthMeters(), 5000.0, 10.0);
  EXPECT_NEAR(box.HeightMeters(), 3000.0, 10.0);
}

}  // namespace
}  // namespace sarn::geo
