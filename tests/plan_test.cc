// Step-plan engine tests (DESIGN.md §15): the plan cache's per-key
// capture -> verify -> replay lifecycle, the invalidation matrix (shape, LR
// and thread-count changes each force a re-record; a no-op rebuild reuses the
// cached plan), and the headline guarantee — `--plan record` / `--plan
// replay` training is bitwise identical to the dynamic tape, at 1 and 4
// threads and across a kill + resume.

#include "plan/executor.h"

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/rng.h"
#include "core/sarn_model.h"
#include "obs/metrics.h"
#include "plan/plan.h"
#include "roadnet/synthetic_city.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace sarn::plan {
namespace {

using tensor::Tensor;

// ---------------------------------------------------------------------------
// PlanKey / PlanMode unit surface.

TEST(PlanKeyTest, EveryFieldParticipatesInEquality) {
  PlanKey base;
  base.config_hash = 7;
  base.vertices = 100;
  base.edges_a = 50;
  base.edges_b = 51;
  base.batch = 32;
  base.phi_max = 9;
  base.cells = 4;
  base.rows = 30;
  base.threads = 1;
  EXPECT_EQ(base, base);

  PlanKey k = base;
  k.config_hash ^= 1;
  EXPECT_NE(base, k);
  k = base;
  k.vertices += 1;
  EXPECT_NE(base, k);
  k = base;
  k.edges_a += 1;
  EXPECT_NE(base, k);
  k = base;
  k.edges_b += 1;
  EXPECT_NE(base, k);
  k = base;
  k.batch -= 1;
  EXPECT_NE(base, k);
  k = base;
  k.phi_max += 1;
  EXPECT_NE(base, k);
  k = base;
  k.cells += 1;
  EXPECT_NE(base, k);
  k = base;
  k.rows += 1;
  EXPECT_NE(base, k);
  k = base;
  k.threads = 4;
  EXPECT_NE(base, k);
  EXPECT_NE(PlanKeyHash{}(base), PlanKeyHash{}(k));
}

TEST(PlanModeTest, ParseAndPrecedence) {
  EXPECT_EQ(ParsePlanMode("off"), PlanMode::kOff);
  EXPECT_EQ(ParsePlanMode("record"), PlanMode::kRecord);
  EXPECT_EQ(ParsePlanMode("replay"), PlanMode::kReplay);
  EXPECT_FALSE(ParsePlanMode("Replay").has_value());
  EXPECT_FALSE(ParsePlanMode("").has_value());

  // An explicit request always beats the environment.
  EXPECT_EQ(EffectivePlanMode(PlanMode::kReplay), PlanMode::kReplay);
  EXPECT_EQ(EffectivePlanMode(PlanMode::kOff), PlanMode::kOff);
}

// ---------------------------------------------------------------------------
// Executor lifecycle on a real (small) tensor step.
//
// One "training step": forward through two matmuls + elementwise tail,
// backward, all inside the executor's step bracket. The parameters and their
// grad buffers outlive the bracket (escaping allocations), everything else
// dies inside it — the same shape of lifetime mix as a real SARN step.

struct MiniStep {
  Tensor w1 = Tensor::Zeros({16, 16}).RequiresGrad();
  Tensor w2 = Tensor::Zeros({16, 16}).RequiresGrad();
  Tensor x = Tensor::Ones({16, 16});

  MiniStep() {
    Rng rng(11);
    w1 = Tensor::Randn({16, 16}, rng, 0.1f).RequiresGrad();
    w2 = Tensor::Randn({16, 16}, rng, 0.1f).RequiresGrad();
    // Touch the grads once so the first bracketed step does not see the
    // one-time grad-buffer allocations (mirrors a warmed optimizer).
    PlanExecutor off(PlanMode::kOff);
    Run(&off, PlanKey{});
  }

  double Run(PlanExecutor* executor, const PlanKey& key) {
    PlanExecutor::StepGuard guard = executor->BeginStep(key);
    Tensor h = tensor::Relu(tensor::MatMul(x, w1));
    Tensor out = tensor::Tanh(tensor::MatMul(h, w2));
    Tensor loss = tensor::Mean(tensor::Square(out));
    double value = loss.item();
    EXPECT_EQ(loss.Backward(), Tensor::BackwardStatus::kOk);
    return value;
  }
};

PlanKey TestKey(uint64_t config_hash = 1, int64_t batch = 16, int64_t threads = 1) {
  PlanKey key;
  key.config_hash = config_hash;
  key.vertices = 16;
  key.edges_a = 16;
  key.edges_b = 16;
  key.batch = batch;
  key.threads = threads;
  return key;
}

TEST(PlanExecutorTest, ReplayModeCapturesVerifiesThenReplays) {
  MiniStep step;
  PlanExecutor executor(PlanMode::kReplay);
  PlanKey key = TestKey();

  std::vector<double> losses;
  for (int i = 0; i < 6; ++i) losses.push_back(step.Run(&executor, key));

  PlanCounters counters = executor.counters();
  // Sight 1 captures, sight 2 captures + verifies, sights 3..6 replay.
  EXPECT_EQ(counters.captures, 2u);
  EXPECT_EQ(counters.verified, 1u);
  EXPECT_EQ(counters.replays, 4u);
  EXPECT_EQ(counters.divergences, 0u);
  EXPECT_EQ(executor.cache_size(), 1u);
  const StepPlan* plan = executor.CachedPlan(key);
  ASSERT_NE(plan, nullptr);
  EXPECT_GT(plan->tape_nodes, 0u);
  EXPECT_FALSE(plan->exec.empty());
  EXPECT_EQ(plan->slots.size(), plan->arena_slots + plan->escaping_slots);

  // The step is deterministic: every mode change left the numerics alone.
  for (size_t i = 1; i < losses.size(); ++i) EXPECT_EQ(losses[i], losses[0]);

  // Gradients accumulated once per run, identically each time.
  for (float g : step.w1.grad()) EXPECT_TRUE(std::isfinite(g));
}

TEST(PlanExecutorTest, RecordModeNeverArmsArena) {
  MiniStep step;
  PlanExecutor executor(PlanMode::kRecord);
  PlanKey key = TestKey();
  for (int i = 0; i < 5; ++i) step.Run(&executor, key);

  PlanCounters counters = executor.counters();
  // Record mode is a continuous verification backend: every step captures.
  EXPECT_EQ(counters.captures, 5u);
  EXPECT_GE(counters.verified, 1u);
  EXPECT_EQ(counters.replays, 0u);
  EXPECT_EQ(counters.divergences, 0u);
}

TEST(PlanExecutorTest, InvalidationMatrixForcesRecapture) {
  MiniStep step;
  PlanExecutor executor(PlanMode::kReplay);
  PlanKey key = TestKey();
  for (int i = 0; i < 3; ++i) step.Run(&executor, key);  // verified + replaying
  ASSERT_EQ(executor.counters().replays, 1u);

  // Shape change (batch), LR-schedule change (config_hash carries the LR
  // bits) and thread-count change each miss the cache and re-record.
  uint64_t captures_before = executor.counters().captures;
  step.Run(&executor, TestKey(1, /*batch=*/8, 1));
  step.Run(&executor, TestKey(/*config_hash=*/2, 16, 1));
  step.Run(&executor, TestKey(1, 16, /*threads=*/2));
  EXPECT_EQ(executor.counters().captures, captures_before + 3);
  EXPECT_EQ(executor.cache_size(), 4u);

  // A no-op rebuild — the original key again — reuses the verified plan
  // instead of re-recording.
  uint64_t replays_before = executor.counters().replays;
  step.Run(&executor, key);
  EXPECT_EQ(executor.counters().replays, replays_before + 1);
  EXPECT_EQ(executor.counters().captures, captures_before + 3);
}

TEST(PlanExecutorTest, OffModeIsInert) {
  MiniStep step;
  PlanExecutor executor(PlanMode::kOff);
  for (int i = 0; i < 3; ++i) step.Run(&executor, TestKey());
  PlanCounters counters = executor.counters();
  EXPECT_EQ(counters.captures, 0u);
  EXPECT_EQ(counters.replays, 0u);
  EXPECT_EQ(executor.cache_size(), 0u);
}

// ---------------------------------------------------------------------------
// Grad-path fusion bitwise identity (the executor turns fusion on for
// captured and replayed steps; the fused kernels must not perturb a single
// bit of the gradients).

TEST(GradFusionTest, FusedBackwardBitwiseMatchesUnfused) {
  auto run = [](bool fused) {
    Rng rng(5);
    Tensor w = Tensor::Randn({12, 12}, rng, 0.2f).RequiresGrad();
    Tensor x = Tensor::Randn({12, 12}, rng, 0.2f);
    tensor::GradFusionGuard guard(fused);
    Tensor loss = tensor::Mean(tensor::Square(tensor::LeakyRelu(tensor::MatMul(x, w))));
    EXPECT_EQ(loss.Backward(), Tensor::BackwardStatus::kOk);
    std::vector<float> out(w.grad().begin(), w.grad().end());
    out.push_back(loss.item());
    return out;
  };
  std::vector<float> unfused = run(false);
  std::vector<float> fused = run(true);
  ASSERT_EQ(unfused.size(), fused.size());
  for (size_t i = 0; i < unfused.size(); ++i) EXPECT_EQ(unfused[i], fused[i]) << i;
}

// ---------------------------------------------------------------------------
// End-to-end: SarnModel training with the plan engine is bitwise identical
// to the dynamic tape — losses, parameters and embeddings — and the replay
// path actually fires.

core::SarnConfig PlanTestConfig() {
  core::SarnConfig config;
  config.hidden_dim = 16;
  config.embedding_dim = 16;
  config.projection_dim = 8;
  config.gat_layers = 2;
  config.gat_heads = 2;
  config.feature_dim_per_feature = 4;
  config.max_epochs = 4;
  config.batch_size = 32;  // Many batches per epoch share one plan key.
  config.queue_budget = 400;
  return config;
}

class PlanTrainTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    roadnet::SyntheticCityConfig city;
    city.rows = 8;
    city.cols = 8;
    network_ = new roadnet::RoadNetwork(roadnet::GenerateSyntheticCity(city));
  }
  static void TearDownTestSuite() {
    delete network_;
    network_ = nullptr;
  }

  struct RunResult {
    std::vector<double> epoch_losses;
    std::vector<float> embeddings;
  };

  static RunResult TrainWith(std::optional<PlanMode> mode,
                             core::TrainOptions options = {}) {
    core::SarnModel model(*network_, PlanTestConfig());
    options.plan_mode = mode;
    core::TrainStats stats = model.Train(options);
    EXPECT_FALSE(stats.aborted) << stats.abort_reason;
    Tensor h = model.Embeddings();
    return RunResult{stats.epoch_losses,
                     std::vector<float>(h.data().begin(), h.data().end())};
  }

  static void ExpectBitwiseEqual(const RunResult& a, const RunResult& b) {
    ASSERT_EQ(a.epoch_losses.size(), b.epoch_losses.size());
    for (size_t i = 0; i < a.epoch_losses.size(); ++i) {
      EXPECT_EQ(a.epoch_losses[i], b.epoch_losses[i]) << "epoch " << i;
    }
    ASSERT_EQ(a.embeddings.size(), b.embeddings.size());
    for (size_t i = 0; i < a.embeddings.size(); ++i) {
      ASSERT_EQ(a.embeddings[i], b.embeddings[i]) << "element " << i;
    }
  }

  static uint64_t ReplayCount() {
    return obs::MetricsRegistry::Default().GetCounter("sarn.plan.replays").Value();
  }

  static roadnet::RoadNetwork* network_;
};

roadnet::RoadNetwork* PlanTrainTest::network_ = nullptr;

TEST_F(PlanTrainTest, ReplayBitwiseIdenticalToDynamicSingleThread) {
  RunResult dynamic = TrainWith(PlanMode::kOff);
  uint64_t replays_before = ReplayCount();
  RunResult replay = TrainWith(PlanMode::kReplay);
  ExpectBitwiseEqual(dynamic, replay);
  // The replay path must actually have fired, not silently fallen back.
  EXPECT_GT(ReplayCount(), replays_before);
}

TEST_F(PlanTrainTest, RecordBitwiseIdenticalToDynamic) {
  RunResult dynamic = TrainWith(PlanMode::kOff);
  RunResult record = TrainWith(PlanMode::kRecord);
  ExpectBitwiseEqual(dynamic, record);
}

TEST_F(PlanTrainTest, ReplayBitwiseIdenticalToDynamicFourThreads) {
  size_t previous = GetParallelThreads();
  SetParallelThreads(4);
  RunResult dynamic = TrainWith(PlanMode::kOff);
  uint64_t replays_before = ReplayCount();
  RunResult replay = TrainWith(PlanMode::kReplay);
  SetParallelThreads(previous);
  ExpectBitwiseEqual(dynamic, replay);
  EXPECT_GT(ReplayCount(), replays_before);
}

TEST_F(PlanTrainTest, ReplaySurvivesKillAndResumeBitwise) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "sarn_plan_resume_test";
  fs::remove_all(dir);

  RunResult uninterrupted = TrainWith(PlanMode::kReplay);

  core::TrainOptions killed;
  killed.checkpoint_dir = dir.string();
  killed.max_epochs = 2;  // Simulate a kill after epoch 2's checkpoint.
  TrainWith(PlanMode::kReplay, killed);

  core::TrainOptions resumed;
  resumed.checkpoint_dir = dir.string();
  RunResult after_resume = TrainWith(PlanMode::kReplay, resumed);

  ExpectBitwiseEqual(uninterrupted, after_resume);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace sarn::plan
