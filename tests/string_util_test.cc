#include "common/string_util.h"

#include <gtest/gtest.h>

namespace sarn {
namespace {

TEST(StringUtilTest, SplitBasic) {
  auto parts = Split("a:b:c", ':');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = Split("::", ':');
  ASSERT_EQ(parts.size(), 3u);
  for (const auto& p : parts) EXPECT_TRUE(p.empty());
}

TEST(StringUtilTest, TrimWhitespace) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringUtilTest, ParseDoubleValid) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.5").value(), 3.5);
  EXPECT_DOUBLE_EQ(ParseDouble(" -2e3 ").value(), -2000.0);
  EXPECT_DOUBLE_EQ(ParseDouble("0").value(), 0.0);
}

TEST(StringUtilTest, ParseDoubleInvalid) {
  EXPECT_FALSE(ParseDouble("").has_value());
  EXPECT_FALSE(ParseDouble("abc").has_value());
  EXPECT_FALSE(ParseDouble("1.5x").has_value());
}

TEST(StringUtilTest, ParseIntValid) {
  EXPECT_EQ(ParseInt("42").value(), 42);
  EXPECT_EQ(ParseInt("-7").value(), -7);
}

TEST(StringUtilTest, ParseIntInvalid) {
  EXPECT_FALSE(ParseInt("4.5").has_value());
  EXPECT_FALSE(ParseInt("").has_value());
  EXPECT_FALSE(ParseInt("12ab").has_value());
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("motorway_link", "motorway"));
  EXPECT_FALSE(StartsWith("way", "motorway"));
  EXPECT_TRUE(StartsWith("abc", ""));
}

}  // namespace
}  // namespace sarn
