#include "nn/gru.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nn/linear.h"
#include "nn/losses.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"

namespace sarn::nn {
namespace {

using tensor::Tensor;

TEST(GruCellTest, OutputShape) {
  Rng rng(1);
  GruCell cell(4, 8, rng);
  Tensor h = cell.Forward(Tensor::Randn({3, 4}, rng), cell.InitialState(3));
  EXPECT_EQ(h.shape(), (tensor::Shape{3, 8}));
}

TEST(GruCellTest, ZeroInputZeroStateStaysBounded) {
  Rng rng(2);
  GruCell cell(4, 8, rng);
  Tensor h = cell.InitialState(2);
  for (int t = 0; t < 50; ++t) h = cell.Forward(Tensor::Zeros({2, 4}), h);
  for (float v : h.data()) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_LE(std::fabs(v), 1.0f);  // GRU state is a convex mix of tanh outputs.
  }
}

TEST(GruCellTest, ParameterCount) {
  Rng rng(3);
  GruCell cell(4, 8, rng);
  EXPECT_EQ(cell.Parameters().size(), 9u);
  EXPECT_EQ(cell.NumParameters(), 3 * (4 * 8 + 8 * 8 + 8));
}

TEST(GruTest, MultiLayerShapes) {
  Rng rng(4);
  Gru gru(4, 8, /*num_layers=*/2, rng);
  std::vector<Tensor> steps;
  for (int t = 0; t < 5; ++t) steps.push_back(Tensor::Randn({3, 4}, rng));
  Tensor h = gru.Forward(steps);
  EXPECT_EQ(h.shape(), (tensor::Shape{3, 8}));
  EXPECT_EQ(gru.ForwardAllSteps(steps).size(), 5u);
}

TEST(GruTest, StateDependsOnSequenceOrder) {
  Rng rng(5);
  Gru gru(2, 6, 1, rng);
  Tensor a = Tensor::FromVector({1, 2}, {1.0f, 0.0f});
  Tensor b = Tensor::FromVector({1, 2}, {0.0f, 1.0f});
  Tensor h_ab = gru.Forward({a, b});
  Tensor h_ba = gru.Forward({b, a});
  float diff = 0.0f;
  for (int64_t j = 0; j < 6; ++j) diff += std::fabs(h_ab.at(0, j) - h_ba.at(0, j));
  EXPECT_GT(diff, 1e-4f);
}

TEST(GruTest, LearnsToDetectSymbolAnywhereInSequence) {
  // Class 1 iff the "marker" input appears at any timestep; requires memory.
  Rng rng(6);
  Gru gru(2, 12, 1, rng);
  Linear head(12, 2, rng);
  std::vector<Tensor> params = gru.Parameters();
  for (const Tensor& p : head.Parameters()) params.push_back(p);
  tensor::Adam opt(params, 0.02f);

  auto make_batch = [&rng](std::vector<std::vector<Tensor>>& sequences,
                           std::vector<int64_t>& labels) {
    sequences.clear();
    labels.clear();
    for (int s = 0; s < 8; ++s) {
      bool has_marker = rng.Bernoulli(0.5);
      int marker_pos = static_cast<int>(rng.UniformInt(0, 5));
      std::vector<Tensor> steps;
      for (int t = 0; t < 6; ++t) {
        bool marker_here = has_marker && t == marker_pos;
        steps.push_back(
            Tensor::FromVector({1, 2}, {marker_here ? 1.0f : 0.0f, 0.3f}));
      }
      sequences.push_back(std::move(steps));
      labels.push_back(has_marker ? 1 : 0);
    }
  };

  std::vector<std::vector<Tensor>> sequences;
  std::vector<int64_t> labels;
  for (int iter = 0; iter < 300; ++iter) {
    make_batch(sequences, labels);
    opt.ZeroGrad();
    std::vector<Tensor> logits_rows;
    for (const auto& steps : sequences) {
      logits_rows.push_back(head.Forward(gru.Forward(steps)));
    }
    Tensor loss = CrossEntropyWithLogits(tensor::Concat(logits_rows, 0), labels);
    loss.Backward();
    opt.Step();
  }

  // Evaluate on fresh samples.
  int correct = 0, total = 0;
  tensor::NoGradGuard guard;
  for (int trial = 0; trial < 10; ++trial) {
    make_batch(sequences, labels);
    for (size_t s = 0; s < sequences.size(); ++s) {
      Tensor logits = head.Forward(gru.Forward(sequences[s]));
      int64_t pred = logits.at(0, 0) > logits.at(0, 1) ? 0 : 1;
      correct += pred == labels[s] ? 1 : 0;
      ++total;
    }
  }
  EXPECT_GE(correct, total * 9 / 10);
}

}  // namespace
}  // namespace sarn::nn
