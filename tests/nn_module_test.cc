#include "nn/module.h"

#include <gtest/gtest.h>

#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/projection_head.h"
#include "tensor/ops.h"

namespace sarn::nn {
namespace {

using tensor::Tensor;

TEST(ModuleTest, CopyWeightsFromMakesOutputsEqual) {
  Rng rng(1);
  Linear a(4, 3, rng);
  Linear b(4, 3, rng);  // Different init.
  Tensor x = Tensor::Randn({2, 4}, rng);
  b.CopyWeightsFrom(a);
  Tensor ya = a.Forward(x);
  Tensor yb = b.Forward(x);
  for (int64_t i = 0; i < ya.numel(); ++i) {
    EXPECT_FLOAT_EQ(ya.data()[static_cast<size_t>(i)], yb.data()[static_cast<size_t>(i)]);
  }
}

TEST(ModuleTest, MomentumUpdateInterpolates) {
  Rng rng(2);
  Tensor target = Tensor::Full({2}, 1.0f).RequiresGrad();
  Tensor source = Tensor::Full({2}, 2.0f).RequiresGrad();
  MomentumUpdate({target}, {source}, 0.9f);
  EXPECT_NEAR(target.at(0), 0.9f * 1.0f + 0.1f * 2.0f, 1e-6f);
}

TEST(ModuleTest, MomentumOneFreezesTarget) {
  Tensor target = Tensor::Full({2}, 1.0f).RequiresGrad();
  Tensor source = Tensor::Full({2}, 5.0f).RequiresGrad();
  MomentumUpdate({target}, {source}, 1.0f);
  EXPECT_FLOAT_EQ(target.at(0), 1.0f);
}

TEST(ModuleTest, MomentumZeroCopiesSource) {
  Tensor target = Tensor::Full({2}, 1.0f).RequiresGrad();
  Tensor source = Tensor::Full({2}, 5.0f).RequiresGrad();
  MomentumUpdate({target}, {source}, 0.0f);
  EXPECT_FLOAT_EQ(target.at(0), 5.0f);
}

TEST(ModuleTest, RepeatedMomentumConvergesToSource) {
  Tensor target = Tensor::Full({1}, 0.0f).RequiresGrad();
  Tensor source = Tensor::Full({1}, 1.0f).RequiresGrad();
  for (int i = 0; i < 200; ++i) MomentumUpdate({target}, {source}, 0.95f);
  EXPECT_NEAR(target.at(0), 1.0f, 1e-3f);
}

TEST(EmbeddingTest, LookupMatchesTableRows) {
  Rng rng(3);
  Embedding emb(10, 4, rng);
  Tensor out = emb.Forward({7, 0, 7});
  EXPECT_EQ(out.shape(), (tensor::Shape{3, 4}));
  for (int64_t j = 0; j < 4; ++j) {
    EXPECT_FLOAT_EQ(out.at(0, j), emb.table().at(7, j));
    EXPECT_FLOAT_EQ(out.at(1, j), emb.table().at(0, j));
    EXPECT_FLOAT_EQ(out.at(0, j), out.at(2, j));
  }
}

TEST(EmbeddingTest, GradientFlowsOnlyToLookedUpRows) {
  Rng rng(4);
  Embedding emb(5, 3, rng);
  tensor::Sum(emb.Forward({1, 3})).Backward();
  const tensor::Storage& g = emb.table().grad();
  for (int64_t row = 0; row < 5; ++row) {
    float norm = 0;
    for (int64_t j = 0; j < 3; ++j) norm += std::fabs(g[static_cast<size_t>(row * 3 + j)]);
    if (row == 1 || row == 3) {
      EXPECT_GT(norm, 0.0f) << row;
    } else {
      EXPECT_EQ(norm, 0.0f) << row;
    }
  }
}

TEST(FeatureEmbeddingTest, ConcatenatesPerFeatureEmbeddings) {
  Rng rng(5);
  FeatureEmbedding fe({4, 6, 8}, {2, 3, 4}, rng);
  EXPECT_EQ(fe.output_dim(), 9);
  EXPECT_EQ(fe.num_features(), 3u);
  Tensor out = fe.Forward({{0, 1}, {2, 3}, {4, 5}});
  EXPECT_EQ(out.shape(), (tensor::Shape{2, 9}));
}

TEST(FeatureEmbeddingTest, SameIdsSameOutput) {
  Rng rng(6);
  FeatureEmbedding fe({4, 4}, {3, 3}, rng);
  Tensor a = fe.Forward({{1}, {2}});
  Tensor b = fe.Forward({{1}, {2}});
  for (int64_t j = 0; j < 6; ++j) EXPECT_FLOAT_EQ(a.at(0, j), b.at(0, j));
}

TEST(FeatureEmbeddingDeathTest, MismatchedFeatureCount) {
  Rng rng(7);
  FeatureEmbedding fe({4, 4}, {3, 3}, rng);
  EXPECT_DEATH(fe.Forward({{1}}), "");
}

TEST(ProjectionHeadTest, ShapeAndParams) {
  Rng rng(8);
  ProjectionHead head(16, 16, 8, rng);
  EXPECT_EQ(head.out_dim(), 8);
  Tensor z = head.Forward(Tensor::Randn({3, 16}, rng));
  EXPECT_EQ(z.shape(), (tensor::Shape{3, 8}));
  EXPECT_EQ(head.Parameters().size(), 4u);
}

TEST(ModuleTest, NumParametersSumsAll) {
  Rng rng(9);
  ProjectionHead head(4, 6, 2, rng);
  EXPECT_EQ(head.NumParameters(), 4 * 6 + 6 + 6 * 2 + 2);
}

}  // namespace
}  // namespace sarn::nn
