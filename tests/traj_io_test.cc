#include "traj/io.h"

#include "common/csv.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "roadnet/synthetic_city.h"
#include "traj/map_matching.h"
#include "traj/trajectory_generator.h"

namespace sarn::traj {
namespace {

TEST(TrajIoTest, GpsRoundTrip) {
  roadnet::SyntheticCityConfig city;
  city.rows = 8;
  city.cols = 8;
  roadnet::RoadNetwork network = roadnet::GenerateSyntheticCity(city);
  TrajectoryGeneratorConfig config;
  config.min_route_segments = 5;
  TrajectoryGenerator generator(network, config);
  std::vector<Trajectory> original;
  for (const GeneratedTrajectory& trip : generator.Generate(8)) {
    original.push_back(trip.gps);
  }

  std::string path = testing::TempDir() + "/sarn_traj_io.csv";
  ASSERT_TRUE(SaveTrajectoriesCsv(original, path));
  auto loaded = LoadTrajectoriesCsv(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), original.size());
  for (size_t t = 0; t < original.size(); ++t) {
    ASSERT_EQ((*loaded)[t].size(), original[t].size());
    for (size_t p = 0; p < original[t].points.size(); ++p) {
      EXPECT_NEAR((*loaded)[t].points[p].position.lat,
                  original[t].points[p].position.lat, 1e-6);
      EXPECT_NEAR((*loaded)[t].points[p].timestamp_s, original[t].points[p].timestamp_s,
                  1e-3);
    }
  }
  std::remove(path.c_str());
}

TEST(TrajIoTest, MatchedRoundTrip) {
  std::vector<MatchedTrajectory> matched(3);
  matched[0].segments = {5, 6, 7};
  matched[1].segments = {1};
  matched[2].segments = {9, 3, 9, 2};
  std::string path = testing::TempDir() + "/sarn_matched_io.csv";
  ASSERT_TRUE(SaveMatchedCsv(matched, path));
  auto loaded = LoadMatchedCsv(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), 3u);
  for (size_t t = 0; t < matched.size(); ++t) {
    EXPECT_EQ((*loaded)[t].segments, matched[t].segments);
  }
  std::remove(path.c_str());
}

TEST(TrajIoTest, LoadRejectsMalformed) {
  std::string path = testing::TempDir() + "/sarn_bad_traj.csv";
  {
    CsvTable table;
    table.header = {"trajectory_id", "timestamp_s", "lat", "lng"};
    table.rows = {{"0", "notanumber", "1", "2"}};
    WriteCsvFile(path, table);
  }
  EXPECT_FALSE(LoadTrajectoriesCsv(path).has_value());
  std::remove(path.c_str());
  EXPECT_FALSE(LoadTrajectoriesCsv("/nonexistent.csv").has_value());
  EXPECT_FALSE(LoadMatchedCsv("/nonexistent.csv").has_value());
}

TEST(TrajIoTest, MatchedRejectsOutOfOrderPositions) {
  std::string path = testing::TempDir() + "/sarn_bad_matched.csv";
  {
    CsvTable table;
    table.header = {"trajectory_id", "position", "segment_id"};
    table.rows = {{"0", "1", "5"}};  // Position 0 missing.
    WriteCsvFile(path, table);
  }
  EXPECT_FALSE(LoadMatchedCsv(path).has_value());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sarn::traj
