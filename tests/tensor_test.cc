#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include "tensor/ops.h"

namespace sarn::tensor {
namespace {

TEST(TensorTest, ZerosShapeAndValues) {
  Tensor t = Tensor::Zeros({2, 3});
  EXPECT_EQ(t.rank(), 2);
  EXPECT_EQ(t.numel(), 6);
  for (float v : t.data()) EXPECT_EQ(v, 0.0f);
}

TEST(TensorTest, FullAndOnes) {
  Tensor t = Tensor::Full({4}, 2.5f);
  for (float v : t.data()) EXPECT_EQ(v, 2.5f);
  Tensor ones = Tensor::Ones({2, 2});
  for (float v : ones.data()) EXPECT_EQ(v, 1.0f);
}

TEST(TensorTest, FromVectorAndAccessors) {
  Tensor t = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(0, 1), 2.0f);
  EXPECT_EQ(t.at(1, 0), 3.0f);
  EXPECT_EQ(t.at(1, 1), 4.0f);
  t.set(1, 1, 9.0f);
  EXPECT_EQ(t.at(1, 1), 9.0f);
}

TEST(TensorDeathTest, FromVectorShapeMismatch) {
  EXPECT_DEATH({ Tensor::FromVector({2, 2}, {1, 2, 3}); }, "shape");
}

TEST(TensorTest, CopiesShareStorage) {
  Tensor a = Tensor::Zeros({3});
  Tensor b = a;
  b.set(0, 5.0f);
  EXPECT_EQ(a.at(0), 5.0f);
}

TEST(TensorTest, DetachProducesIndependentCopy) {
  Tensor a = Tensor::Ones({3});
  a.RequiresGrad();
  Tensor d = a.Detach();
  EXPECT_FALSE(d.requires_grad());
  d.set(0, 7.0f);
  EXPECT_EQ(a.at(0), 1.0f);
}

TEST(TensorTest, RandnIsDeterministicGivenSeed) {
  Rng rng1(3), rng2(3);
  Tensor a = Tensor::Randn({10}, rng1);
  Tensor b = Tensor::Randn({10}, rng2);
  EXPECT_EQ(a.data(), b.data());
}

TEST(TensorTest, GlorotUniformWithinLimit) {
  Rng rng(4);
  Tensor w = Tensor::GlorotUniform(100, 100, rng);
  float limit = std::sqrt(6.0f / 200.0f);
  for (float v : w.data()) {
    EXPECT_GE(v, -limit);
    EXPECT_LE(v, limit);
  }
}

TEST(TensorTest, BackwardOnSimpleChain) {
  Tensor x = Tensor::FromVector({2}, {3.0f, -1.0f});
  x.RequiresGrad();
  Tensor y = Sum(Square(x));  // y = x0^2 + x1^2
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 6.0f);
  EXPECT_FLOAT_EQ(x.grad()[1], -2.0f);
}

TEST(TensorTest, BackwardAccumulatesOverFanOut) {
  Tensor x = Tensor::FromVector({1}, {2.0f});
  x.RequiresGrad();
  Tensor y = Add(Mul(x, x), x);  // y = x^2 + x -> dy/dx = 2x + 1 = 5
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 5.0f);
}

TEST(TensorTest, ZeroGradClears) {
  Tensor x = Tensor::FromVector({1}, {2.0f});
  x.RequiresGrad();
  Sum(Square(x)).Backward();
  EXPECT_NE(x.grad()[0], 0.0f);
  x.ZeroGrad();
  EXPECT_EQ(x.grad()[0], 0.0f);
}

TEST(TensorTest, NoGradGuardSuppressesTape) {
  Tensor x = Tensor::FromVector({1}, {2.0f});
  x.RequiresGrad();
  NoGradGuard guard;
  Tensor y = Square(x);
  EXPECT_FALSE(y.requires_grad());
}

TEST(TensorTest, NoGradGuardRestores) {
  Tensor x = Tensor::FromVector({1}, {2.0f});
  x.RequiresGrad();
  {
    NoGradGuard guard;
    EXPECT_FALSE(GradModeEnabled());
  }
  EXPECT_TRUE(GradModeEnabled());
  Tensor y = Square(x);
  EXPECT_TRUE(y.requires_grad());
}

TEST(TensorTest, BackwardWithExplicitSeed) {
  Tensor x = Tensor::FromVector({2}, {1.0f, 2.0f});
  x.RequiresGrad();
  Tensor y = Square(x);  // Non-scalar output.
  y.Backward({1.0f, 10.0f});
  EXPECT_FLOAT_EQ(x.grad()[0], 2.0f);
  EXPECT_FLOAT_EQ(x.grad()[1], 40.0f);
}

TEST(TensorTest, BackwardOnNonScalarWithoutSeedReturnsTypedError) {
  Tensor x = Tensor::FromVector({2}, {1.0f, 2.0f});
  x.RequiresGrad();
  Tensor y = Square(x);
  EXPECT_EQ(y.Backward(), Tensor::BackwardStatus::kNotScalar);
  // Rejected before any gradient was touched: the tape is still intact, so a
  // correctly seeded call still runs.
  EXPECT_EQ(y.Backward({1.0f, 1.0f}), Tensor::BackwardStatus::kOk);
  EXPECT_FLOAT_EQ(x.grad()[0], 2.0f);
  EXPECT_FLOAT_EQ(x.grad()[1], 4.0f);
}

TEST(TensorTest, BackwardRejectsMismatchedSeedWithTypedError) {
  Tensor x = Tensor::FromVector({2}, {3.0f, 4.0f});
  x.RequiresGrad();
  Tensor y = Square(x);
  EXPECT_EQ(y.Backward({1.0f}), Tensor::BackwardStatus::kSeedSizeMismatch);
  EXPECT_EQ(y.Backward({1.0f, 1.0f, 1.0f}), Tensor::BackwardStatus::kSeedSizeMismatch);
  // The rejection left grads untouched and the tape alive.
  EXPECT_EQ(y.Backward({1.0f, 1.0f}), Tensor::BackwardStatus::kOk);
  EXPECT_FLOAT_EQ(x.grad()[0], 6.0f);
  EXPECT_FLOAT_EQ(x.grad()[1], 8.0f);
  EXPECT_EQ(Tensor().Backward(), Tensor::BackwardStatus::kUndefinedTensor);
  EXPECT_STREQ(BackwardStatusName(Tensor::BackwardStatus::kSeedSizeMismatch),
               "seed_size_mismatch");
}

TEST(TensorTest, DeepChainBackwardDoesNotOverflowStack) {
  // 20k-node chain; the iterative DFS must handle it.
  Tensor x = Tensor::FromVector({1}, {1.0f});
  x.RequiresGrad();
  Tensor y = x;
  for (int i = 0; i < 20000; ++i) y = AddScalar(y, 0.0f);
  Sum(y).Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 1.0f);
}

TEST(TensorTest, ShapeToStringFormat) {
  EXPECT_EQ(ShapeToString({2, 3}), "[2, 3]");
  EXPECT_EQ(ShapeToString({}), "[]");
}

TEST(TensorTest, NumElementsOfScalarShape) { EXPECT_EQ(NumElements({}), 1); }

}  // namespace
}  // namespace sarn::tensor
