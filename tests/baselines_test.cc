#include <cmath>
#include <filesystem>

#include <gtest/gtest.h>

#include "baselines/gca.h"
#include "baselines/graphcl.h"
#include "baselines/hrnr_lite.h"
#include "baselines/neutraj_lite.h"
#include "baselines/node2vec.h"
#include "baselines/rne_lite.h"
#include "baselines/srn2vec.h"
#include "geo/point.h"
#include "graph/dijkstra.h"
#include "nn/losses.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"
#include "roadnet/synthetic_city.h"

namespace sarn::baselines {
namespace {

using tensor::Tensor;

class BaselinesTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    roadnet::SyntheticCityConfig city;
    city.rows = 10;
    city.cols = 10;
    network_ = new roadnet::RoadNetwork(roadnet::GenerateSyntheticCity(city));
  }
  static void TearDownTestSuite() {
    delete network_;
    network_ = nullptr;
  }

  static void ExpectFiniteEmbeddings(const Tensor& e, int64_t expected_dim) {
    ASSERT_TRUE(e.defined());
    EXPECT_EQ(e.shape()[0], network_->num_segments());
    EXPECT_EQ(e.shape()[1], expected_dim);
    for (float v : e.data()) ASSERT_TRUE(std::isfinite(v));
  }

  static roadnet::RoadNetwork* network_;
};

roadnet::RoadNetwork* BaselinesTest::network_ = nullptr;

TEST_F(BaselinesTest, Node2VecProducesTopologyAwareEmbeddings) {
  Node2VecConfig config;
  config.dim = 32;
  config.walk.walk_length = 20;
  config.walk.walks_per_vertex = 4;
  config.epochs = 1;
  Tensor e = TrainNode2Vec(*network_, config);
  ExpectFiniteEmbeddings(e, 32);

  // Topologically adjacent segments should be more similar than random ones.
  Tensor normalized = tensor::RowL2Normalize(e);
  auto cosine = [&](int64_t a, int64_t b) {
    double dot = 0;
    for (int64_t j = 0; j < 32; ++j) dot += normalized.at(a, j) * normalized.at(b, j);
    return dot;
  };
  double adjacent = 0;
  int count = 0;
  for (const roadnet::TopoEdge& edge : network_->topo_edges()) {
    adjacent += cosine(edge.from, edge.to);
    if (++count >= 300) break;
  }
  Rng rng(1);
  double random = 0;
  for (int i = 0; i < 300; ++i) {
    random += cosine(rng.UniformInt(0, network_->num_segments() - 1),
                     rng.UniformInt(0, network_->num_segments() - 1));
  }
  EXPECT_GT(adjacent / count, random / 300 + 0.1);
}

TEST_F(BaselinesTest, DeepWalkIsUniformNode2Vec) {
  Node2VecConfig config;
  config.dim = 16;
  config.walk.walk_length = 15;
  config.walk.walks_per_vertex = 2;
  config.walk.p = 4.0;  // Ignored by DeepWalk.
  config.walk.q = 0.25;
  config.epochs = 1;
  tensor::Tensor deepwalk = TrainDeepWalk(*network_, config);
  EXPECT_EQ(deepwalk.shape()[0], network_->num_segments());
  // DeepWalk must equal node2vec at p = q = 1 with the same seed.
  Node2VecConfig uniform = config;
  uniform.walk.p = 1.0;
  uniform.walk.q = 1.0;
  tensor::Tensor reference = TrainNode2Vec(*network_, uniform);
  for (int64_t i = 0; i < 64; ++i) {
    ASSERT_FLOAT_EQ(deepwalk.data()[static_cast<size_t>(i)],
                    reference.data()[static_cast<size_t>(i)]);
  }
}

TEST_F(BaselinesTest, GraphClFeatureMaskingStillLearns) {
  GraphClConfig config;
  config.hidden_dim = 16;
  config.embedding_dim = 16;
  config.projection_dim = 8;
  config.feature_dim_per_feature = 4;
  config.gat_heads = 2;
  config.max_epochs = 4;
  config.feature_mask_rate = 0.3;  // Aggressive masking must not break training.
  GraphClResult result = TrainGraphCl(*network_, config);
  ASSERT_TRUE(result.embeddings.defined());
  for (float v : result.embeddings.data()) ASSERT_TRUE(std::isfinite(v));
}

TEST_F(BaselinesTest, GraphClTrainsAndReducesLoss) {
  GraphClConfig config;
  config.hidden_dim = 16;
  config.embedding_dim = 16;
  config.projection_dim = 8;
  config.feature_dim_per_feature = 4;
  config.gat_heads = 2;
  config.max_epochs = 6;
  GraphClResult first_epoch;
  {
    GraphClConfig one = config;
    one.max_epochs = 1;
    first_epoch = TrainGraphCl(*network_, one);
  }
  GraphClResult result = TrainGraphCl(*network_, config);
  ExpectFiniteEmbeddings(result.embeddings, 16);
  EXPECT_EQ(result.epochs_run, 6);
  EXPECT_LT(result.final_loss, first_epoch.final_loss);
}

TEST_F(BaselinesTest, GraphClResumeIsBitwiseIdenticalToStraightRun) {
  GraphClConfig config;
  config.hidden_dim = 16;
  config.embedding_dim = 16;
  config.projection_dim = 8;
  config.feature_dim_per_feature = 4;
  config.gat_heads = 2;
  config.max_epochs = 4;

  // Uninterrupted reference run.
  GraphClResult straight = TrainGraphCl(*network_, config);
  ASSERT_EQ(straight.epochs_run, 4);

  // Interrupted: 2 epochs with checkpointing, then resume in a fresh call.
  std::string dir = testing::TempDir() + "/graphcl_resume";
  std::filesystem::remove_all(dir);
  GraphClConfig phase1 = config;
  phase1.checkpoint_dir = dir;
  phase1.stop_after_epochs = 2;
  GraphClResult partial = TrainGraphCl(*network_, phase1);
  ASSERT_EQ(partial.epochs_run, 2);

  GraphClConfig phase2 = config;
  phase2.checkpoint_dir = dir;
  GraphClResult resumed = TrainGraphCl(*network_, phase2);
  EXPECT_EQ(resumed.resumed_from_epoch, 2);
  EXPECT_EQ(resumed.epochs_run, 4);

  // Bitwise: loss and every embedding value identical to the straight run.
  ASSERT_EQ(resumed.final_loss, straight.final_loss);
  ASSERT_EQ(resumed.embeddings.shape(), straight.embeddings.shape());
  ASSERT_EQ(resumed.embeddings.data(), straight.embeddings.data());
  std::filesystem::remove_all(dir);
}

TEST_F(BaselinesTest, GcaTrainsWhenWithinBudget) {
  GcaConfig config;
  config.hidden_dim = 16;
  config.embedding_dim = 16;
  config.projection_dim = 8;
  config.feature_dim_per_feature = 4;
  config.gat_heads = 2;
  config.max_epochs = 3;
  GcaResult result = TrainGca(*network_, config);
  ASSERT_FALSE(result.out_of_memory);
  ExpectFiniteEmbeddings(result.embeddings, 16);
  EXPECT_TRUE(std::isfinite(result.final_loss));
}

TEST_F(BaselinesTest, GcaMemoryGuardFires) {
  GcaConfig config;
  config.memory_budget_bytes = 1024;  // Absurdly small: must trip.
  GcaResult result = TrainGca(*network_, config);
  EXPECT_TRUE(result.out_of_memory);
  EXPECT_FALSE(result.embeddings.defined());
}

TEST_F(BaselinesTest, Srn2VecEncodesSpatialProximity) {
  Srn2VecConfig config;
  config.dim = 32;
  config.max_epochs = 6;
  config.pairs_per_epoch = 4096;
  Srn2VecResult result = TrainSrn2Vec(*network_, config);
  ExpectFiniteEmbeddings(result.embeddings, 32);

  Tensor normalized = tensor::RowL2Normalize(result.embeddings);
  auto cosine = [&](int64_t a, int64_t b) {
    double dot = 0;
    for (int64_t j = 0; j < 32; ++j) dot += normalized.at(a, j) * normalized.at(b, j);
    return dot;
  };
  Rng rng(2);
  double near_sum = 0, far_sum = 0;
  int near_count = 0, far_count = 0;
  while (near_count < 200 || far_count < 200) {
    int64_t a = rng.UniformInt(0, network_->num_segments() - 1);
    int64_t b = rng.UniformInt(0, network_->num_segments() - 1);
    if (a == b) continue;
    double dist = geo::HaversineMeters(network_->segment(a).Midpoint(),
                                       network_->segment(b).Midpoint());
    if (dist < 250.0 && near_count < 200) {
      near_sum += cosine(a, b);
      ++near_count;
    } else if (dist > 800.0 && far_count < 200) {
      far_sum += cosine(a, b);
      ++far_count;
    }
  }
  EXPECT_GT(near_sum / near_count, far_sum / far_count + 0.05);
}

TEST_F(BaselinesTest, RneLiteEmbeddingDistanceTracksNetworkDistance) {
  RneLiteConfig config;
  config.dim = 32;
  config.max_epochs = 10;
  RneLiteResult result = TrainRneLite(*network_, config);
  ExpectFiniteEmbeddings(result.embeddings, 32);

  // Check rank correlation on fresh pairs: L1 embedding distance should
  // order pairs roughly like shortest-path distance.
  graph::CsrGraph routing = network_->ToLengthWeightedGraph();
  graph::ShortestPathTree tree = Dijkstra(routing, 0);
  auto l1 = [&](int64_t a, int64_t b) {
    double total = 0;
    for (int64_t j = 0; j < 32; ++j) {
      total += std::fabs(result.embeddings.at(a, j) - result.embeddings.at(b, j));
    }
    return total;
  };
  // Compare near (< 400 m) vs far (> 1.2 km) targets from vertex 0 (the
  // test city is only ~1 km wide).
  double near_l1 = 0, far_l1 = 0;
  int near_count = 0, far_count = 0;
  for (int64_t v = 1; v < network_->num_segments(); ++v) {
    double d = tree.distance[static_cast<size_t>(v)];
    if (d == graph::kInfiniteDistance) continue;
    if (d < 400.0 && near_count < 150) {
      near_l1 += l1(0, v);
      ++near_count;
    } else if (d > 1200.0 && far_count < 150) {
      far_l1 += l1(0, v);
      ++far_count;
    }
  }
  ASSERT_GT(near_count, 10);
  ASSERT_GT(far_count, 10);
  EXPECT_LT(near_l1 / near_count, far_l1 / far_count);
}

TEST_F(BaselinesTest, HrnrLiteForwardAndSupervisedTraining) {
  HrnrLiteConfig config;
  config.hidden_dim = 16;
  config.embedding_dim = 16;
  config.gat_heads = 2;
  config.feature_dim_per_feature = 4;
  HrnrLite model(*network_, config);
  ASSERT_FALSE(model.out_of_memory());
  Tensor h = model.Forward();
  ExpectFiniteEmbeddings(h, 16);

  // End-to-end supervised training on a toy signal (predict road type)
  // must reduce the loss.
  std::vector<int64_t> labels;
  for (const roadnet::RoadSegment& s : network_->segments()) {
    labels.push_back(static_cast<int64_t>(s.type));
  }
  Rng rng(3);
  nn::Linear head(16, roadnet::kNumHighwayTypes, rng);
  std::vector<Tensor> params = model.Parameters();
  for (const Tensor& p : head.Parameters()) params.push_back(p);
  tensor::Adam optimizer(params, 0.01f);
  double first = 0, last = 0;
  for (int step = 0; step < 12; ++step) {
    optimizer.ZeroGrad();
    Tensor loss = nn::CrossEntropyWithLogits(head.Forward(model.Forward()), labels);
    if (step == 0) first = loss.item();
    last = loss.item();
    loss.Backward();
    optimizer.Step();
  }
  EXPECT_LT(last, first);
}

TEST_F(BaselinesTest, HrnrLiteMemoryGuardFires) {
  HrnrLiteConfig config;
  config.memory_budget_bytes = 1024;
  HrnrLite model(*network_, config);
  EXPECT_TRUE(model.out_of_memory());
}

TEST_F(BaselinesTest, NeutrajLiteLearnsDistanceRanking) {
  // Synthetic trajectories: three spatial groups of similar sequences.
  // Within-group distances are small; across-group large.
  std::vector<std::vector<int64_t>> trajectories;
  Rng rng(4);
  auto make_group = [&](int64_t base) {
    for (int t = 0; t < 8; ++t) {
      std::vector<int64_t> seq;
      for (int64_t s = 0; s < 12; ++s) {
        seq.push_back((base + s + rng.UniformInt(0, 1)) % network_->num_segments());
      }
      trajectories.push_back(seq);
    }
  };
  make_group(0);
  make_group(200);
  make_group(400);
  auto group_of = [](size_t i) { return i / 8; };
  auto distance = [&](size_t a, size_t b) {
    return group_of(a) == group_of(b) ? 300.0 : 5000.0;
  };

  NeutrajLiteConfig config;
  config.max_epochs = 5;
  config.pairs_per_epoch = 256;
  NeutrajLite model(network_->num_segments(), config);
  model.Train(trajectories, distance);

  Tensor embedded = model.Embed(trajectories);
  EXPECT_EQ(embedded.shape()[0], static_cast<int64_t>(trajectories.size()));
  auto l1 = [&](size_t a, size_t b) {
    double total = 0;
    for (int64_t j = 0; j < embedded.shape()[1]; ++j) {
      total += std::fabs(embedded.at(static_cast<int64_t>(a), j) -
                         embedded.at(static_cast<int64_t>(b), j));
    }
    return total;
  };
  double within = 0, across = 0;
  int within_count = 0, across_count = 0;
  for (size_t a = 0; a < trajectories.size(); ++a) {
    for (size_t b = a + 1; b < trajectories.size(); ++b) {
      if (group_of(a) == group_of(b)) {
        within += l1(a, b);
        ++within_count;
      } else {
        across += l1(a, b);
        ++across_count;
      }
    }
  }
  EXPECT_LT(within / within_count, across / across_count);
}

}  // namespace
}  // namespace sarn::baselines
