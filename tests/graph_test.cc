#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/csr_graph.h"
#include "graph/dijkstra.h"
#include "graph/random_walk.h"

namespace sarn::graph {
namespace {

CsrGraph DiamondGraph() {
  // 0 -> 1 (1), 0 -> 2 (4), 1 -> 2 (1), 1 -> 3 (5), 2 -> 3 (1)
  return CsrGraph(4, {{0, 1, 1.0}, {0, 2, 4.0}, {1, 2, 1.0}, {1, 3, 5.0}, {2, 3, 1.0}});
}

TEST(CsrGraphTest, DegreesAndNeighbors) {
  CsrGraph g = DiamondGraph();
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.num_edges(), 5);
  EXPECT_EQ(g.OutDegree(0), 2);
  EXPECT_EQ(g.OutDegree(3), 0);
  std::set<VertexId> n0(g.OutNeighbors(0).begin(), g.OutNeighbors(0).end());
  EXPECT_EQ(n0, (std::set<VertexId>{1, 2}));
}

TEST(CsrGraphTest, WeightsAlignWithNeighbors) {
  CsrGraph g = DiamondGraph();
  auto neighbors = g.OutNeighbors(0);
  auto weights = g.OutWeights(0);
  ASSERT_EQ(neighbors.size(), weights.size());
  for (size_t k = 0; k < neighbors.size(); ++k) {
    if (neighbors[k] == 1) {
      EXPECT_EQ(weights[k], 1.0);
    }
    if (neighbors[k] == 2) {
      EXPECT_EQ(weights[k], 4.0);
    }
  }
}

TEST(CsrGraphTest, EmptyGraph) {
  CsrGraph g(0, {});
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_EQ(g.CountWeakComponents(), 0);
}

TEST(CsrGraphTest, ParallelEdgesPreserved) {
  CsrGraph g(2, {{0, 1, 1.0}, {0, 1, 2.0}});
  EXPECT_EQ(g.OutDegree(0), 2);
}

TEST(CsrGraphTest, ReachabilityRespectsDirection) {
  CsrGraph g(3, {{0, 1, 1.0}, {1, 2, 1.0}});
  std::vector<bool> from0 = g.ReachableFrom(0);
  EXPECT_TRUE(from0[0] && from0[1] && from0[2]);
  std::vector<bool> from2 = g.ReachableFrom(2);
  EXPECT_FALSE(from2[0]);
  EXPECT_TRUE(from2[2]);
}

TEST(CsrGraphTest, WeakComponents) {
  CsrGraph g(5, {{0, 1, 1.0}, {2, 3, 1.0}});
  EXPECT_EQ(g.CountWeakComponents(), 3);  // {0,1}, {2,3}, {4}.
}

TEST(DijkstraTest, ShortestDistancesOnDiamond) {
  CsrGraph g = DiamondGraph();
  ShortestPathTree tree = Dijkstra(g, 0);
  EXPECT_EQ(tree.distance[0], 0.0);
  EXPECT_EQ(tree.distance[1], 1.0);
  EXPECT_EQ(tree.distance[2], 2.0);  // Via 1, not the direct 4.0 edge.
  EXPECT_EQ(tree.distance[3], 3.0);  // 0-1-2-3.
}

TEST(DijkstraTest, PathReconstruction) {
  CsrGraph g = DiamondGraph();
  ShortestPathTree tree = Dijkstra(g, 0);
  EXPECT_EQ(ReconstructPath(tree, 0, 3), (std::vector<VertexId>{0, 1, 2, 3}));
  EXPECT_EQ(ReconstructPath(tree, 0, 0), (std::vector<VertexId>{0}));
}

TEST(DijkstraTest, UnreachableIsInfinite) {
  CsrGraph g(3, {{0, 1, 1.0}});
  ShortestPathTree tree = Dijkstra(g, 0);
  EXPECT_EQ(tree.distance[2], kInfiniteDistance);
  EXPECT_TRUE(ReconstructPath(tree, 0, 2).empty());
  EXPECT_FALSE(ShortestPathDistance(g, 0, 2).has_value());
}

TEST(DijkstraTest, PointQuery) {
  CsrGraph g = DiamondGraph();
  EXPECT_EQ(ShortestPathDistance(g, 0, 3).value(), 3.0);
  EXPECT_EQ(ShortestPathDistance(g, 1, 3).value(), 2.0);
}

TEST(DijkstraTest, MaxDistancePrunes) {
  CsrGraph g = DiamondGraph();
  ShortestPathTree tree = Dijkstra(g, 0, std::nullopt, /*max_distance=*/1.5);
  EXPECT_EQ(tree.distance[1], 1.0);
  EXPECT_EQ(tree.distance[3], kInfiniteDistance);
}

TEST(DijkstraTest, MatchesBruteForceOnRandomGraph) {
  Rng rng(9);
  const int64_t n = 60;
  std::vector<WeightedEdge> edges;
  for (int64_t v = 0; v < n; ++v) {
    for (int k = 0; k < 4; ++k) {
      int64_t u = rng.UniformInt(0, n - 1);
      if (u != v) edges.push_back({v, u, rng.Uniform(1.0, 10.0)});
    }
  }
  CsrGraph g(n, edges);
  ShortestPathTree tree = Dijkstra(g, 0);
  // Bellman-Ford as the oracle.
  std::vector<double> oracle(static_cast<size_t>(n), kInfiniteDistance);
  oracle[0] = 0.0;
  for (int64_t iter = 0; iter < n; ++iter) {
    for (const WeightedEdge& e : edges) {
      if (oracle[static_cast<size_t>(e.from)] + e.weight <
          oracle[static_cast<size_t>(e.to)]) {
        oracle[static_cast<size_t>(e.to)] = oracle[static_cast<size_t>(e.from)] + e.weight;
      }
    }
  }
  for (int64_t v = 0; v < n; ++v) {
    if (oracle[static_cast<size_t>(v)] == kInfiniteDistance) {
      EXPECT_EQ(tree.distance[static_cast<size_t>(v)], kInfiniteDistance);
    } else {
      EXPECT_NEAR(tree.distance[static_cast<size_t>(v)], oracle[static_cast<size_t>(v)],
                  1e-9);
    }
  }
}

TEST(RandomWalkTest, WalkStaysOnEdges) {
  CsrGraph g = DiamondGraph();
  Rng rng(3);
  RandomWalkConfig config;
  config.walk_length = 10;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<VertexId> walk = BiasedWalk(g, 0, config, rng);
    ASSERT_GE(walk.size(), 1u);
    EXPECT_EQ(walk[0], 0);
    for (size_t i = 0; i + 1 < walk.size(); ++i) {
      auto neighbors = g.OutNeighbors(walk[i]);
      EXPECT_TRUE(std::find(neighbors.begin(), neighbors.end(), walk[i + 1]) !=
                  neighbors.end())
          << "step " << i;
    }
  }
}

TEST(RandomWalkTest, WalkStopsAtSink) {
  CsrGraph g(2, {{0, 1, 1.0}});
  Rng rng(4);
  RandomWalkConfig config;
  config.walk_length = 10;
  std::vector<VertexId> walk = BiasedWalk(g, 0, config, rng);
  EXPECT_EQ(walk, (std::vector<VertexId>{0, 1}));
}

TEST(RandomWalkTest, ReturnParameterControlsBacktracking) {
  // Path graph 0 <-> 1 <-> 2: from 1 after arriving from 0, low p favors
  // returning to 0; high p discourages it.
  CsrGraph g(3, {{0, 1, 1.0}, {1, 0, 1.0}, {1, 2, 1.0}, {2, 1, 1.0}});
  auto count_returns = [&g](double p) {
    Rng rng(5);
    RandomWalkConfig config;
    config.walk_length = 3;
    config.p = p;
    int returns = 0;
    for (int trial = 0; trial < 2000; ++trial) {
      std::vector<VertexId> walk = BiasedWalk(g, 0, config, rng);
      if (walk.size() == 3 && walk[2] == 0) ++returns;
    }
    return returns;
  };
  EXPECT_GT(count_returns(0.1), count_returns(10.0) + 200);
}

TEST(RandomWalkTest, CorpusCoversAllVertices) {
  CsrGraph g = DiamondGraph();
  Rng rng(6);
  RandomWalkConfig config;
  config.walk_length = 5;
  config.walks_per_vertex = 3;
  auto corpus = GenerateWalkCorpus(g, config, rng);
  std::set<VertexId> starts;
  for (const auto& walk : corpus) starts.insert(walk[0]);
  // Vertex 3 is a sink (walk length 1, filtered); the rest must appear.
  EXPECT_TRUE(starts.count(0) && starts.count(1) && starts.count(2));
}

}  // namespace
}  // namespace sarn::graph
