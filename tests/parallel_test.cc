#include "common/parallel.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace sarn {
namespace {

TEST(ParallelTest, CoversEveryIndexExactlyOnce) {
  const size_t n = 100000;
  std::vector<std::atomic<int>> hits(n);
  ParallelFor(n, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelTest, SmallRangeRunsSerially) {
  // Small ranges take the serial path: a single contiguous [0, n) call.
  std::vector<std::pair<size_t, size_t>> calls;
  ParallelFor(10, [&](size_t begin, size_t end) { calls.emplace_back(begin, end); });
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0].first, 0u);
  EXPECT_EQ(calls[0].second, 10u);
}

TEST(ParallelTest, ZeroRangeNoCalls) {
  bool called = false;
  ParallelFor(0, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelTest, SumMatchesSerial) {
  const size_t n = 50000;
  std::vector<double> values(n);
  for (size_t i = 0; i < n; ++i) values[i] = 0.5 * static_cast<double>(i);
  std::atomic<int64_t> parallel_sum{0};  // Sum of integer doubles fits.
  ParallelFor(n, [&](size_t begin, size_t end) {
    double local = 0;
    for (size_t i = begin; i < end; ++i) local += values[i];
    parallel_sum.fetch_add(static_cast<int64_t>(local * 2.0));
  });
  double serial = std::accumulate(values.begin(), values.end(), 0.0);
  EXPECT_EQ(parallel_sum.load(), static_cast<int64_t>(serial * 2.0));
}

TEST(ParallelTest, ThreadCountOverride) {
  size_t original = GetParallelThreads();
  SetParallelThreads(1);
  EXPECT_EQ(GetParallelThreads(), 1u);
  SetParallelThreads(4);
  EXPECT_EQ(GetParallelThreads(), 4u);
  SetParallelThreads(0);  // Clamps to 1.
  EXPECT_EQ(GetParallelThreads(), 1u);
  SetParallelThreads(original);
}

}  // namespace
}  // namespace sarn
