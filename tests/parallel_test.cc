#include "common/parallel.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace sarn {
namespace {

/// Restores the global thread count on scope exit so tests stay independent.
class ThreadPin {
 public:
  explicit ThreadPin(size_t threads) : previous_(GetParallelThreads()) {
    SetParallelThreads(threads);
  }
  ~ThreadPin() { SetParallelThreads(previous_); }

 private:
  size_t previous_;
};

TEST(ParallelTest, CoversEveryIndexExactlyOnce) {
  const size_t n = 100000;
  std::vector<std::atomic<int>> hits(n);
  ParallelFor(n, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelTest, SmallRangeRunsSerially) {
  // Small ranges take the serial path: a single contiguous [0, n) call.
  std::vector<std::pair<size_t, size_t>> calls;
  ParallelFor(10, [&](size_t begin, size_t end) { calls.emplace_back(begin, end); });
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0].first, 0u);
  EXPECT_EQ(calls[0].second, 10u);
}

TEST(ParallelTest, ZeroRangeNoCalls) {
  bool called = false;
  ParallelFor(0, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelTest, SumMatchesSerial) {
  const size_t n = 50000;
  std::vector<double> values(n);
  for (size_t i = 0; i < n; ++i) values[i] = 0.5 * static_cast<double>(i);
  std::atomic<int64_t> parallel_sum{0};  // Sum of integer doubles fits.
  ParallelFor(n, [&](size_t begin, size_t end) {
    double local = 0;
    for (size_t i = begin; i < end; ++i) local += values[i];
    parallel_sum.fetch_add(static_cast<int64_t>(local * 2.0));
  });
  double serial = std::accumulate(values.begin(), values.end(), 0.0);
  EXPECT_EQ(parallel_sum.load(), static_cast<int64_t>(serial * 2.0));
}

TEST(ParallelTest, ThreadCountOverride) {
  size_t original = GetParallelThreads();
  SetParallelThreads(1);
  EXPECT_EQ(GetParallelThreads(), 1u);
  SetParallelThreads(4);
  EXPECT_EQ(GetParallelThreads(), 4u);
  SetParallelThreads(0);  // Clamps to 1.
  EXPECT_EQ(GetParallelThreads(), 1u);
  SetParallelThreads(original);
}

TEST(ParallelTest, CoversEveryIndexExactlyOnceOnPool) {
  // Same coverage invariant, but forced through the multi-worker pool with
  // a grain small enough that every worker claims several chunks.
  ThreadPin pin(4);
  const size_t n = 100000;
  std::vector<std::atomic<int>> hits(n);
  ParallelFor(
      n,
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      },
      /*grain=*/64);
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelTest, GrainLargerThanRangeRunsSerially) {
  ThreadPin pin(4);
  std::vector<std::pair<size_t, size_t>> calls;
  ParallelFor(
      100, [&](size_t begin, size_t end) { calls.emplace_back(begin, end); },
      /*grain=*/101);
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0].first, 0u);
  EXPECT_EQ(calls[0].second, 100u);
}

TEST(ParallelTest, SingleThreadIsDeterministicOrder) {
  // With threads pinned to 1 the body runs inline as one [0, n) call, so an
  // order-dependent (non-commutative) reduction is reproducible run to run.
  ThreadPin pin(1);
  auto run = [] {
    double acc = 1.0;
    ParallelFor(
        1000,
        [&](size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            acc = acc * 0.999 + static_cast<double>(i % 7);
          }
        },
        /*grain=*/1);
    return acc;
  };
  double first = run();
  for (int repeat = 0; repeat < 3; ++repeat) EXPECT_EQ(run(), first);
}

TEST(ParallelTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPin pin(4);
  const size_t outer = 64, inner = 128;
  std::vector<std::atomic<int>> hits(outer * inner);
  EXPECT_FALSE(InParallelRegion());
  ParallelFor(
      outer,
      [&](size_t obegin, size_t oend) {
        EXPECT_TRUE(InParallelRegion());
        for (size_t o = obegin; o < oend; ++o) {
          // The nested call must run inline (it would otherwise contend for
          // the same pool while every worker is busy in the outer region).
          ParallelFor(
              inner,
              [&](size_t ibegin, size_t iend) {
                for (size_t i = ibegin; i < iend; ++i) {
                  hits[o * inner + i].fetch_add(1);
                }
              },
              /*grain=*/1);
        }
      },
      /*grain=*/1);
  EXPECT_FALSE(InParallelRegion());
  for (size_t i = 0; i < hits.size(); ++i) ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelTest, ExceptionPropagatesOutOfWorker) {
  ThreadPin pin(4);
  const size_t n = 10000;
  EXPECT_THROW(
      ParallelFor(
          n,
          [&](size_t begin, size_t end) {
            for (size_t i = begin; i < end; ++i) {
              if (i == n / 2) throw std::runtime_error("boom");
            }
          },
          /*grain=*/16),
      std::runtime_error);
  // The pool survives a throwing region: later regions still complete fully.
  std::atomic<size_t> count{0};
  ParallelFor(
      n, [&](size_t begin, size_t end) { count.fetch_add(end - begin); },
      /*grain=*/16);
  EXPECT_EQ(count.load(), n);
}

TEST(ParallelTest, ExceptionCarriesMessageAndRemainingChunksRun) {
  ThreadPin pin(4);
  const size_t n = 4096;
  std::atomic<size_t> visited{0};
  try {
    ParallelFor(
        n,
        [&](size_t begin, size_t end) {
          visited.fetch_add(end - begin);
          if (begin == 0) throw std::runtime_error("first chunk failed");
        },
        /*grain=*/16);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first chunk failed");
  }
  // A failing chunk does not abort the region: every chunk still ran.
  EXPECT_EQ(visited.load(), n);
}

TEST(ParallelTest, PoolStatsCountRegionsChunksAndItems) {
  size_t original = GetParallelThreads();
  SetParallelThreads(4);
  ParallelPoolStats before = GetParallelPoolStats();

  // Small range -> serial region; only serial_regions moves.
  ParallelFor(4, [](size_t, size_t) {}, /*grain=*/2048);
  ParallelPoolStats after_serial = GetParallelPoolStats();
  EXPECT_EQ(after_serial.serial_regions, before.serial_regions + 1);
  EXPECT_EQ(after_serial.regions, before.regions);

  // Large range with a small grain -> pool dispatch: one region, every item
  // covered, at least one chunk per participating thread is plausible but
  // only >= 1 is guaranteed.
  constexpr size_t kItems = 10000;
  ParallelFor(kItems, [](size_t, size_t) {}, /*grain=*/16);
  ParallelPoolStats after_pool = GetParallelPoolStats();
  EXPECT_EQ(after_pool.regions, after_serial.regions + 1);
  EXPECT_EQ(after_pool.items, after_serial.items + kItems);
  EXPECT_GT(after_pool.chunks, after_serial.chunks);
  EXPECT_GE(after_pool.worker_idle_seconds, 0.0);
  SetParallelThreads(original);
}

TEST(ParallelTest, ResizeBetweenRegionsIsSafe) {
  size_t original = GetParallelThreads();
  std::atomic<size_t> count{0};
  for (size_t threads : {1u, 4u, 2u, 8u, 1u}) {
    SetParallelThreads(threads);
    count.store(0);
    ParallelFor(
        5000, [&](size_t begin, size_t end) { count.fetch_add(end - begin); },
        /*grain=*/8);
    EXPECT_EQ(count.load(), 5000u) << "threads=" << threads;
  }
  SetParallelThreads(original);
}

}  // namespace
}  // namespace sarn
