#include "tasks/representation_quality.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/sarn_model.h"
#include "core/spatial_similarity.h"
#include "roadnet/synthetic_city.h"

namespace sarn::tasks {
namespace {

using tensor::Tensor;

TEST(RepresentationQualityTest, AlignmentZeroForIdenticalPairs) {
  Rng rng(1);
  Tensor x = Tensor::Randn({10, 4}, rng);
  std::vector<std::pair<int64_t, int64_t>> self_pairs;
  for (int64_t i = 0; i < 10; ++i) self_pairs.emplace_back(i, i);
  EXPECT_NEAR(AlignmentLoss(x, self_pairs), 0.0, 1e-9);
}

TEST(RepresentationQualityTest, AlignmentBoundedByFour) {
  // On the unit sphere ||x - y||^2 <= 4.
  Rng rng(2);
  Tensor x = Tensor::Randn({20, 6}, rng);
  std::vector<std::pair<int64_t, int64_t>> pairs;
  for (int64_t i = 0; i + 1 < 20; i += 2) pairs.emplace_back(i, i + 1);
  double alignment = AlignmentLoss(x, pairs);
  EXPECT_GE(alignment, 0.0);
  EXPECT_LE(alignment, 4.0);
}

TEST(RepresentationQualityTest, UniformityPrefersSpreadOverCollapse) {
  // Collapsed embeddings (all rows equal) have uniformity ~0 (the worst);
  // random Gaussian rows are much more uniform (more negative).
  Rng rng(3);
  Tensor collapsed = Tensor::Ones({50, 8});
  Tensor spread = Tensor::Randn({50, 8}, rng);
  double u_collapsed = UniformityLoss(collapsed, 500, 7);
  double u_spread = UniformityLoss(spread, 500, 7);
  EXPECT_NEAR(u_collapsed, 0.0, 1e-9);
  EXPECT_LT(u_spread, u_collapsed - 0.5);
}

TEST(RepresentationQualityTest, UniformityDeterministicPerSeed) {
  Rng rng(4);
  Tensor x = Tensor::Randn({30, 4}, rng);
  EXPECT_DOUBLE_EQ(UniformityLoss(x, 200, 11), UniformityLoss(x, 200, 11));
}

TEST(RepresentationQualityTest, SarnTrainingImprovesAlignmentOfSpatialPairs) {
  // The paper's §4.4 claim, measured directly: after training, spatially
  // similar pairs (A^s edges) are better aligned than before training,
  // while the embedding distribution stays non-collapsed.
  roadnet::SyntheticCityConfig city;
  city.rows = 10;
  city.cols = 10;
  roadnet::RoadNetwork network = roadnet::GenerateSyntheticCity(city);
  core::SarnConfig config;
  config.hidden_dim = 16;
  config.embedding_dim = 16;
  config.projection_dim = 8;
  config.gat_layers = 2;
  config.gat_heads = 2;
  config.feature_dim_per_feature = 4;
  config.max_epochs = 12;
  core::FitCellSideToNetwork(config, network);
  core::SarnModel model(network, config);

  std::vector<std::pair<int64_t, int64_t>> spatial_pairs;
  for (const core::SpatialEdge& e : model.spatial_edges()) {
    spatial_pairs.emplace_back(e.a, e.b);
    if (spatial_pairs.size() >= 200) break;
  }
  ASSERT_FALSE(spatial_pairs.empty());

  double alignment_before = AlignmentLoss(model.Embeddings(), spatial_pairs);
  model.Train();
  Tensor trained = model.Embeddings();
  double alignment_after = AlignmentLoss(trained, spatial_pairs);
  EXPECT_LT(alignment_after, alignment_before);
  // No collapse: uniformity stays clearly negative.
  EXPECT_LT(UniformityLoss(trained, 400, 13), -0.2);
}

}  // namespace
}  // namespace sarn::tasks
