// Property-style algebraic identities of the tensor ops over randomized
// shapes and values (TEST_P sweep).

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace sarn::tensor {
namespace {

struct ShapeCase {
  int64_t m;
  int64_t k;
  int64_t n;
  uint64_t seed;
};

class TensorPropertyTest : public testing::TestWithParam<ShapeCase> {
 protected:
  void ExpectNear(const Tensor& a, const Tensor& b, float tolerance = 1e-4f) {
    ASSERT_EQ(a.numel(), b.numel());
    for (int64_t i = 0; i < a.numel(); ++i) {
      float scale = std::max({1.0f, std::fabs(a.data()[static_cast<size_t>(i)]),
                              std::fabs(b.data()[static_cast<size_t>(i)])});
      ASSERT_NEAR(a.data()[static_cast<size_t>(i)], b.data()[static_cast<size_t>(i)],
                  tolerance * scale)
          << "index " << i;
    }
  }
};

TEST_P(TensorPropertyTest, AddCommutes) {
  ShapeCase c = GetParam();
  Rng rng(c.seed);
  Tensor a = Tensor::Randn({c.m, c.n}, rng);
  Tensor b = Tensor::Randn({c.m, c.n}, rng);
  ExpectNear(Add(a, b), Add(b, a));
}

TEST_P(TensorPropertyTest, MatMulAssociative) {
  ShapeCase c = GetParam();
  Rng rng(c.seed + 1);
  Tensor a = Tensor::Randn({c.m, c.k}, rng);
  Tensor b = Tensor::Randn({c.k, c.n}, rng);
  Tensor d = Tensor::Randn({c.n, c.m}, rng);
  ExpectNear(MatMul(MatMul(a, b), d), MatMul(a, MatMul(b, d)), 1e-3f);
}

TEST_P(TensorPropertyTest, MatMulDistributesOverAdd) {
  ShapeCase c = GetParam();
  Rng rng(c.seed + 2);
  Tensor a = Tensor::Randn({c.m, c.k}, rng);
  Tensor b1 = Tensor::Randn({c.k, c.n}, rng);
  Tensor b2 = Tensor::Randn({c.k, c.n}, rng);
  ExpectNear(MatMul(a, Add(b1, b2)), Add(MatMul(a, b1), MatMul(a, b2)), 1e-3f);
}

TEST_P(TensorPropertyTest, TransposeIsInvolution) {
  ShapeCase c = GetParam();
  Rng rng(c.seed + 3);
  Tensor a = Tensor::Randn({c.m, c.n}, rng);
  ExpectNear(Transpose(Transpose(a)), a, 0.0f);
}

TEST_P(TensorPropertyTest, TransposeOfProduct) {
  ShapeCase c = GetParam();
  Rng rng(c.seed + 4);
  Tensor a = Tensor::Randn({c.m, c.k}, rng);
  Tensor b = Tensor::Randn({c.k, c.n}, rng);
  ExpectNear(Transpose(MatMul(a, b)), MatMul(Transpose(b), Transpose(a)), 1e-3f);
}

TEST_P(TensorPropertyTest, SoftmaxShiftInvariant) {
  ShapeCase c = GetParam();
  Rng rng(c.seed + 5);
  Tensor a = Tensor::Randn({c.m, c.n}, rng);
  ExpectNear(RowSoftmax(a), RowSoftmax(AddScalar(a, 7.5f)), 1e-4f);
}

TEST_P(TensorPropertyTest, LogSoftmaxExpIsSoftmax) {
  ShapeCase c = GetParam();
  Rng rng(c.seed + 6);
  Tensor a = Tensor::Randn({c.m, c.n}, rng);
  ExpectNear(Exp(RowLogSoftmax(a)), RowSoftmax(a), 1e-4f);
}

TEST_P(TensorPropertyTest, RowsIdentityGather) {
  ShapeCase c = GetParam();
  Rng rng(c.seed + 7);
  Tensor a = Tensor::Randn({c.m, c.n}, rng);
  std::vector<int64_t> identity(static_cast<size_t>(c.m));
  for (int64_t i = 0; i < c.m; ++i) identity[static_cast<size_t>(i)] = i;
  ExpectNear(Rows(a, identity), a, 0.0f);
}

TEST_P(TensorPropertyTest, ConcatThenSliceRoundTrip) {
  ShapeCase c = GetParam();
  Rng rng(c.seed + 8);
  Tensor a = Tensor::Randn({c.m, c.n}, rng);
  Tensor b = Tensor::Randn({c.k, c.n}, rng);
  Tensor joined = Concat({a, b}, 0);
  std::vector<int64_t> a_rows(static_cast<size_t>(c.m));
  for (int64_t i = 0; i < c.m; ++i) a_rows[static_cast<size_t>(i)] = i;
  std::vector<int64_t> b_rows(static_cast<size_t>(c.k));
  for (int64_t i = 0; i < c.k; ++i) b_rows[static_cast<size_t>(i)] = c.m + i;
  ExpectNear(Rows(joined, a_rows), a, 0.0f);
  ExpectNear(Rows(joined, b_rows), b, 0.0f);
}

TEST_P(TensorPropertyTest, ScatterAddInvertsGatherSum) {
  // Sum over gathered rows == matmul with indicator, checked via ScatterAdd:
  // scatter(gather(a, idx)) sums each source row once per occurrence.
  ShapeCase c = GetParam();
  Rng rng(c.seed + 9);
  Tensor a = Tensor::Randn({c.m, c.n}, rng);
  std::vector<int64_t> index;
  for (int64_t i = 0; i < c.m; ++i) {
    index.push_back(i);
    index.push_back(i);  // Each row twice.
  }
  Tensor gathered = Rows(a, index);
  Tensor scattered = ScatterAddRows(gathered, index, c.m);
  ExpectNear(scattered, MulScalar(a, 2.0f), 1e-4f);
}

TEST_P(TensorPropertyTest, RowL2NormalizeIsIdempotent) {
  ShapeCase c = GetParam();
  Rng rng(c.seed + 10);
  Tensor a = Tensor::Randn({c.m, c.n}, rng);
  Tensor once = RowL2Normalize(a);
  ExpectNear(RowL2Normalize(once), once, 1e-4f);
}

TEST_P(TensorPropertyTest, DotRowsMatchesDiagonalOfProduct) {
  ShapeCase c = GetParam();
  Rng rng(c.seed + 11);
  Tensor a = Tensor::Randn({c.m, c.n}, rng);
  Tensor b = Tensor::Randn({c.m, c.n}, rng);
  Tensor full = MatMul(a, Transpose(b));  // [m, m]
  Tensor diag = DotRows(a, b);
  for (int64_t i = 0; i < c.m; ++i) {
    ASSERT_NEAR(diag.at(i), full.at(i, i), 1e-3f);
  }
}

TEST_P(TensorPropertyTest, SumAxesAgreeWithTotal) {
  ShapeCase c = GetParam();
  Rng rng(c.seed + 12);
  Tensor a = Tensor::Randn({c.m, c.n}, rng);
  float total = Sum(a).item();
  float by_rows = Sum(SumAxis(a, 1)).item();
  float by_cols = Sum(SumAxis(a, 0)).item();
  EXPECT_NEAR(total, by_rows, 1e-3f * std::max(1.0f, std::fabs(total)));
  EXPECT_NEAR(total, by_cols, 1e-3f * std::max(1.0f, std::fabs(total)));
}

INSTANTIATE_TEST_SUITE_P(Shapes, TensorPropertyTest,
                         testing::Values(ShapeCase{2, 3, 4, 11}, ShapeCase{1, 1, 1, 22},
                                         ShapeCase{7, 5, 3, 33}, ShapeCase{16, 8, 16, 44},
                                         ShapeCase{5, 13, 2, 55}),
                         [](const testing::TestParamInfo<ShapeCase>& info) {
                           return "m" + std::to_string(info.param.m) + "k" +
                                  std::to_string(info.param.k) + "n" +
                                  std::to_string(info.param.n);
                         });

}  // namespace
}  // namespace sarn::tensor
