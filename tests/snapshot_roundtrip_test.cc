// Round-trip property suite for the mmap snapshot format: a heap-built
// EmbeddingIndex serialised with BuildServingSnapshot and loaded back
// through LoadServingSnapshot (zero-copy Storage::External adoption) must
// answer QueryBatch BITWISE identically to the original — across random
// (n, d), both metrics, both precisions, every available SIMD tier, and
// while the engine is concurrently hot-swapping mmap snapshots (the TSan
// target in tools/verify.sh).

#include "snapshot/snapshot.h"

#include <atomic>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "obs/metrics.h"
#include "serve/query_engine.h"
#include "tasks/embedding_index.h"
#include "tensor/simd/simd.h"
#include "tensor/tensor.h"

namespace sarn::snapshot {
namespace {

using tasks::EmbeddingIndex;
using tasks::IndexMetric;
using tasks::IndexPrecision;
using tasks::IndexQuery;
using tasks::Neighbor;
using tensor::Tensor;

class TierGuard {
 public:
  TierGuard() : prev_(tensor::simd::ActiveTier()) {}
  ~TierGuard() { tensor::simd::ForceTier(prev_); }

 private:
  tensor::simd::Tier prev_;
};

std::vector<tensor::simd::Tier> AvailableTiers() {
  using tensor::simd::Tier;
  std::vector<Tier> tiers = {Tier::kScalar};
  if (tensor::simd::TierAvailable(Tier::kAvx2)) tiers.push_back(Tier::kAvx2);
  if (tensor::simd::TierAvailable(Tier::kNeon)) tiers.push_back(Tier::kNeon);
  return tiers;
}

std::string SaveToTemp(const SnapshotContents& contents, const char* tag) {
  const std::string path =
      testing::TempDir() + "/sarn_roundtrip_" + tag + ".sarnsnap";
  SnapshotStatus status = SaveServingSnapshot(path, contents);
  EXPECT_TRUE(status.ok()) << status.message;
  return path;
}

std::vector<IndexQuery> RandomQueries(Rng& rng, int64_t n, int64_t d,
                                      size_t count) {
  std::vector<IndexQuery> queries;
  for (size_t i = 0; i < count; ++i) {
    if (rng.UniformInt(0, 1) == 0) {
      queries.push_back(IndexQuery::ById(rng.UniformInt(0, n - 1)));
    } else {
      std::vector<float> v(static_cast<size_t>(d));
      for (float& x : v) x = static_cast<float>(rng.Normal(0.0, 1.0));
      queries.push_back(IndexQuery::ByVector(std::move(v)));
    }
  }
  return queries;
}

void ExpectBitwiseEqual(const std::vector<std::vector<Neighbor>>& a,
                        const std::vector<std::vector<Neighbor>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size()) << "query " << i;
    for (size_t j = 0; j < a[i].size(); ++j) {
      EXPECT_EQ(a[i][j].id, b[i][j].id) << "query " << i << " rank " << j;
      // Bitwise: double ==, no tolerance. The loaded scan runs over the
      // exact bytes the heap index prepared.
      EXPECT_EQ(a[i][j].score, b[i][j].score) << "query " << i << " rank " << j;
    }
  }
}

TEST(SnapshotRoundtripTest, RandomModelsAreBitwiseIdenticalAcrossPrecisions) {
  Rng rng(20260808);
  for (int trial = 0; trial < 8; ++trial) {
    const int64_t n = rng.UniformInt(3, 40);
    const int64_t d = rng.UniformInt(2, 33);
    const IndexMetric metric =
        rng.UniformInt(0, 1) == 0 ? IndexMetric::kCosine : IndexMetric::kL1;
    Tensor embeddings = Tensor::Randn({n, d}, rng);
    EmbeddingIndex float_index(embeddings, metric, IndexPrecision::kFloat32);
    EmbeddingIndex int8_index(embeddings, metric, IndexPrecision::kInt8);

    SnapshotContents contents;
    contents.n = n;
    contents.d = d;
    contents.metric = metric;
    contents.model_embeddings = &embeddings;
    contents.float_index = &float_index;
    contents.int8_index = &int8_index;
    const std::string path = SaveToTemp(contents, "random");

    const std::vector<IndexQuery> queries = RandomQueries(rng, n, d, 6);
    const int k = static_cast<int>(rng.UniformInt(1, 12));

    for (IndexPrecision precision :
         {IndexPrecision::kFloat32, IndexPrecision::kInt8}) {
      const EmbeddingIndex& heap =
          precision == IndexPrecision::kFloat32 ? float_index : int8_index;
      LoadedSnapshot loaded;
      SnapshotStatus status = LoadServingSnapshot(path, precision, &loaded);
      ASSERT_TRUE(status.ok()) << status.message;
      ASSERT_NE(loaded.index, nullptr);
      EXPECT_TRUE(loaded.index->adopted());
      EXPECT_FALSE(heap.adopted());
      EXPECT_EQ(loaded.index->size(), n);
      EXPECT_EQ(loaded.index->dim(), d);
      EXPECT_EQ(loaded.index->metric(), metric);
      EXPECT_EQ(loaded.index->precision(), precision);
      EXPECT_EQ(loaded.index->index_bytes(), heap.index_bytes())
          << "trial " << trial;
      ExpectBitwiseEqual(loaded.index->QueryBatch(queries, k),
                         heap.QueryBatch(queries, k));
    }
    std::remove(path.c_str());
  }
}

TEST(SnapshotRoundtripTest, BitwiseIdenticalUnderEverySimdTier) {
  Rng rng(77);
  const int64_t n = 33;
  const int64_t d = 17;  // Full vector widths plus a tail on every tier.
  for (IndexMetric metric : {IndexMetric::kCosine, IndexMetric::kL1}) {
    Tensor embeddings = Tensor::Randn({n, d}, rng);
    EmbeddingIndex float_index(embeddings, metric, IndexPrecision::kFloat32);
    EmbeddingIndex int8_index(embeddings, metric, IndexPrecision::kInt8);
    SnapshotContents contents;
    contents.n = n;
    contents.d = d;
    contents.metric = metric;
    contents.float_index = &float_index;
    contents.int8_index = &int8_index;
    const std::string path = SaveToTemp(contents, "tiers");

    const std::vector<IndexQuery> queries = RandomQueries(rng, n, d, 7);
    for (IndexPrecision precision :
         {IndexPrecision::kFloat32, IndexPrecision::kInt8}) {
      const EmbeddingIndex& heap =
          precision == IndexPrecision::kFloat32 ? float_index : int8_index;
      LoadedSnapshot loaded;
      ASSERT_TRUE(LoadServingSnapshot(path, precision, &loaded).ok());
      TierGuard guard;
      for (tensor::simd::Tier tier : AvailableTiers()) {
        SCOPED_TRACE(std::string("tier ") + tensor::simd::TierName(tier));
        tensor::simd::ForceTier(tier);
        ExpectBitwiseEqual(loaded.index->QueryBatch(queries, 5),
                           heap.QueryBatch(queries, 5));
      }
    }
    std::remove(path.c_str());
  }
}

TEST(SnapshotRoundtripTest, IndexPinsMappingAfterAllOtherRefsDrop) {
  Rng rng(5);
  Tensor embeddings = Tensor::Randn({20, 8}, rng);
  EmbeddingIndex heap(embeddings, IndexMetric::kCosine);
  SnapshotContents contents;
  contents.n = 20;
  contents.d = 8;
  contents.metric = IndexMetric::kCosine;
  contents.float_index = &heap;
  const std::string path = SaveToTemp(contents, "pin");

  std::shared_ptr<const EmbeddingIndex> index;
  {
    LoadedSnapshot loaded;
    ASSERT_TRUE(
        LoadServingSnapshot(path, IndexPrecision::kFloat32, &loaded).ok());
    index = loaded.index;
    // `loaded` (and its explicit mapping handle) dies here; the index's
    // payload_owner_ keepalive must keep the file mapped.
  }
  std::remove(path.c_str());  // Unlink is fine too: the mapping persists.
  ExpectBitwiseEqual({index->QueryById(3, 5)}, {heap.QueryById(3, 5)});
}

TEST(SnapshotRoundtripTest, LocatorAndModelSectionsRoundTrip) {
  Rng rng(9);
  const int64_t n = 15;
  Tensor embeddings = Tensor::Randn({n, 4}, rng);
  EmbeddingIndex heap(embeddings, IndexMetric::kCosine);
  std::vector<geo::LatLng> midpoints(static_cast<size_t>(n));
  for (size_t i = 0; i < midpoints.size(); ++i) {
    midpoints[i] = {30.0 + 0.01 * static_cast<double>(i),
                    104.0 - 0.005 * static_cast<double>(i)};
  }
  SnapshotContents contents;
  contents.n = n;
  contents.d = 4;
  contents.metric = IndexMetric::kCosine;
  contents.model_embeddings = &embeddings;
  contents.float_index = &heap;
  contents.midpoints = &midpoints;
  contents.locator_cell_side_meters = 250.0;
  const std::string path = SaveToTemp(contents, "locator");

  LoadedSnapshot loaded;
  ASSERT_TRUE(
      LoadServingSnapshot(path, IndexPrecision::kFloat32, &loaded).ok());
  ASSERT_NE(loaded.locator, nullptr);
  ASSERT_EQ(loaded.locator->size(), midpoints.size());
  for (size_t i = 0; i < midpoints.size(); ++i) {
    EXPECT_EQ(loaded.locator->point(i), midpoints[i]) << "midpoint " << i;
    // The rebuilt grid must resolve every midpoint to itself.
    auto nearest = loaded.locator->Nearest(midpoints[i]);
    ASSERT_TRUE(nearest.has_value());
    EXPECT_EQ(*nearest, static_cast<uint32_t>(i));
  }
  ASSERT_EQ(loaded.model_embeddings.size(), static_cast<size_t>(n) * 4);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      EXPECT_EQ(loaded.model_embeddings[static_cast<size_t>(i * 4 + j)],
                embeddings.at(i, j));
    }
  }
  EXPECT_GT(loaded.copied_bytes, 0u);   // Midpoints are materialised...
  EXPECT_GT(loaded.mapped_bytes, 0u);   // ...the scan payload is not.
  std::remove(path.c_str());
}

TEST(SnapshotRoundtripTest, LoadPublishesObsMetrics) {
  Rng rng(11);
  Tensor embeddings = Tensor::Randn({10, 6}, rng);
  EmbeddingIndex heap(embeddings, IndexMetric::kCosine);
  SnapshotContents contents;
  contents.n = 10;
  contents.d = 6;
  contents.metric = IndexMetric::kCosine;
  contents.float_index = &heap;
  const std::string path = SaveToTemp(contents, "metrics");

  auto& registry = obs::MetricsRegistry::Default();
  const uint64_t loads_before =
      registry.GetCounter("sarn.snapshot.loads").Value();
  LoadedSnapshot loaded;
  ASSERT_TRUE(
      LoadServingSnapshot(path, IndexPrecision::kFloat32, &loaded).ok());
  EXPECT_EQ(registry.GetCounter("sarn.snapshot.loads").Value(),
            loads_before + 1);
  EXPECT_EQ(registry.GetGauge("sarn.snapshot.bytes").Value(),
            static_cast<double>(loaded.mapping->file_bytes()));
  EXPECT_EQ(registry.GetGauge("sarn.snapshot.mapped_bytes").Value(),
            static_cast<double>(loaded.mapped_bytes));
  EXPECT_GT(loaded.load_ms, 0.0);

  const uint64_t errors_before =
      registry.GetCounter("sarn.snapshot.load_errors").Value();
  LoadedSnapshot missing;
  EXPECT_FALSE(LoadServingSnapshot(path + ".nope", IndexPrecision::kFloat32,
                                   &missing)
                   .ok());
  EXPECT_EQ(registry.GetCounter("sarn.snapshot.load_errors").Value(),
            errors_before + 1);
  std::remove(path.c_str());
}

// The TSan centerpiece: worker threads hammer the engine while the main
// thread repeatedly mmap-loads the snapshot and hot-swaps it in. In-flight
// batches drain on retired mappings (which munmap on last release), so any
// lifetime or publication race surfaces here.
TEST(SnapshotRoundtripTest, ConcurrentQueriesDuringMmapHotSwap) {
  Rng rng(13);
  const int64_t n = 40;
  const int64_t d = 16;
  Tensor embeddings = Tensor::Randn({n, d}, rng);
  auto heap = std::make_shared<EmbeddingIndex>(embeddings,
                                               IndexMetric::kCosine);
  SnapshotContents contents;
  contents.n = n;
  contents.d = d;
  contents.metric = IndexMetric::kCosine;
  contents.float_index = heap.get();
  const std::string path = SaveToTemp(contents, "hotswap");

  serve::ServeOptions options;
  options.threads = 2;
  options.batch_window_ms = 0.1;
  serve::QueryEngine engine(heap, nullptr, options);

  std::atomic<bool> stop{false};
  std::atomic<int> answered{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&, t] {
      Rng client_rng(100 + static_cast<uint64_t>(t));
      while (!stop.load(std::memory_order_relaxed)) {
        serve::ServeRequest request;
        request.kind = serve::ServeRequest::Kind::kById;
        request.id = client_rng.UniformInt(0, n - 1);
        request.k = 5;
        serve::ServeResponse response = engine.Query(request);
        ASSERT_TRUE(response.ok) << response.error;
        ASSERT_EQ(response.neighbors.size(), 5u);
        answered.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int swap = 0; swap < 20; ++swap) {
    LoadedSnapshot loaded;
    ASSERT_TRUE(
        LoadServingSnapshot(path, IndexPrecision::kFloat32, &loaded).ok());
    engine.Publish(loaded.index);
    // `loaded` drops its mapping ref here; in-flight batches keep it alive.
  }
  // And the async path: loads run on PublishAsync loader threads.
  std::vector<std::future<uint64_t>> swaps;
  for (int swap = 0; swap < 5; ++swap) {
    swaps.push_back(engine.PublishAsync(
        [&path]() -> std::shared_ptr<const EmbeddingIndex> {
          LoadedSnapshot loaded;
          if (!LoadServingSnapshot(path, IndexPrecision::kFloat32, &loaded)
                   .ok()) {
            return nullptr;
          }
          return loaded.index;
        }));
  }
  for (auto& f : swaps) EXPECT_NE(f.get(), 0u);
  stop.store(true);
  for (auto& client : clients) client.join();
  EXPECT_GT(answered.load(), 0);
  EXPECT_GE(engine.Stats().swaps, 25u);
  // Responses from the final epoch are bitwise equal to the heap index.
  serve::ServeRequest request;
  request.kind = serve::ServeRequest::Kind::kById;
  request.id = 7;
  request.k = 5;
  serve::ServeResponse response = engine.Query(request);
  ASSERT_TRUE(response.ok);
  const std::vector<Neighbor> expected = heap->QueryById(7, 5);
  ASSERT_EQ(response.neighbors.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(response.neighbors[i].id, expected[i].id);
    EXPECT_EQ(response.neighbors[i].score, expected[i].score);
  }
  std::remove(path.c_str());
}

TEST(SnapshotRoundtripTest, LoadRejectsMissingPrecisionPayload) {
  Rng rng(21);
  Tensor embeddings = Tensor::Randn({8, 4}, rng);
  EmbeddingIndex heap(embeddings, IndexMetric::kCosine);
  SnapshotContents contents;
  contents.n = 8;
  contents.d = 4;
  contents.metric = IndexMetric::kCosine;
  contents.float_index = &heap;  // No int8 payload.
  const std::string path = SaveToTemp(contents, "precision");
  LoadedSnapshot loaded;
  SnapshotStatus status =
      LoadServingSnapshot(path, IndexPrecision::kInt8, &loaded);
  EXPECT_EQ(status.error, SnapshotError::kMalformed);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sarn::snapshot
