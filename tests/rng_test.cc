#include "common/rng.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "common/binary_io.h"

namespace sarn {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000000), b.UniformInt(0, 1000000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.UniformInt(0, 1 << 30) != b.UniformInt(0, 1 << 30)) ++differences;
  }
  EXPECT_GT(differences, 40);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformRealInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, NormalHasRoughlyRightMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal(3.0, 2.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, DiscreteRespectsWeights) {
  Rng rng(17);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) ++counts[rng.Discrete(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> values(100);
  std::iota(values.begin(), values.end(), 0);
  std::vector<int> shuffled = values;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, values);  // Astronomically unlikely to be identity.
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(23);
  for (size_t k : {0UL, 1UL, 10UL, 90UL, 100UL}) {
    std::vector<size_t> sample = rng.SampleWithoutReplacement(100, k);
    EXPECT_EQ(sample.size(), k);
    std::set<size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), k);
    for (size_t v : sample) EXPECT_LT(v, 100u);
  }
}

TEST(RngTest, WeightedSampleWithoutReplacementSkipsZeroWeights) {
  Rng rng(29);
  std::vector<double> weights = {0.0, 5.0, 0.0, 5.0, 0.0};
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<size_t> sample = rng.WeightedSampleWithoutReplacement(weights, 2);
    ASSERT_EQ(sample.size(), 2u);
    std::set<size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 2u);
    for (size_t v : sample) EXPECT_TRUE(v == 1 || v == 3);
  }
}

TEST(RngTest, WeightedSampleReturnsFewerWhenNotEnoughPositive) {
  Rng rng(31);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  std::vector<size_t> sample = rng.WeightedSampleWithoutReplacement(weights, 3);
  ASSERT_EQ(sample.size(), 1u);
  EXPECT_EQ(sample[0], 1u);
}

TEST(RngTest, WeightedSampleBiasFollowsWeights) {
  Rng rng(37);
  // Item 1 has 9x the weight of item 0; when sampling 1 of 2 it should be
  // picked ~90% of the time.
  std::vector<double> weights = {1.0, 9.0};
  int ones = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    std::vector<size_t> sample = rng.WeightedSampleWithoutReplacement(weights, 1);
    ASSERT_EQ(sample.size(), 1u);
    ones += sample[0] == 1 ? 1 : 0;
  }
  EXPECT_NEAR(ones / static_cast<double>(n), 0.9, 0.03);
}

// --- Checkpoint state round-trips -------------------------------------------

TEST(RngTest, StateRoundTripContinuesIdentically) {
  // Save mid-stream, restore into a *fresh* Rng with a different seed: the
  // restored stream must continue bitwise identical to the original across
  // every distribution the trainer uses.
  Rng original(12345);
  for (int i = 0; i < 257; ++i) original.UniformInt(0, 1 << 20);  // Advance.
  ByteWriter writer;
  original.SaveState(writer);

  Rng restored(999);  // Wrong seed on purpose; LoadState must replace it.
  ByteReader reader(writer.buffer());
  ASSERT_TRUE(restored.LoadState(reader));
  EXPECT_TRUE(reader.AtEnd());

  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(original.UniformInt(0, 1 << 30), restored.UniformInt(0, 1 << 30));
  }
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(original.Uniform(0.0, 1.0), restored.Uniform(0.0, 1.0));
    EXPECT_EQ(original.Normal(0.0, 1.0), restored.Normal(0.0, 1.0));
    EXPECT_EQ(original.Bernoulli(0.4), restored.Bernoulli(0.4));
  }
  std::vector<int> a(64), b(64);
  std::iota(a.begin(), a.end(), 0);
  std::iota(b.begin(), b.end(), 0);
  original.Shuffle(a);
  restored.Shuffle(b);
  EXPECT_EQ(a, b);
}

TEST(RngTest, LoadStateRejectsGarbage) {
  Rng rng(5);
  int64_t before = rng.UniformInt(0, 1 << 30);
  Rng probe(5);
  probe.UniformInt(0, 1 << 30);

  ByteWriter writer;
  writer.PutString("definitely not an mt19937_64 state");
  ByteReader reader(writer.buffer());
  EXPECT_FALSE(rng.LoadState(reader));
  // Stream unchanged by the failed load: still tracks the probe.
  EXPECT_EQ(rng.UniformInt(0, 1 << 30), probe.UniformInt(0, 1 << 30));
  (void)before;
}

TEST(RngTest, LoadStateRejectsTruncatedInput) {
  Rng rng(7);
  ByteWriter writer;
  rng.SaveState(writer);
  std::string cut = writer.buffer().substr(0, writer.buffer().size() / 2);
  Rng other(7);
  ByteReader reader(cut);
  EXPECT_FALSE(other.LoadState(reader));
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(41);
  Rng child = parent.Fork();
  // The child stream should not mirror the parent stream.
  int same = 0;
  for (int i = 0; i < 20; ++i) {
    if (parent.UniformInt(0, 1 << 30) == child.UniformInt(0, 1 << 30)) ++same;
  }
  EXPECT_LT(same, 3);
}

}  // namespace
}  // namespace sarn
