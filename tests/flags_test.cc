#include "common/flags.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace sarn {
namespace {

// Builds an argv from literals; argv[0] is the program, argv[1] the command,
// so Parse starts at index 2 like the CLI does.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args)
      : storage_(std::move(args)) {
    storage_.insert(storage_.begin(), {"sarn", "cmd"});
    for (std::string& s : storage_) pointers_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(pointers_.size()); }
  char** argv() { return pointers_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> pointers_;
};

FlagSet TestFlags() {
  FlagSet flags("cmd", "a test command");
  flags.String("out", "", "output file", /*required=*/true)
      .String("city", "CD", "city name")
      .Int("epochs", 40, "epoch count")
      .Double("scale", 0.05, "scale factor")
      .Bool("lines", false, "line mode");
  return flags;
}

TEST(FlagsTest, ParsesTypedValuesAndDefaults) {
  FlagSet flags = TestFlags();
  Argv argv({"--out", "x.csv", "--epochs", "7", "--scale", "1.5", "--lines", "true"});
  std::string error;
  ASSERT_TRUE(flags.Parse(argv.argc(), argv.argv(), 2, &error)) << error;
  EXPECT_EQ(flags.GetString("out"), "x.csv");
  EXPECT_EQ(flags.GetString("city"), "CD");  // Defaulted.
  EXPECT_EQ(flags.GetInt("epochs"), 7);
  EXPECT_DOUBLE_EQ(flags.GetDouble("scale"), 1.5);
  EXPECT_TRUE(flags.GetBool("lines"));
  EXPECT_TRUE(flags.provided("out"));
  EXPECT_FALSE(flags.provided("city"));
}

TEST(FlagsTest, BoolAcceptsNumericForms) {
  for (const char* value : {"1", "true"}) {
    FlagSet flags = TestFlags();
    Argv argv({"--out", "x", "--lines", value});
    std::string error;
    ASSERT_TRUE(flags.Parse(argv.argc(), argv.argv(), 2, &error)) << error;
    EXPECT_TRUE(flags.GetBool("lines"));
  }
  FlagSet flags = TestFlags();
  Argv argv({"--out", "x", "--lines", "0"});
  std::string error;
  ASSERT_TRUE(flags.Parse(argv.argc(), argv.argv(), 2, &error));
  EXPECT_FALSE(flags.GetBool("lines"));
}

TEST(FlagsTest, ErrorsDescribeTheProblem) {
  struct Case {
    std::vector<std::string> args;
    const char* needle;
  };
  const Case cases[] = {
      {{"--out", "x", "--bogus", "1"}, "unknown flag --bogus"},
      {{"--out", "x", "--epochs"}, "needs a value"},
      {{"--out", "x", "--epochs", "many"}, "expects a int"},
      {{"--out", "x", "--scale", "wide"}, "expects a float"},
      {{"--out", "x", "--lines", "yes"}, "expects a bool"},
      {{"--city", "BJ"}, "--out is required"},
      {{"out", "x"}, "expected --flag"},
  };
  for (const Case& c : cases) {
    FlagSet flags = TestFlags();
    Argv argv(c.args);
    std::string error;
    EXPECT_FALSE(flags.Parse(argv.argc(), argv.argv(), 2, &error));
    EXPECT_NE(error.find(c.needle), std::string::npos) << error;
  }
}

TEST(FlagsTest, HelpShortCircuitsValidation) {
  for (const char* help : {"--help", "-h"}) {
    FlagSet flags = TestFlags();
    Argv argv({help});  // --out missing, but help wins.
    std::string error;
    ASSERT_TRUE(flags.Parse(argv.argc(), argv.argv(), 2, &error)) << error;
    EXPECT_TRUE(flags.help_requested());
  }
}

TEST(FlagsTest, UsageListsRequiredFlagsFirst) {
  FlagSet flags = TestFlags();
  std::string usage = flags.Usage();
  EXPECT_NE(usage.find("usage: sarn cmd"), std::string::npos);
  EXPECT_NE(usage.find("a test command"), std::string::npos);
  size_t out_pos = usage.find("--out");
  size_t city_pos = usage.find("--city");
  ASSERT_NE(out_pos, std::string::npos);
  ASSERT_NE(city_pos, std::string::npos);
  EXPECT_LT(out_pos, city_pos);  // Required before optional.
  EXPECT_NE(usage.find("(required)"), std::string::npos);
  EXPECT_NE(usage.find("default: CD"), std::string::npos);
  EXPECT_NE(usage.find("epoch count"), std::string::npos);
}

TEST(FlagsTest, LastValueWins) {
  FlagSet flags = TestFlags();
  Argv argv({"--out", "a", "--out", "b"});
  std::string error;
  ASSERT_TRUE(flags.Parse(argv.argc(), argv.argv(), 2, &error)) << error;
  EXPECT_EQ(flags.GetString("out"), "b");
}

}  // namespace
}  // namespace sarn
