// Randomized round-trip fuzzing of the CSV layer: arbitrary field content
// (including delimiters, quotes, unicode bytes) must survive
// escape -> write -> read -> parse unchanged.

#include "common/csv.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace sarn {
namespace {

std::string RandomField(Rng& rng) {
  static const std::string alphabet =
      "abcXYZ0189 ,\"'\t;|%$#@!()[]{}<>\\/.:-_+=~`\xc3\xa9\xe4\xb8\xad";
  size_t length = static_cast<size_t>(rng.UniformInt(0, 24));
  std::string field;
  for (size_t i = 0; i < length; ++i) {
    field.push_back(alphabet[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(alphabet.size()) - 1))]);
  }
  return field;
}

TEST(CsvFuzzTest, EscapeParseRoundTripOnRandomRows) {
  Rng rng(20240706);
  for (int trial = 0; trial < 500; ++trial) {
    size_t columns = static_cast<size_t>(rng.UniformInt(1, 8));
    std::vector<std::string> row;
    std::string line;
    for (size_t c = 0; c < columns; ++c) {
      row.push_back(RandomField(rng));
      if (c > 0) line += ',';
      line += EscapeCsvField(row.back());
    }
    std::vector<std::string> parsed = ParseCsvLine(line);
    ASSERT_EQ(parsed.size(), row.size()) << "trial " << trial << " line: " << line;
    for (size_t c = 0; c < columns; ++c) {
      ASSERT_EQ(parsed[c], row[c]) << "trial " << trial << " column " << c;
    }
  }
}

TEST(CsvFuzzTest, FileRoundTripOnRandomTables) {
  Rng rng(77);
  std::string path = testing::TempDir() + "/sarn_csv_fuzz.csv";
  for (int trial = 0; trial < 20; ++trial) {
    CsvTable table;
    size_t columns = static_cast<size_t>(rng.UniformInt(1, 6));
    for (size_t c = 0; c < columns; ++c) table.header.push_back("col" + std::to_string(c));
    size_t rows = static_cast<size_t>(rng.UniformInt(1, 30));
    for (size_t r = 0; r < rows; ++r) {
      std::vector<std::string> row;
      for (size_t c = 0; c < columns; ++c) {
        std::string field = RandomField(rng);
        // Newlines inside fields are out of dialect scope; strip them.
        std::erase(field, '\n');
        std::erase(field, '\r');
        row.push_back(field);
      }
      table.rows.push_back(row);
    }
    ASSERT_TRUE(WriteCsvFile(path, table));
    auto loaded = ReadCsvFile(path, /*has_header=*/true);
    ASSERT_TRUE(loaded.has_value());
    ASSERT_EQ(loaded->header, table.header) << "trial " << trial;
    // Empty-file dialect nuance: rows that are entirely empty strings write
    // as blank-ish lines; compare only field contents of surviving rows.
    ASSERT_EQ(loaded->rows.size(), table.rows.size()) << "trial " << trial;
    for (size_t r = 0; r < table.rows.size(); ++r) {
      ASSERT_EQ(loaded->rows[r], table.rows[r]) << "trial " << trial << " row " << r;
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sarn
