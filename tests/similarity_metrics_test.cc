#include "traj/similarity_metrics.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "traj/frechet.h"

namespace sarn::traj {
namespace {

class MetricsGeomTest : public testing::Test {
 protected:
  MetricsGeomTest() : proj_(geo::LatLng{30.0, 104.0}) {}

  std::vector<geo::LatLng> Line(double y, int n, double step = 100.0) {
    std::vector<geo::LatLng> points;
    for (int i = 0; i < n; ++i) points.push_back(proj_.ToLatLng(i * step, y));
    return points;
  }

  geo::LocalProjection proj_;
};

TEST_F(MetricsGeomTest, DtwZeroForIdentical) {
  auto a = Line(0.0, 8);
  EXPECT_NEAR(DynamicTimeWarping(a, a), 0.0, 1e-9);
}

TEST_F(MetricsGeomTest, DtwParallelLines) {
  // Each of the 10 aligned pairs contributes the 200 m offset.
  auto a = Line(0.0, 10);
  auto b = Line(200.0, 10);
  EXPECT_NEAR(DynamicTimeWarping(a, b), 10 * 200.0, 30.0);
}

TEST_F(MetricsGeomTest, DtwSymmetric) {
  auto a = Line(0.0, 7);
  auto b = Line(150.0, 4);
  EXPECT_NEAR(DynamicTimeWarping(a, b), DynamicTimeWarping(b, a), 1e-9);
}

TEST_F(MetricsGeomTest, DtwHandlesDifferentSamplingRates) {
  // The same physical path sampled at 2x density: the 4 extra odd samples
  // each align to a coarse point 100 m away, so DTW = 4 * 100 m — and the
  // monotone alignment keeps it far below the same offset applied laterally.
  auto coarse = Line(0.0, 5, 200.0);
  auto fine = Line(0.0, 9, 100.0);
  EXPECT_NEAR(DynamicTimeWarping(coarse, fine), 400.0, 20.0);
  auto shifted = Line(400.0, 9, 100.0);
  EXPECT_GT(DynamicTimeWarping(coarse, shifted), DynamicTimeWarping(coarse, fine) * 4);
}

TEST_F(MetricsGeomTest, HausdorffZeroForIdentical) {
  auto a = Line(0.0, 8);
  EXPECT_NEAR(HausdorffDistance(a, a), 0.0, 1e-9);
}

TEST_F(MetricsGeomTest, HausdorffParallelLinesIsOffset) {
  auto a = Line(0.0, 10);
  auto b = Line(250.0, 10);
  EXPECT_NEAR(HausdorffDistance(a, b), 250.0, 2.0);
}

TEST_F(MetricsGeomTest, HausdorffOrderInvariant) {
  // Unlike Fréchet, Hausdorff ignores point order.
  auto a = Line(0.0, 12);
  auto reversed = a;
  std::reverse(reversed.begin(), reversed.end());
  EXPECT_NEAR(HausdorffDistance(a, reversed), 0.0, 1e-9);
  EXPECT_GT(DiscreteFrechet(a, reversed), 900.0);
}

TEST_F(MetricsGeomTest, HausdorffSymmetricOnRandomCurves) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<geo::LatLng> a, b;
    for (int i = 0; i < 6; ++i) {
      a.push_back(proj_.ToLatLng(rng.Uniform(0, 1000), rng.Uniform(0, 1000)));
      b.push_back(proj_.ToLatLng(rng.Uniform(0, 1000), rng.Uniform(0, 1000)));
    }
    EXPECT_NEAR(HausdorffDistance(a, b), HausdorffDistance(b, a), 1e-9);
  }
}

TEST_F(MetricsGeomTest, MetricOrderingRelations) {
  // For equal-length curves: Hausdorff <= Fréchet (coupling is a valid
  // witness for every point's nearest neighbor bound).
  Rng rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<geo::LatLng> a, b;
    for (int i = 0; i < 7; ++i) {
      a.push_back(proj_.ToLatLng(rng.Uniform(0, 1500), rng.Uniform(0, 1500)));
      b.push_back(proj_.ToLatLng(rng.Uniform(0, 1500), rng.Uniform(0, 1500)));
    }
    EXPECT_LE(HausdorffDistance(a, b), DiscreteFrechet(a, b) + 1e-6);
    // DTW (a sum) dominates Fréchet (a max) for curves of length >= 1.
    EXPECT_GE(DynamicTimeWarping(a, b) + 1e-6, DiscreteFrechet(a, b));
  }
}

TEST_F(MetricsGeomTest, DispatchMatchesDirectCalls) {
  auto a = Line(0.0, 6);
  auto b = Line(120.0, 9);
  EXPECT_DOUBLE_EQ(TrajectoryDistance(SimilarityMetric::kFrechet, a, b),
                   DiscreteFrechet(a, b));
  EXPECT_DOUBLE_EQ(TrajectoryDistance(SimilarityMetric::kDtw, a, b),
                   DynamicTimeWarping(a, b));
  EXPECT_DOUBLE_EQ(TrajectoryDistance(SimilarityMetric::kHausdorff, a, b),
                   HausdorffDistance(a, b));
}

}  // namespace
}  // namespace sarn::traj
