#include "tasks/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

namespace sarn::tasks {
namespace {

TEST(MetricsTest, MicroF1PerfectAndZero) {
  EXPECT_DOUBLE_EQ(MicroF1({0, 1, 2}, {0, 1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(MicroF1({1, 2, 0}, {0, 1, 2}), 0.0);
  EXPECT_DOUBLE_EQ(MicroF1({0, 1, 0}, {0, 1, 2}), 2.0 / 3.0);
}

TEST(MetricsTest, MacroF1BalancesClasses) {
  // Predicting the majority class everywhere: micro is high, macro is low.
  std::vector<int64_t> actual = {0, 0, 0, 0, 0, 0, 0, 0, 0, 1};
  std::vector<int64_t> predicted(10, 0);
  EXPECT_DOUBLE_EQ(MicroF1(predicted, actual), 0.9);
  double macro = MacroF1(predicted, actual);
  EXPECT_LT(macro, 0.6);
  EXPECT_GT(macro, 0.4);  // (F1_0 ~ 0.947 + F1_1 = 0) / 2.
}

TEST(MetricsTest, MacroF1Perfect) {
  EXPECT_DOUBLE_EQ(MacroF1({0, 1, 1, 2}, {0, 1, 1, 2}), 1.0);
}

TEST(MetricsTest, AucPerfectSeparation) {
  std::vector<std::vector<double>> scores = {{0.9, 0.1}, {0.8, 0.2}, {0.1, 0.9},
                                             {0.2, 0.8}};
  std::vector<int64_t> actual = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(MacroAuc(scores, actual, 2), 1.0);
}

TEST(MetricsTest, AucRandomScoresNearHalf) {
  // Scores identical for all samples: AUC = 0.5 by midrank ties.
  std::vector<std::vector<double>> scores(10, {0.5, 0.5});
  std::vector<int64_t> actual = {0, 1, 0, 1, 0, 1, 0, 1, 0, 1};
  EXPECT_NEAR(MacroAuc(scores, actual, 2), 0.5, 1e-9);
}

TEST(MetricsTest, AucInvertedScoresIsZero) {
  std::vector<std::vector<double>> scores = {{0.1, 0.9}, {0.9, 0.1}};
  std::vector<int64_t> actual = {0, 1};
  EXPECT_DOUBLE_EQ(MacroAuc(scores, actual, 2), 0.0);
}

TEST(MetricsTest, AucSkipsDegenerateClasses) {
  // Class 1 never appears: only class 0 (all-positive -> skipped too).
  std::vector<std::vector<double>> scores = {{0.9, 0.1}, {0.8, 0.2}};
  std::vector<int64_t> actual = {0, 0};
  EXPECT_DOUBLE_EQ(MacroAuc(scores, actual, 2), 0.0);  // Nothing usable.
}

TEST(MetricsTest, NmiIdenticalLabelings) {
  EXPECT_NEAR(NormalizedMutualInformation({0, 1, 2, 0}, {5, 7, 9, 5}), 1.0, 1e-9);
}

TEST(MetricsTest, NmiIndependentLabelings) {
  // Perfectly independent: each combination equally likely.
  std::vector<int64_t> a = {0, 0, 1, 1};
  std::vector<int64_t> b = {0, 1, 0, 1};
  EXPECT_NEAR(NormalizedMutualInformation(a, b), 0.0, 1e-9);
}

TEST(MetricsTest, NmiPartialCorrelationBetween) {
  std::vector<int64_t> a = {0, 0, 0, 1, 1, 1};
  std::vector<int64_t> b = {0, 0, 1, 1, 1, 0};
  double nmi = NormalizedMutualInformation(a, b);
  EXPECT_GT(nmi, 0.0);
  EXPECT_LT(nmi, 1.0);
}

TEST(MetricsTest, NmiSymmetric) {
  std::vector<int64_t> a = {0, 1, 2, 0, 1, 2, 1};
  std::vector<int64_t> b = {1, 1, 0, 0, 1, 0, 1};
  EXPECT_NEAR(NormalizedMutualInformation(a, b), NormalizedMutualInformation(b, a),
              1e-12);
}

TEST(MetricsTest, HitRatioExamples) {
  std::vector<int64_t> truth = {1, 2, 3, 4, 5, 6, 7};
  EXPECT_DOUBLE_EQ(HitRatioAtK({1, 2, 3, 4, 5, 9, 9}, truth, 5), 1.0);
  EXPECT_DOUBLE_EQ(HitRatioAtK({1, 2, 9, 9, 9, 3, 4}, truth, 5), 0.4);
  EXPECT_DOUBLE_EQ(HitRatioAtK({9, 8, 10, 11, 12, 1, 2}, truth, 5), 0.0);
}

TEST(MetricsTest, RecallTopAInB) {
  std::vector<int64_t> truth = {1, 2, 3, 4, 5};
  // All of truth's top-5 appear somewhere in predicted top-20.
  std::vector<int64_t> predicted;
  for (int64_t i = 20; i >= 1; --i) predicted.push_back(i);
  EXPECT_DOUBLE_EQ(RecallTopAInB(predicted, truth, 5, 20), 1.0);
  // Only 2 of the top-5 appear in the first 20 slots.
  std::vector<int64_t> predicted2 = {1, 2};
  for (int64_t i = 100; i < 118; ++i) predicted2.push_back(i);
  EXPECT_DOUBLE_EQ(RecallTopAInB(predicted2, truth, 5, 20), 0.4);
}

TEST(MetricsTest, MaeAndMre) {
  std::vector<double> predicted = {100, 300};
  std::vector<double> actual = {200, 200};
  EXPECT_DOUBLE_EQ(MeanAbsoluteError(predicted, actual), 100.0);
  EXPECT_DOUBLE_EQ(MeanRelativeError(predicted, actual), 0.5);
}

TEST(MetricsTest, MreFloorGuardsAgainstTinyActuals) {
  std::vector<double> predicted = {10.0};
  std::vector<double> actual = {0.001};
  EXPECT_LT(MeanRelativeError(predicted, actual, 1.0), 11.0);
}

}  // namespace
}  // namespace sarn::tasks
