#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "nn/gat.h"
#include "roadnet/geojson.h"
#include "roadnet/synthetic_city.h"
#include "tensor/ops.h"
#include "tensor/pca.h"

namespace sarn {
namespace {

using tensor::Tensor;

TEST(PcaTest, RecoversDominantDirection) {
  // Points along the direction (3, 4)/5 with small orthogonal noise.
  Rng rng(1);
  std::vector<float> data;
  for (int i = 0; i < 200; ++i) {
    float t = static_cast<float>(rng.Normal(0.0, 3.0));
    float noise = static_cast<float>(rng.Normal(0.0, 0.1));
    data.push_back(0.6f * t - 0.8f * noise);
    data.push_back(0.8f * t + 0.6f * noise);
  }
  Tensor x = Tensor::FromVector({200, 2}, std::move(data));
  tensor::PcaResult pca = tensor::Pca(x, 2);
  // First axis must align with (0.6, 0.8) up to sign.
  float axis_x = pca.components.at(0, 0);
  float axis_y = pca.components.at(0, 1);
  float alignment = std::fabs(axis_x * 0.6f + axis_y * 0.8f);
  EXPECT_GT(alignment, 0.99f);
  EXPECT_GT(pca.explained_variance[0], pca.explained_variance[1] * 10);
}

TEST(PcaTest, ComponentsAreOrthonormal) {
  Rng rng(2);
  Tensor x = Tensor::Randn({50, 6}, rng);
  tensor::PcaResult pca = tensor::Pca(x, 3);
  for (int a = 0; a < 3; ++a) {
    double norm = 0, cross = 0;
    for (int64_t j = 0; j < 6; ++j) {
      norm += pca.components.at(a, j) * pca.components.at(a, j);
      if (a + 1 < 3) cross += pca.components.at(a, j) * pca.components.at(a + 1, j);
    }
    EXPECT_NEAR(norm, 1.0, 1e-3);
    EXPECT_NEAR(cross, 0.0, 0.05);
  }
}

TEST(PcaTest, ProjectionsAreCentered) {
  Rng rng(3);
  Tensor x = tensor::AddScalar(Tensor::Randn({80, 4}, rng), 5.0f);
  tensor::PcaResult pca = tensor::Pca(x, 2);
  for (int c = 0; c < 2; ++c) {
    double mean = 0;
    for (int64_t i = 0; i < 80; ++i) mean += pca.projections.at(i, c);
    EXPECT_NEAR(mean / 80.0, 0.0, 1e-3);
  }
}

TEST(PcaTest, ExplainedVarianceDescending) {
  Rng rng(4);
  Tensor x = Tensor::Randn({60, 8}, rng);
  tensor::PcaResult pca = tensor::Pca(x, 4);
  for (size_t c = 1; c < pca.explained_variance.size(); ++c) {
    EXPECT_GE(pca.explained_variance[c - 1] + 1e-9, pca.explained_variance[c]);
  }
}

TEST(GeoJsonTest, ColorRampEndpoints) {
  EXPECT_EQ(roadnet::ValueToHexColor(0.0, 0.0, 1.0), "#283cff");  // Blue end.
  EXPECT_EQ(roadnet::ValueToHexColor(1.0, 0.0, 1.0), "#ff3c28");  // Red end.
  // Degenerate range maps to midpoint, not NaN.
  std::string mid = roadnet::ValueToHexColor(0.5, 0.5, 0.5);
  EXPECT_EQ(mid.size(), 7u);
}

TEST(GeoJsonTest, ExportsValidStructure) {
  roadnet::SyntheticCityConfig city;
  city.rows = 6;
  city.cols = 6;
  roadnet::RoadNetwork network = roadnet::GenerateSyntheticCity(city);
  std::string path = testing::TempDir() + "/sarn_export.geojson";
  roadnet::GeoJsonOptions options;
  for (int64_t i = 0; i < network.num_segments(); ++i) {
    options.values.push_back(static_cast<double>(i));
  }
  ASSERT_TRUE(ExportGeoJson(network, path, options));

  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string content = buffer.str();
  EXPECT_NE(content.find("FeatureCollection"), std::string::npos);
  EXPECT_NE(content.find("LineString"), std::string::npos);
  EXPECT_NE(content.find("\"color\":\"#"), std::string::npos);
  EXPECT_NE(content.find("\"highway\":\"motorway\""), std::string::npos);
  // One feature per segment.
  size_t features = 0;
  for (size_t pos = content.find("\"type\":\"Feature\""); pos != std::string::npos;
       pos = content.find("\"type\":\"Feature\"", pos + 1)) {
    ++features;
  }
  EXPECT_EQ(features, static_cast<size_t>(network.num_segments()));
  // Balanced braces (cheap well-formedness check).
  int64_t depth = 0;
  for (char c : content) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  std::remove(path.c_str());
}

TEST(UniformAggregationTest, AlphaIsUniformWithoutAttention) {
  Rng rng(5);
  nn::GatLayer uniform(4, 4, 1, true, nn::Activation::kNone, rng, 0.2f,
                       /*add_self_loops=*/false, /*residual=*/false,
                       /*use_attention=*/false);
  // Two sources into vertex 0: output must be the mean of the two messages.
  Tensor x = Tensor::Randn({3, 4}, rng);
  nn::EdgeList edges;
  edges.Add(1, 0);
  edges.Add(2, 0);
  Tensor y = uniform.Forward(x, edges);
  // Compare against manual mean of W x_1 and W x_2 via single-edge passes.
  nn::EdgeList only1, only2;
  only1.Add(1, 0);
  only2.Add(2, 0);
  Tensor y1 = uniform.Forward(x, only1);
  Tensor y2 = uniform.Forward(x, only2);
  for (int64_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(y.at(0, j), (y1.at(0, j) + y2.at(0, j)) / 2.0f, 1e-5f);
  }
}

TEST(UniformAggregationTest, EncoderRunsWithoutAttention) {
  Rng rng(6);
  nn::GatEncoder encoder(6, 8, 4, 2, 2, rng, /*use_attention=*/false);
  nn::EdgeList edges;
  edges.Add(0, 1);
  edges.Add(1, 2);
  Tensor h = encoder.Forward(Tensor::Randn({3, 6}, rng), edges);
  EXPECT_EQ(h.shape(), (tensor::Shape{3, 4}));
  for (float v : h.data()) EXPECT_TRUE(std::isfinite(v));
}

}  // namespace
}  // namespace sarn
