#include "nn/sequence_util.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/ops.h"

namespace sarn::nn {
namespace {

using tensor::Tensor;

class SequenceUtilTest : public testing::Test {
 protected:
  SequenceUtilTest() : rng_(1), gru_(4, 6, 1, rng_), table_(Tensor::Randn({20, 4}, rng_)) {}

  Rng rng_;
  Gru gru_;
  Tensor table_;
};

TEST_F(SequenceUtilTest, OutputShape) {
  std::vector<std::vector<int64_t>> sequences = {{0, 1, 2}, {3, 4}, {5, 6, 7, 8}};
  Tensor out = EmbedSequences(gru_, table_, sequences);
  EXPECT_EQ(out.shape(), (tensor::Shape{3, 6}));
}

TEST_F(SequenceUtilTest, MatchesSequentialEvaluation) {
  // Batched-by-length evaluation must equal embedding each sequence alone.
  std::vector<std::vector<int64_t>> sequences = {{0, 1, 2}, {5, 9, 2}, {3, 4},
                                                 {7, 7}, {1, 2, 3}};
  Tensor batched = EmbedSequences(gru_, table_, sequences);
  for (size_t i = 0; i < sequences.size(); ++i) {
    Tensor single = EmbedSequences(gru_, table_, {sequences[i]});
    for (int64_t j = 0; j < 6; ++j) {
      EXPECT_NEAR(batched.at(static_cast<int64_t>(i), j), single.at(0, j), 1e-5f)
          << "sequence " << i << " dim " << j;
    }
  }
}

TEST_F(SequenceUtilTest, OrderOfResultsMatchesInputOrder) {
  // Two sequences of different lengths in "interleaved" order: results must
  // not be grouped-by-length in the output.
  std::vector<std::vector<int64_t>> sequences = {{0, 1, 2, 3}, {4, 5}, {6, 7, 8, 9}};
  Tensor out = EmbedSequences(gru_, table_, sequences);
  Tensor middle = EmbedSequences(gru_, table_, {sequences[1]});
  for (int64_t j = 0; j < 6; ++j) {
    EXPECT_NEAR(out.at(1, j), middle.at(0, j), 1e-5f);
  }
}

TEST_F(SequenceUtilTest, GradientsFlowIntoItemTable) {
  Tensor table = Tensor::Randn({10, 4}, rng_, 0.5f).RequiresGrad();
  std::vector<std::vector<int64_t>> sequences = {{0, 1}, {2, 3, 4}};
  Tensor out = EmbedSequences(gru_, table, sequences);
  tensor::Sum(out).Backward();
  double used = 0, unused = 0;
  for (int64_t row = 0; row < 10; ++row) {
    double norm = 0;
    for (int64_t j = 0; j < 4; ++j) {
      norm += std::fabs(table.grad()[static_cast<size_t>(row * 4 + j)]);
    }
    if (row <= 4) {
      used += norm;
    } else {
      unused += norm;
    }
  }
  EXPECT_GT(used, 0.0);
  EXPECT_EQ(unused, 0.0);
}

TEST_F(SequenceUtilTest, SingleSequenceSingleStep) {
  Tensor out = EmbedSequences(gru_, table_, {{7}});
  EXPECT_EQ(out.shape(), (tensor::Shape{1, 6}));
}

}  // namespace
}  // namespace sarn::nn
