// Storage-plane tests (DESIGN.md §11): size-class recycling, zero-copy
// views, TapeFn closure storage, concurrent acquire/release (exercised under
// TSan by tools/verify.sh), and the allocation-free steady-state guarantee
// for a full train step (forward + backward + optimizer step).

#include "tensor/storage.h"

#include <array>
#include <atomic>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "nn/gat.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"
#include "tensor/tensor.h"

namespace sarn::tensor {
namespace {

TEST(BufferPoolTest, ReleasedBlockIsReusedForSameClass) {
  // Warm the class so the first acquire below is not a miss.
  { Storage warm = Storage::Uninitialized(10); }
  PoolStats before = GetPoolStats();
  const float* first_ptr = nullptr;
  {
    Storage a = Storage::Uninitialized(10);  // 40 B -> 64 B class.
    first_ptr = a.data();
  }
  Storage b = Storage::Uninitialized(12);  // 48 B -> same class.
  EXPECT_EQ(b.data(), first_ptr);
  PoolStats after = GetPoolStats();
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_GE(after.hits, before.hits + 2);
}

TEST(BufferPoolTest, LiveBytesTracksCheckedOutStorage) {
  PoolStats before = GetPoolStats();
  {
    Storage a = Storage::Uninitialized(100);
    PoolStats during = GetPoolStats();
    EXPECT_GT(during.live_bytes, before.live_bytes);
  }
  PoolStats after = GetPoolStats();
  EXPECT_EQ(after.live_bytes, before.live_bytes);
}

TEST(StorageTest, ZeroedIsZeroFilled) {
  // Dirty a block first so recycling would expose stale bytes.
  {
    Storage dirty = Storage::Uninitialized(64);
    dirty.Fill(3.5f);
  }
  Storage z = Storage::Zeroed(64);
  for (size_t i = 0; i < z.size(); ++i) EXPECT_EQ(z[i], 0.0f) << i;
}

TEST(StorageTest, ViewIsZeroCopyAndKeepsBlockAlive) {
  Storage base = Storage::Uninitialized(16);
  for (size_t i = 0; i < 16; ++i) base[i] = static_cast<float>(i);
  Storage view = Storage::View(base, 4, 8);
  EXPECT_TRUE(view.is_view());
  EXPECT_EQ(view.data(), base.data() + 4);  // Same memory, no copy.
  EXPECT_EQ(view.size(), 8u);
  EXPECT_EQ(view[0], 4.0f);
  base[5] = 99.0f;
  EXPECT_EQ(view[1], 99.0f);
  // The view's reference keeps the block checked out after the base handle
  // goes away.
  base.Reset();
  EXPECT_EQ(view[0], 4.0f);
  EXPECT_EQ(view[7], 11.0f);
}

TEST(StorageTest, ResizeWithinClassKeepsBlock) {
  Storage s = Storage::Uninitialized(100);
  const float* ptr = s.data();
  s.Resize(50);  // Same 512 B class.
  EXPECT_EQ(s.data(), ptr);
  EXPECT_EQ(s.size(), 50u);
}

TEST(StorageTest, CopySemanticsAndEquality) {
  Storage a = Storage::Of({1.0f, 2.0f, 3.0f});
  Storage b;
  b.CopyFrom(a);
  EXPECT_TRUE(a == b);
  EXPECT_NE(a.data(), b.data());
  b[1] = 7.0f;
  EXPECT_FALSE(a == b);
  std::vector<float> v = {1.0f, 2.0f, 3.0f};
  EXPECT_TRUE(a == v);
  EXPECT_EQ(a.ToVector(), v);
}

TEST(TapeFnTest, InlineClosureInvokes) {
  int calls = 0;
  internal::TensorImpl impl;
  TapeFn fn([&calls](internal::TensorImpl&) { ++calls; });
  fn(impl);
  EXPECT_EQ(calls, 1);
  TapeFn moved = std::move(fn);
  moved(impl);
  EXPECT_EQ(calls, 2);
}

TEST(TapeFnTest, LargeClosureUsesPoolNotHeap) {
  PoolStats before = GetPoolStats();
  {
    // 256 B of captured state overflows the inline buffer.
    std::array<float, 64> big{};
    big[0] = 1.0f;
    float sink = 0;
    TapeFn fn([big, &sink](internal::TensorImpl&) { sink += big[0]; });
    TapeFn moved = std::move(fn);  // Heap closures move by pointer steal.
    internal::TensorImpl impl;
    moved(impl);
    EXPECT_EQ(sink, 1.0f);
  }
  PoolStats after = GetPoolStats();
  EXPECT_EQ(after.live_bytes, before.live_bytes);  // Closure block returned.
}

TEST(BufferPoolTest, ConcurrentAcquireReleaseAndCrossThreadHandoff) {
  constexpr int kThreads = 4;
  constexpr int kIters = 400;
  std::mutex handoff_mu;
  std::vector<Storage> handoff;
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      for (int i = 0; i < kIters; ++i) {
        size_t n = 16u << (i % 6);
        Storage s = Storage::Uninitialized(n);
        s[0] = static_cast<float>(t);
        s[n - 1] = static_cast<float>(i);
        if (i % 7 == 0) {
          // Publish so another thread releases a block this thread acquired.
          std::lock_guard<std::mutex> lock(handoff_mu);
          handoff.push_back(std::move(s));
          if (handoff.size() > 8) handoff.erase(handoff.begin());
        }
      }
      BufferPool::Instance().FlushThreadCache();
    });
  }
  for (std::thread& t : threads) t.join();
  handoff.clear();
  PoolStats stats = GetPoolStats();
  EXPECT_GE(stats.hits + stats.misses, static_cast<uint64_t>(kThreads * kIters));
}

TEST(TapeNodeTest, NoGradModeBuildsNoTapeNodes) {
  Rng rng(1);
  Tensor a = Tensor::Randn({8, 8}, rng).RequiresGrad();
  Tensor b = Tensor::Randn({8, 8}, rng).RequiresGrad();
  uint64_t before = internal::TapeNodeCount();
  {
    NoGradGuard guard;
    Tensor c = MatMul(a, b);
    Tensor d = Relu(Add(c, b));
    (void)d;
  }
  EXPECT_EQ(internal::TapeNodeCount(), before);
  Tensor c = MatMul(a, b);  // Grad mode on: this records a node.
  (void)c;
  EXPECT_GT(internal::TapeNodeCount(), before);
}

// One full GAT training step: forward, loss, backward, Adam step. Used by the
// leak and steady-state tests below.
struct TrainStepHarness {
  TrainStepHarness()
      : rng(7),
        layer(32, 16, 4, /*concat_heads=*/true, nn::Activation::kElu, rng),
        params(layer.Parameters()),
        optimizer(params, 1e-3f),
        x(Tensor::Randn({64, 32}, rng)) {
    for (int64_t v = 0; v + 1 < 64; ++v) {
      edges.Add(v, v + 1);
      edges.Add(v + 1, v);
    }
  }

  void Step() {
    optimizer.ZeroGrad();
    Tensor y = layer.Forward(x, edges);
    Tensor loss = Mean(Square(RowL2Normalize(y)));
    loss.Backward();
    optimizer.Step();
  }

  Rng rng;
  nn::GatLayer layer;
  std::vector<Tensor> params;
  Adam optimizer;
  Tensor x;
  nn::EdgeList edges;
};

TEST(StepScopeTest, TrainStepReturnsAllTransientStorageToPool) {
  TrainStepHarness harness;
  harness.Step();  // Warm-up: creates grads and Adam state.
  PoolStats baseline = GetPoolStats();
  for (int i = 0; i < 3; ++i) {
    harness.Step();
    PoolStats now = GetPoolStats();
    // Everything acquired during the step (activations, tape closures,
    // backward scratch) must be checked back in; only params/grads persist.
    EXPECT_EQ(now.live_bytes, baseline.live_bytes) << "step " << i;
  }
}

TEST(StepScopeTest, SteadyStateStepHasZeroPoolMisses) {
  TrainStepHarness harness;
  harness.Step();
  harness.Step();  // Two warm-up steps populate every size class used.
  for (int i = 0; i < 3; ++i) {
    StepScope scope;
    harness.Step();
    EXPECT_EQ(scope.pool_misses(), 0u) << "step " << i;
  }
}

}  // namespace
}  // namespace sarn::tensor
