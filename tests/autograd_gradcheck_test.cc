// Property-based verification of every differentiable op: the analytic
// gradient produced by Backward() must match central finite differences of
// the forward function, for randomized inputs.

#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace sarn::tensor {
namespace {

struct OpCase {
  std::string name;
  // Builds the op output from inputs (not yet reduced to scalar).
  std::function<Tensor(const std::vector<Tensor>&)> op;
  std::vector<Shape> input_shapes;
  bool positive_inputs = false;  // For log/sqrt/div domains.
};

// Projects an op output to a scalar with fixed pseudo-random weights, so the
// check exercises non-uniform upstream gradients.
Tensor ProjectToScalar(const Tensor& out, uint64_t seed) {
  Rng rng(seed);
  Tensor weights = Tensor::Uniform({out.numel()}, rng, 0.5f, 1.5f);
  Tensor flat = out.rank() == 1 ? out : Reshape(out, {out.numel()});
  return Sum(Mul(flat, weights));
}

class GradCheckTest : public testing::TestWithParam<OpCase> {};

TEST_P(GradCheckTest, AnalyticMatchesNumeric) {
  const OpCase& c = GetParam();
  Rng rng(1234);
  std::vector<Tensor> inputs;
  for (const Shape& shape : c.input_shapes) {
    Tensor t = c.positive_inputs ? Tensor::Uniform(shape, rng, 0.5f, 2.0f)
                                 : Tensor::Uniform(shape, rng, -1.5f, 1.5f);
    t.RequiresGrad();
    inputs.push_back(t);
  }

  Tensor loss = ProjectToScalar(c.op(inputs), /*seed=*/99);
  loss.Backward();

  const float eps = 1e-3f;
  for (size_t t = 0; t < inputs.size(); ++t) {
    std::vector<float> analytic = inputs[t].grad().ToVector();
    for (size_t i = 0; i < analytic.size(); ++i) {
      float original = inputs[t].data()[i];
      NoGradGuard guard;
      inputs[t].mutable_data()[i] = original + eps;
      float up = ProjectToScalar(c.op(inputs), 99).item();
      inputs[t].mutable_data()[i] = original - eps;
      float down = ProjectToScalar(c.op(inputs), 99).item();
      inputs[t].mutable_data()[i] = original;
      float numeric = (up - down) / (2.0f * eps);
      float scale = std::max({1.0f, std::fabs(numeric), std::fabs(analytic[i])});
      EXPECT_NEAR(analytic[i], numeric, 0.02f * scale)
          << c.name << " input " << t << " element " << i;
    }
  }
}

std::vector<OpCase> MakeCases() {
  std::vector<OpCase> cases;
  auto add = [&cases](std::string name, std::function<Tensor(const std::vector<Tensor>&)> op,
                      std::vector<Shape> shapes, bool positive = false) {
    cases.push_back({std::move(name), std::move(op), std::move(shapes), positive});
  };

  add("Add", [](const auto& in) { return Add(in[0], in[1]); }, {{3, 4}, {3, 4}});
  add("AddRowBroadcast", [](const auto& in) { return Add(in[0], in[1]); }, {{3, 4}, {4}});
  add("AddScalarTensor", [](const auto& in) { return Add(in[0], in[1]); }, {{3, 4}, {1}});
  add("Sub", [](const auto& in) { return Sub(in[0], in[1]); }, {{3, 4}, {3, 4}});
  add("SubRowBroadcast", [](const auto& in) { return Sub(in[0], in[1]); }, {{3, 4}, {4}});
  add("SubSmallerLeft", [](const auto& in) { return Sub(in[0], in[1]); }, {{1}, {5}});
  add("Mul", [](const auto& in) { return Mul(in[0], in[1]); }, {{3, 4}, {3, 4}});
  add("MulRowBroadcast", [](const auto& in) { return Mul(in[0], in[1]); }, {{3, 4}, {4}});
  add("Div", [](const auto& in) { return Div(in[0], in[1]); }, {{3, 4}, {3, 4}}, true);
  add("DivRowBroadcast", [](const auto& in) { return Div(in[0], in[1]); }, {{3, 4}, {4}},
      true);
  add("DivSmallerLeft", [](const auto& in) { return Div(in[0], in[1]); }, {{1}, {5}},
      true);
  add("AddScalar", [](const auto& in) { return AddScalar(in[0], 2.5f); }, {{3, 3}});
  add("MulScalar", [](const auto& in) { return MulScalar(in[0], -1.7f); }, {{3, 3}});
  add("Neg", [](const auto& in) { return Neg(in[0]); }, {{4}});
  add("Exp", [](const auto& in) { return Exp(in[0]); }, {{3, 3}});
  add("Log", [](const auto& in) { return Log(in[0]); }, {{3, 3}}, true);
  add("Sqrt", [](const auto& in) { return Sqrt(in[0]); }, {{3, 3}}, true);
  add("Square", [](const auto& in) { return Square(in[0]); }, {{3, 3}});
  add("Relu", [](const auto& in) { return Relu(in[0]); }, {{4, 4}});
  add("LeakyRelu", [](const auto& in) { return LeakyRelu(in[0], 0.2f); }, {{4, 4}});
  add("Elu", [](const auto& in) { return Elu(in[0]); }, {{4, 4}});
  add("Sigmoid", [](const auto& in) { return Sigmoid(in[0]); }, {{4, 4}});
  add("Tanh", [](const auto& in) { return Tanh(in[0]); }, {{4, 4}});
  add("ClampMinPositive", [](const auto& in) { return ClampMin(in[0], 0.01f); }, {{4}},
      true);
  add("MatMul", [](const auto& in) { return MatMul(in[0], in[1]); }, {{3, 4}, {4, 2}});
  add("MatMulTall", [](const auto& in) { return MatMul(in[0], in[1]); }, {{5, 2}, {2, 5}});
  add("Transpose", [](const auto& in) { return Transpose(in[0]); }, {{3, 5}});
  add("Reshape", [](const auto& in) { return Reshape(in[0], {2, 6}); }, {{3, 4}});
  add("Sum", [](const auto& in) { return Sum(in[0]); }, {{3, 4}});
  add("Mean", [](const auto& in) { return Mean(in[0]); }, {{3, 4}});
  add("SumAxis0", [](const auto& in) { return SumAxis(in[0], 0); }, {{3, 4}});
  add("SumAxis1", [](const auto& in) { return SumAxis(in[0], 1); }, {{3, 4}});
  add("MeanAxis0", [](const auto& in) { return MeanAxis(in[0], 0); }, {{3, 4}});
  add("MeanAxis1", [](const auto& in) { return MeanAxis(in[0], 1); }, {{3, 4}});
  add("RowSoftmax", [](const auto& in) { return RowSoftmax(in[0]); }, {{3, 5}});
  add("RowLogSoftmax", [](const auto& in) { return RowLogSoftmax(in[0]); }, {{3, 5}});
  add("RowL2Normalize", [](const auto& in) { return RowL2Normalize(in[0]); }, {{3, 4}},
      true);
  add("DotRows", [](const auto& in) { return DotRows(in[0], in[1]); }, {{4, 3}, {4, 3}});
  add("ScaleRows", [](const auto& in) { return ScaleRows(in[0], in[1]); }, {{4, 3}, {4}});
  add("Rows", [](const auto& in) { return Rows(in[0], {2, 0, 2, 1}); }, {{3, 4}});
  add("TakePerRow", [](const auto& in) { return TakePerRow(in[0], {1, 0, 2}); }, {{3, 3}});
  add("ConcatAxis0", [](const auto& in) { return Concat({in[0], in[1]}, 0); },
      {{2, 3}, {4, 3}});
  add("ConcatAxis1", [](const auto& in) { return Concat({in[0], in[1]}, 1); },
      {{3, 2}, {3, 4}});
  add("EdgeSoftmax",
      [](const auto& in) { return EdgeSoftmax(in[0], {0, 0, 1, 1, 1, 2}, 3); }, {{6}});
  add("ScatterAddRows",
      [](const auto& in) { return ScatterAddRows(in[0], {1, 0, 1, 2}, 3); }, {{4, 3}});
  add("GatLikeComposite",
      [](const auto& in) {
        // Attention-weighted aggregation: the exact composite the GAT layer
        // uses (EdgeSoftmax * messages -> ScatterAdd).
        std::vector<int64_t> dst = {0, 0, 1, 1};
        Tensor alpha = EdgeSoftmax(in[0], dst, 2);
        Tensor weighted = Mul(in[1], Reshape(alpha, {4, 1}));
        return ScatterAddRows(weighted, dst, 2);
      },
      {{4}, {4, 1}});
  add("NormalizedDotComposite",
      [](const auto& in) {
        return DotRows(RowL2Normalize(in[0]), RowL2Normalize(in[1]));
      },
      {{3, 4}, {3, 4}}, true);
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllOps, GradCheckTest, testing::ValuesIn(MakeCases()),
                         [](const testing::TestParamInfo<OpCase>& info) {
                           return info.param.name;
                         });

}  // namespace
}  // namespace sarn::tensor
