#include "nn/serialization.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "core/sarn_model.h"
#include "nn/linear.h"
#include "roadnet/synthetic_city.h"
#include "tensor/ops.h"

namespace sarn::nn {
namespace {

using tensor::Tensor;

std::string TempPath(const std::string& name) { return testing::TempDir() + "/" + name; }

TEST(SerializationTest, RoundTripRestoresValues) {
  Rng rng(1);
  Linear a(4, 3, rng);
  Linear b(4, 3, rng);  // Different init.
  std::string path = TempPath("sarn_params.bin");
  ASSERT_TRUE(SaveParameters(path, a.Parameters()));
  ASSERT_TRUE(LoadParameters(path, b.Parameters()));
  Tensor x = Tensor::Randn({2, 4}, rng);
  Tensor ya = a.Forward(x);
  Tensor yb = b.Forward(x);
  for (int64_t i = 0; i < ya.numel(); ++i) {
    EXPECT_FLOAT_EQ(ya.data()[static_cast<size_t>(i)], yb.data()[static_cast<size_t>(i)]);
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, RejectsShapeMismatch) {
  Rng rng(2);
  Linear a(4, 3, rng);
  Linear wrong(4, 5, rng);
  std::string path = TempPath("sarn_params_mismatch.bin");
  ASSERT_TRUE(SaveParameters(path, a.Parameters()));
  EXPECT_FALSE(LoadParameters(path, wrong.Parameters()));
  std::remove(path.c_str());
}

TEST(SerializationTest, RejectsWrongCount) {
  Rng rng(3);
  Linear a(4, 3, rng);
  std::string path = TempPath("sarn_params_count.bin");
  ASSERT_TRUE(SaveParameters(path, a.Parameters()));
  std::vector<Tensor> too_few = {a.Parameters()[0]};
  EXPECT_FALSE(LoadParameters(path, too_few));
  std::remove(path.c_str());
}

TEST(SerializationTest, RejectsGarbageFile) {
  std::string path = TempPath("sarn_params_garbage.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a checkpoint";
  }
  Rng rng(4);
  Linear a(4, 3, rng);
  EXPECT_FALSE(LoadParameters(path, a.Parameters()));
  std::remove(path.c_str());
}

TEST(SerializationTest, MissingFileFails) {
  Rng rng(5);
  Linear a(4, 3, rng);
  EXPECT_FALSE(LoadParameters("/nonexistent/params.bin", a.Parameters()));
}

TEST(SerializationTest, SarnModelCheckpointRoundTrip) {
  roadnet::SyntheticCityConfig city;
  city.rows = 8;
  city.cols = 8;
  roadnet::RoadNetwork network = roadnet::GenerateSyntheticCity(city);
  core::SarnConfig config;
  config.hidden_dim = 8;
  config.embedding_dim = 8;
  config.projection_dim = 4;
  config.gat_layers = 1;
  config.gat_heads = 2;
  config.feature_dim_per_feature = 2;
  config.max_epochs = 2;
  core::SarnModel trained(network, config);
  trained.Train();
  std::string path = TempPath("sarn_model.ckpt");
  ASSERT_TRUE(trained.SaveWeights(path));

  config.seed = 777;  // Different init.
  core::SarnModel restored(network, config);
  ASSERT_TRUE(restored.LoadWeights(path));
  Tensor a = trained.Embeddings();
  Tensor b = restored.Embeddings();
  for (int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_FLOAT_EQ(a.data()[static_cast<size_t>(i)], b.data()[static_cast<size_t>(i)]);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sarn::nn
