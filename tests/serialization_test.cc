#include "nn/serialization.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "core/sarn_model.h"
#include "nn/linear.h"
#include "roadnet/synthetic_city.h"
#include "tensor/ops.h"

namespace sarn::nn {
namespace {

using tensor::Tensor;

std::string TempPath(const std::string& name) { return testing::TempDir() + "/" + name; }

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// A small two-section checkpoint used by the fault-injection tests.
TrainingCheckpoint MakeCheckpoint() {
  TrainingCheckpoint ckpt;
  ByteWriter a;
  a.PutI64(7);
  a.PutF64(2.5);
  ckpt.SetSection("test/a", a.Take());
  ByteWriter b;
  b.PutFloats({1.0f, 2.0f, 3.0f});
  ckpt.SetSection("test/b", b.Take());
  return ckpt;
}

TEST(SerializationTest, RoundTripRestoresValues) {
  Rng rng(1);
  Linear a(4, 3, rng);
  Linear b(4, 3, rng);  // Different init.
  std::string path = TempPath("sarn_params.bin");
  ASSERT_TRUE(SaveParameters(path, a.Parameters()));
  ASSERT_TRUE(LoadParameters(path, b.Parameters()));
  Tensor x = Tensor::Randn({2, 4}, rng);
  Tensor ya = a.Forward(x);
  Tensor yb = b.Forward(x);
  for (int64_t i = 0; i < ya.numel(); ++i) {
    EXPECT_FLOAT_EQ(ya.data()[static_cast<size_t>(i)], yb.data()[static_cast<size_t>(i)]);
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, RejectsShapeMismatch) {
  Rng rng(2);
  Linear a(4, 3, rng);
  Linear wrong(4, 5, rng);
  std::string path = TempPath("sarn_params_mismatch.bin");
  ASSERT_TRUE(SaveParameters(path, a.Parameters()));
  EXPECT_FALSE(LoadParameters(path, wrong.Parameters()));
  std::remove(path.c_str());
}

TEST(SerializationTest, RejectsWrongCount) {
  Rng rng(3);
  Linear a(4, 3, rng);
  std::string path = TempPath("sarn_params_count.bin");
  ASSERT_TRUE(SaveParameters(path, a.Parameters()));
  std::vector<Tensor> too_few = {a.Parameters()[0]};
  EXPECT_FALSE(LoadParameters(path, too_few));
  std::remove(path.c_str());
}

TEST(SerializationTest, RejectsGarbageFile) {
  std::string path = TempPath("sarn_params_garbage.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a checkpoint";
  }
  Rng rng(4);
  Linear a(4, 3, rng);
  EXPECT_FALSE(LoadParameters(path, a.Parameters()));
  std::remove(path.c_str());
}

TEST(SerializationTest, MissingFileFails) {
  Rng rng(5);
  Linear a(4, 3, rng);
  EXPECT_FALSE(LoadParameters("/nonexistent/params.bin", a.Parameters()));
}

// --- TrainingCheckpoint container -------------------------------------------

TEST(TrainingCheckpointTest, RoundTripPreservesSections) {
  std::string path = TempPath("ckpt_roundtrip.sarnckpt");
  TrainingCheckpoint original = MakeCheckpoint();
  ASSERT_TRUE(SaveCheckpoint(path, original).ok());

  TrainingCheckpoint loaded;
  CheckpointStatus status = LoadCheckpoint(path, &loaded);
  ASSERT_TRUE(status.ok()) << status.message;
  ASSERT_EQ(loaded.sections.size(), original.sections.size());
  for (size_t i = 0; i < original.sections.size(); ++i) {
    EXPECT_EQ(loaded.sections[i].first, original.sections[i].first);
    EXPECT_EQ(loaded.sections[i].second, original.sections[i].second);
  }
  // Typed values survive.
  ByteReader in(*loaded.FindSection("test/a"));
  int64_t v = 0;
  double d = 0.0;
  EXPECT_TRUE(in.GetI64(&v));
  EXPECT_TRUE(in.GetF64(&d));
  EXPECT_EQ(v, 7);
  EXPECT_EQ(d, 2.5);
  std::remove(path.c_str());
}

TEST(TrainingCheckpointTest, AtomicWriteLeavesNoTmpFile) {
  std::string path = TempPath("ckpt_atomic.sarnckpt");
  ASSERT_TRUE(SaveCheckpoint(path, MakeCheckpoint()).ok());
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(TrainingCheckpointTest, MissingFileIsIoError) {
  TrainingCheckpoint ckpt;
  CheckpointStatus status = LoadCheckpoint(TempPath("ckpt_nonexistent.sarnckpt"), &ckpt);
  EXPECT_EQ(status.error, CheckpointError::kIoError);
}

TEST(TrainingCheckpointTest, GarbageFileIsBadMagic) {
  std::string path = TempPath("ckpt_garbage.sarnckpt");
  WriteFile(path, "this is definitely not a checkpoint file at all");
  TrainingCheckpoint ckpt;
  CheckpointStatus status = LoadCheckpoint(path, &ckpt);
  EXPECT_EQ(status.error, CheckpointError::kBadMagic);
  std::remove(path.c_str());
}

TEST(TrainingCheckpointTest, TruncatedFileIsTruncatedError) {
  std::string path = TempPath("ckpt_truncated.sarnckpt");
  ASSERT_TRUE(SaveCheckpoint(path, MakeCheckpoint()).ok());
  std::string bytes = ReadFile(path);
  ASSERT_GT(bytes.size(), 25u);
  // Cut the file mid-payload: header promises more bytes than exist.
  WriteFile(path, bytes.substr(0, bytes.size() - 10));
  TrainingCheckpoint ckpt;
  CheckpointStatus status = LoadCheckpoint(path, &ckpt);
  EXPECT_EQ(status.error, CheckpointError::kTruncated) << status.message;
  EXPECT_TRUE(ckpt.sections.empty());  // Never half-loaded.
  std::remove(path.c_str());
}

TEST(TrainingCheckpointTest, FlippedPayloadByteIsCrcMismatch) {
  std::string path = TempPath("ckpt_bitflip.sarnckpt");
  ASSERT_TRUE(SaveCheckpoint(path, MakeCheckpoint()).ok());
  std::string bytes = ReadFile(path);
  // Header is magic(8) + version(4) + size(8) = 20 bytes; flip one payload bit.
  size_t payload_offset = 20;
  ASSERT_GT(bytes.size(), payload_offset + 4);
  bytes[payload_offset + 3] = static_cast<char>(bytes[payload_offset + 3] ^ 0x40);
  WriteFile(path, bytes);
  TrainingCheckpoint ckpt;
  CheckpointStatus status = LoadCheckpoint(path, &ckpt);
  EXPECT_EQ(status.error, CheckpointError::kCrcMismatch) << status.message;
  EXPECT_TRUE(ckpt.sections.empty());
  std::remove(path.c_str());
}

TEST(TrainingCheckpointTest, WrongVersionIsBadVersion) {
  std::string path = TempPath("ckpt_version.sarnckpt");
  ASSERT_TRUE(SaveCheckpoint(path, MakeCheckpoint()).ok());
  std::string bytes = ReadFile(path);
  // The u32 version sits right after the 8-byte magic (not CRC-covered).
  bytes[8] = static_cast<char>(kCheckpointVersion + 1);
  WriteFile(path, bytes);
  TrainingCheckpoint ckpt;
  CheckpointStatus status = LoadCheckpoint(path, &ckpt);
  EXPECT_EQ(status.error, CheckpointError::kBadVersion) << status.message;
  std::remove(path.c_str());
}

TEST(TrainingCheckpointTest, EachCorruptionModeHasDistinctError) {
  // The four fixtures above must be distinguishable by error code alone.
  EXPECT_NE(CheckpointError::kTruncated, CheckpointError::kCrcMismatch);
  EXPECT_NE(CheckpointError::kBadVersion, CheckpointError::kCrcMismatch);
  EXPECT_NE(CheckpointError::kBadMagic, CheckpointError::kBadVersion);
  EXPECT_STRNE(CheckpointErrorName(CheckpointError::kTruncated),
               CheckpointErrorName(CheckpointError::kCrcMismatch));
}

TEST(TrainingCheckpointTest, TensorShapeMismatchNeverHalfLoads) {
  Rng rng(11);
  Linear source(4, 3, rng);
  ByteWriter out;
  WriteTensors(out, source.Parameters());
  std::string payload = out.Take();

  Linear wrong(4, 5, rng);  // Different output width.
  std::vector<float> before = wrong.Parameters()[0].data().ToVector();
  ByteReader in(payload);
  CheckpointStatus status = ReadTensorsInto(in, wrong.Parameters());
  EXPECT_EQ(status.error, CheckpointError::kShapeMismatch) << status.message;
  // Strong guarantee: the mismatched target is untouched, not half-loaded.
  EXPECT_EQ(wrong.Parameters()[0].data(), before);
}

TEST(TrainingCheckpointTest, WriteReadTensorsIsBitwise) {
  Rng rng(13);
  Linear source(6, 4, rng);
  Linear dest(6, 4, rng);  // Different init values.
  ByteWriter out;
  WriteTensors(out, source.Parameters());
  std::string payload = out.Take();
  ByteReader in(payload);
  ASSERT_TRUE(ReadTensorsInto(in, dest.Parameters()).ok());
  for (size_t p = 0; p < source.Parameters().size(); ++p) {
    EXPECT_EQ(source.Parameters()[p].data(), dest.Parameters()[p].data());
  }
}

TEST(TrainingCheckpointTest, ListAndPruneCheckpoints) {
  std::string dir = TempPath("ckpt_dir_rotation");
  std::filesystem::create_directories(dir);
  for (int epoch : {1, 2, 3, 4, 5}) {
    ASSERT_TRUE(
        SaveCheckpoint(dir + "/" + CheckpointFileName(epoch), MakeCheckpoint()).ok());
  }
  WriteFile(dir + "/unrelated.txt", "ignore me");

  auto found = ListCheckpoints(dir);
  ASSERT_EQ(found.size(), 5u);
  EXPECT_EQ(found.front().first, 5);  // Newest first.
  EXPECT_EQ(found.back().first, 1);

  PruneCheckpoints(dir, 2);
  found = ListCheckpoints(dir);
  ASSERT_EQ(found.size(), 2u);
  EXPECT_EQ(found[0].first, 5);
  EXPECT_EQ(found[1].first, 4);
  EXPECT_TRUE(std::filesystem::exists(dir + "/unrelated.txt"));
  std::filesystem::remove_all(dir);
}

TEST(TrainingCheckpointTest, ResumeSkipsCorruptAndUsesOlderValid) {
  // The trainer-facing contract: a corrupt newest checkpoint must not stop
  // resume — the loader reports it and the trainer falls back to the next.
  std::string dir = TempPath("ckpt_dir_fallback");
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(SaveCheckpoint(dir + "/" + CheckpointFileName(1), MakeCheckpoint()).ok());
  ASSERT_TRUE(SaveCheckpoint(dir + "/" + CheckpointFileName(2), MakeCheckpoint()).ok());
  // Corrupt the newest.
  std::string newest = dir + "/" + CheckpointFileName(2);
  std::string bytes = ReadFile(newest);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
  WriteFile(newest, bytes);

  int loaded_epoch = -1;
  for (const auto& [epoch, path] : ListCheckpoints(dir)) {
    TrainingCheckpoint ckpt;
    if (LoadCheckpoint(path, &ckpt).ok()) {
      loaded_epoch = epoch;
      break;
    }
  }
  EXPECT_EQ(loaded_epoch, 1);
  std::filesystem::remove_all(dir);
}

TEST(SerializationTest, SarnModelCheckpointRoundTrip) {
  roadnet::SyntheticCityConfig city;
  city.rows = 8;
  city.cols = 8;
  roadnet::RoadNetwork network = roadnet::GenerateSyntheticCity(city);
  core::SarnConfig config;
  config.hidden_dim = 8;
  config.embedding_dim = 8;
  config.projection_dim = 4;
  config.gat_layers = 1;
  config.gat_heads = 2;
  config.feature_dim_per_feature = 2;
  config.max_epochs = 2;
  core::SarnModel trained(network, config);
  trained.Train();
  std::string path = TempPath("sarn_model.ckpt");
  ASSERT_TRUE(trained.SaveWeights(path));

  config.seed = 777;  // Different init.
  core::SarnModel restored(network, config);
  ASSERT_TRUE(restored.LoadWeights(path));
  Tensor a = trained.Embeddings();
  Tensor b = restored.Embeddings();
  for (int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_FLOAT_EQ(a.data()[static_cast<size_t>(i)], b.data()[static_cast<size_t>(i)]);
  }
  std::remove(path.c_str());
}

// The variant tag travels inside training checkpoints (section
// "sarn/variant"); its serialization must round-trip and reject truncation
// rather than half-read.
TEST(SerializationTest, VariantTagRoundTrip) {
  core::VariantTag tag;
  tag.encoder = "rfn";
  tag.augmentation = "third-law";
  tag.negatives = "in-batch";
  ByteWriter out;
  core::WriteVariantTag(out, tag);
  const std::string bytes = out.Take();

  ByteReader in(bytes);
  core::VariantTag restored;
  ASSERT_TRUE(core::ReadVariantTag(in, &restored));
  EXPECT_EQ(restored, tag);
  EXPECT_EQ(core::VariantTagString(restored),
            "encoder=rfn augmentation=third-law negatives=in-batch");

  // ByteReader views its input; keep the truncated copy alive past the read.
  const std::string half = bytes.substr(0, bytes.size() / 2);
  ByteReader truncated(half);
  core::VariantTag partial;
  EXPECT_FALSE(core::ReadVariantTag(truncated, &partial));
}

}  // namespace
}  // namespace sarn::nn
