#include "common/csv.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace sarn {
namespace {

TEST(CsvTest, ParseSimpleLine) {
  auto fields = ParseCsvLine("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "c");
}

TEST(CsvTest, ParseEmptyFields) {
  auto fields = ParseCsvLine(",x,,");
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "");
  EXPECT_EQ(fields[1], "x");
  EXPECT_EQ(fields[2], "");
  EXPECT_EQ(fields[3], "");
}

TEST(CsvTest, ParseQuotedFieldWithComma) {
  auto fields = ParseCsvLine("\"a,b\",c");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "a,b");
  EXPECT_EQ(fields[1], "c");
}

TEST(CsvTest, ParseEscapedQuote) {
  auto fields = ParseCsvLine("\"say \"\"hi\"\"\",x");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "say \"hi\"");
}

TEST(CsvTest, ParseToleratesCarriageReturn) {
  auto fields = ParseCsvLine("a,b\r");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[1], "b");
}

TEST(CsvTest, EscapeRoundTrip) {
  for (const std::string& value :
       {std::string("plain"), std::string("with,comma"), std::string("with\"quote"),
        std::string("")}) {
    auto fields = ParseCsvLine(EscapeCsvField(value));
    ASSERT_EQ(fields.size(), 1u);
    EXPECT_EQ(fields[0], value);
  }
}

TEST(CsvTest, WriteAndReadFileRoundTrip) {
  std::string path = testing::TempDir() + "/sarn_csv_test.csv";
  CsvTable table;
  table.header = {"id", "name", "value"};
  table.rows = {{"1", "alpha", "0.5"}, {"2", "beta,comma", "1.5"}};
  ASSERT_TRUE(WriteCsvFile(path, table));

  auto loaded = ReadCsvFile(path, /*has_header=*/true);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->header, table.header);
  ASSERT_EQ(loaded->rows.size(), 2u);
  EXPECT_EQ(loaded->rows[1][1], "beta,comma");
  std::remove(path.c_str());
}

TEST(CsvTest, ColumnIndexLookup) {
  CsvTable table;
  table.header = {"a", "b"};
  EXPECT_EQ(table.ColumnIndex("b").value(), 1u);
  EXPECT_FALSE(table.ColumnIndex("missing").has_value());
}

TEST(CsvTest, ReadMissingFileReturnsNullopt) {
  EXPECT_FALSE(ReadCsvFile("/nonexistent/path/file.csv", true).has_value());
}

TEST(CsvTest, ReadWithoutHeader) {
  std::string path = testing::TempDir() + "/sarn_csv_noheader.csv";
  {
    std::ofstream out(path);
    out << "1,2\n3,4\n";
  }
  auto loaded = ReadCsvFile(path, /*has_header=*/false);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->header.empty());
  ASSERT_EQ(loaded->rows.size(), 2u);
  EXPECT_EQ(loaded->rows[0][0], "1");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sarn
