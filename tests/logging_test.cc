// Tests for the leveled logger: level parsing, environment initialisation,
// the ISO-8601 + thread-id prefix format, and the lazy-formatting guarantee
// (a disabled SARN_LOG never evaluates its streamed operands).

#include "common/logging.h"

#include <cstdlib>
#include <regex>
#include <thread>

#include <gtest/gtest.h>

namespace sarn {
namespace {

// Restores the global log level around each test.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = GetLogLevel(); }
  void TearDown() override {
    SetLogLevel(saved_);
    unsetenv("SARN_LOG_LEVEL");
  }
  LogLevel saved_ = LogLevel::kInfo;
};

TEST_F(LoggingTest, ParseLogLevelAcceptsAliasesCaseInsensitively) {
  EXPECT_EQ(ParseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("INFO"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("Warning"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("warn"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("ERROR"), LogLevel::kError);
  EXPECT_FALSE(ParseLogLevel("").has_value());
  EXPECT_FALSE(ParseLogLevel("verbose").has_value());
}

TEST_F(LoggingTest, LogLevelNamesRoundTrip) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarning,
                         LogLevel::kError}) {
    EXPECT_EQ(ParseLogLevel(LogLevelName(level)), level);
  }
}

TEST_F(LoggingTest, InitLogLevelFromEnvAppliesValidValues) {
  setenv("SARN_LOG_LEVEL", "error", 1);
  EXPECT_TRUE(InitLogLevelFromEnv());
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);

  // Invalid values are rejected and leave the level unchanged.
  SetLogLevel(LogLevel::kInfo);
  setenv("SARN_LOG_LEVEL", "shout", 1);
  EXPECT_FALSE(InitLogLevelFromEnv());
  EXPECT_EQ(GetLogLevel(), LogLevel::kInfo);

  // Unset variable is a no-op success.
  unsetenv("SARN_LOG_LEVEL");
  EXPECT_TRUE(InitLogLevelFromEnv());
  EXPECT_EQ(GetLogLevel(), LogLevel::kInfo);
}

TEST_F(LoggingTest, PrefixHasIsoTimestampThreadIdAndLocation) {
  std::string prefix = internal::LogPrefix(LogLevel::kWarning, "dir/file.cc", 42);
  // "[WARN 2026-08-06T12:34:56.789Z t3 file.cc:42] " — basename only.
  std::regex pattern(
      R"(\[WARN \d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}\.\d{3}Z t\d+ file\.cc:42\] )");
  EXPECT_TRUE(std::regex_match(prefix, pattern)) << prefix;
}

TEST_F(LoggingTest, ThreadIdsAreStableAndDistinct) {
  uint32_t mine = ThreadId();
  EXPECT_GT(mine, 0u);
  EXPECT_EQ(ThreadId(), mine);  // Stable within a thread.
  uint32_t other = 0;
  std::thread thread([&other] { other = ThreadId(); });
  thread.join();
  EXPECT_NE(other, mine);
}

TEST_F(LoggingTest, DisabledLevelDoesNotEvaluateOperands) {
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return "payload";
  };
  SARN_LOG(Debug) << expensive();
  SARN_LOG(Info) << expensive();
  SARN_LOG(Warning) << expensive();
  EXPECT_EQ(evaluations, 0);
  SARN_LOG(Error) << "enabled error, no operand side effects to count";
  SetLogLevel(LogLevel::kDebug);
  SARN_LOG(Debug) << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, MacroComposesWithControlFlow) {
  // The ternary expansion must not capture a trailing else (classic
  // dangling-else hazard for unbraced macros).
  SetLogLevel(LogLevel::kError);
  bool took_else = false;
  if (false)
    SARN_LOG(Info) << "never";
  else
    took_else = true;
  EXPECT_TRUE(took_else);
}

}  // namespace
}  // namespace sarn
