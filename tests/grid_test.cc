#include "geo/grid.h"

#include <set>

#include <gtest/gtest.h>

#include "geo/point.h"

namespace sarn::geo {
namespace {

BoundingBox MakeBox(double width_m, double height_m) {
  LocalProjection proj(LatLng{30.0, 104.0});
  BoundingBox box = BoundingBox::Empty();
  box.Extend(proj.ToLatLng(0.0, 0.0));
  box.Extend(proj.ToLatLng(width_m, height_m));
  return box;
}

TEST(GridTest, DimensionsMatchCellSize) {
  Grid grid(MakeBox(3000.0, 2000.0), 1000.0);
  EXPECT_EQ(grid.cols(), 3);
  EXPECT_EQ(grid.rows(), 2);
  EXPECT_EQ(grid.num_cells(), 6);
}

TEST(GridTest, TinyBoxYieldsSingleCell) {
  Grid grid(MakeBox(10.0, 10.0), 1000.0);
  EXPECT_EQ(grid.num_cells(), 1);
}

TEST(GridTest, CellOfCorners) {
  BoundingBox box = MakeBox(3000.0, 3000.0);
  Grid grid(box, 1000.0);
  // Bottom-left corner is cell 0; top-right corner is the last cell.
  EXPECT_EQ(grid.CellOf({box.min_lat, box.min_lng}), 0);
  EXPECT_EQ(grid.CellOf({box.max_lat, box.max_lng}), grid.num_cells() - 1);
}

TEST(GridTest, OutOfBoxPointsClampToBorder) {
  BoundingBox box = MakeBox(2000.0, 2000.0);
  Grid grid(box, 1000.0);
  int cell = grid.CellOf({box.min_lat - 1.0, box.min_lng - 1.0});
  EXPECT_EQ(cell, 0);
  cell = grid.CellOf({box.max_lat + 1.0, box.max_lng + 1.0});
  EXPECT_EQ(cell, grid.num_cells() - 1);
}

TEST(GridTest, NeighboringPointsInSameOrAdjacentCells) {
  BoundingBox box = MakeBox(5000.0, 5000.0);
  Grid grid(box, 1000.0);
  LocalProjection proj(LatLng{box.min_lat, box.min_lng});
  LatLng a = proj.ToLatLng(1500.0, 1500.0);
  LatLng b = proj.ToLatLng(1550.0, 1500.0);  // 50 m apart.
  int row_diff = std::abs(grid.RowOf(a) - grid.RowOf(b));
  int col_diff = std::abs(grid.ColOf(a) - grid.ColOf(b));
  EXPECT_LE(row_diff, 1);
  EXPECT_LE(col_diff, 1);
}

TEST(GridTest, EveryCellReachable) {
  BoundingBox box = MakeBox(4000.0, 3000.0);
  Grid grid(box, 1000.0);
  LocalProjection proj(LatLng{box.min_lat, box.min_lng});
  std::set<int> seen;
  for (double x = 100.0; x < 4000.0; x += 200.0) {
    for (double y = 100.0; y < 3000.0; y += 200.0) {
      int cell = grid.CellOf(proj.ToLatLng(x, y));
      EXPECT_GE(cell, 0);
      EXPECT_LT(cell, grid.num_cells());
      seen.insert(cell);
    }
  }
  EXPECT_EQ(static_cast<int>(seen.size()), grid.num_cells());
}

TEST(GridTest, CellsWithinRadiusIncludesOwnCell) {
  BoundingBox box = MakeBox(5000.0, 5000.0);
  Grid grid(box, 1000.0);
  LocalProjection proj(LatLng{box.min_lat, box.min_lng});
  LatLng p = proj.ToLatLng(2500.0, 2500.0);
  std::vector<int> cells = grid.CellsWithinRadius(p, 100.0);
  bool found = false;
  for (int c : cells) found = found || (c == grid.CellOf(p));
  EXPECT_TRUE(found);
}

TEST(GridTest, CellsWithinRadiusGrowsWithRadius) {
  BoundingBox box = MakeBox(10000.0, 10000.0);
  Grid grid(box, 1000.0);
  LocalProjection proj(LatLng{box.min_lat, box.min_lng});
  LatLng p = proj.ToLatLng(5000.0, 5000.0);
  size_t small = grid.CellsWithinRadius(p, 500.0).size();
  size_t large = grid.CellsWithinRadius(p, 3000.0).size();
  EXPECT_LT(small, large);
}

TEST(GridDeathTest, NonPositiveCellSizeRejected) {
  EXPECT_DEATH({ Grid grid(MakeBox(100.0, 100.0), 0.0); }, "cell_side_meters");
}

}  // namespace
}  // namespace sarn::geo
