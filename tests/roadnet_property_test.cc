// Property sweep over the synthetic city presets (TEST_P): the generated
// networks must satisfy the structural invariants the experiments rely on,
// at every preset and scale.

#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "graph/csr_graph.h"
#include "graph/dijkstra.h"
#include "roadnet/synthetic_city.h"
#include "tasks/metrics.h"

namespace sarn::roadnet {
namespace {

struct CityCase {
  std::string name;
  double scale;
  double min_nmi;
  double max_nmi;
};

class CityPropertyTest : public testing::TestWithParam<CityCase> {
 protected:
  CityPropertyTest()
      : network_(GenerateSyntheticCity(
            CityConfigByName(GetParam().name, GetParam().scale))) {}

  RoadNetwork network_;
};

TEST_P(CityPropertyTest, WeaklyConnected) {
  graph::CsrGraph g = network_.ToTypeWeightedGraph();
  EXPECT_EQ(g.CountWeakComponents(), 1);
}

TEST_P(CityPropertyTest, MostPairsRouteable) {
  // Directed reachability: one-ways and the river must not strand regions.
  graph::CsrGraph g = network_.ToLengthWeightedGraph();
  std::vector<bool> reachable = g.ReachableFrom(0);
  int64_t count = 0;
  for (bool r : reachable) count += r ? 1 : 0;
  EXPECT_GT(static_cast<double>(count) / network_.num_segments(), 0.9);
}

TEST_P(CityPropertyTest, FullRoadHierarchyPresent) {
  std::set<HighwayType> present;
  for (const RoadSegment& s : network_.segments()) present.insert(s.type);
  EXPECT_TRUE(present.count(HighwayType::kMotorway));
  EXPECT_TRUE(present.count(HighwayType::kPrimary));
  EXPECT_TRUE(present.count(HighwayType::kResidential));
}

TEST_P(CityPropertyTest, DegreesAreRoadLike) {
  // Real road-segment graphs have tiny out-degrees (paper Table 3 implies a
  // mean of ~1.7); ours must stay in the same family.
  graph::CsrGraph g = network_.ToTypeWeightedGraph();
  double mean = static_cast<double>(g.num_edges()) / g.num_vertices();
  EXPECT_GT(mean, 1.0);
  EXPECT_LT(mean, 5.0);
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_LE(g.OutDegree(v), 8);
  }
}

TEST_P(CityPropertyTest, NmiInPresetBand) {
  std::vector<int64_t> types, speeds;
  for (const RoadSegment& s : network_.segments()) {
    if (s.speed_limit_kmh) {
      types.push_back(static_cast<int64_t>(s.type));
      speeds.push_back(*s.speed_limit_kmh);
    }
  }
  double nmi = tasks::NormalizedMutualInformation(types, speeds);
  EXPECT_GE(nmi, GetParam().min_nmi);
  EXPECT_LE(nmi, GetParam().max_nmi);
}

TEST_P(CityPropertyTest, MeanSegmentLengthPlausible) {
  EXPECT_GT(network_.MeanSegmentLength(), 40.0);
  EXPECT_LT(network_.MeanSegmentLength(), 200.0);
}

TEST_P(CityPropertyTest, TopoEdgeWeightsFollowEq1) {
  for (size_t i = 0; i < std::min<size_t>(network_.topo_edges().size(), 200); ++i) {
    const TopoEdge& e = network_.topo_edges()[i];
    double expected = 0.5 * (HighwayWeight(network_.segment(e.from).type) +
                             HighwayWeight(network_.segment(e.to).type));
    EXPECT_DOUBLE_EQ(e.weight, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Presets, CityPropertyTest,
    testing::Values(CityCase{"CD", 0.02, 0.55, 0.95}, CityCase{"CD", 0.05, 0.55, 0.95},
                    CityCase{"BJ", 0.02, 0.5, 0.9}, CityCase{"SF", 0.02, 0.2, 0.65},
                    CityCase{"SF-S", 0.02, 0.2, 0.65},
                    CityCase{"SF-L", 0.02, 0.2, 0.65}),
    [](const testing::TestParamInfo<CityCase>& info) {
      std::string name = info.param.name + "_s" +
                         std::to_string(static_cast<int>(info.param.scale * 1000));
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(RiverTest, RiverCutsCrossLinksButKeepsBridges) {
  SyntheticCityConfig with_river;
  with_river.rows = 20;
  with_river.cols = 20;
  with_river.river = true;
  SyntheticCityConfig without_river = with_river;
  without_river.river = false;
  RoadNetwork river_city = GenerateSyntheticCity(with_river);
  RoadNetwork plain_city = GenerateSyntheticCity(without_river);
  EXPECT_LT(river_city.num_segments(), plain_city.num_segments());
  // Still connected: bridges preserve the spanning structure.
  EXPECT_EQ(river_city.ToTypeWeightedGraph().CountWeakComponents(), 1);
}

TEST(RiverTest, CrossRiverDetourExceedsEuclidean) {
  // The river is exactly the paper's Fig. 1 situation: spatially close
  // segments on opposite banks are many hops apart in the graph.
  SyntheticCityConfig config;
  config.rows = 24;
  config.cols = 24;
  config.bridge_every = 11;
  RoadNetwork network = GenerateSyntheticCity(config);
  graph::CsrGraph routing = network.ToLengthWeightedGraph();

  // Find a pair of segments within 260 m straight-line but on opposite
  // banks (network distance much larger than Euclidean).
  double worst_ratio = 0.0;
  for (int64_t a = 0; a < network.num_segments(); a += 17) {
    graph::ShortestPathTree tree = Dijkstra(routing, a);
    for (int64_t b = 0; b < network.num_segments(); b += 13) {
      if (a == b) continue;
      double euclid = geo::HaversineMeters(network.segment(a).Midpoint(),
                                           network.segment(b).Midpoint());
      if (euclid > 260.0 || euclid < 50.0) continue;
      double net = tree.distance[static_cast<size_t>(b)];
      if (net == graph::kInfiniteDistance) continue;
      worst_ratio = std::max(worst_ratio, net / euclid);
    }
    if (worst_ratio > 4.0) break;
  }
  EXPECT_GT(worst_ratio, 4.0) << "river should create topology/geometry divergence";
}

}  // namespace
}  // namespace sarn::roadnet
