#include "serve/query_engine.h"

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geo/spatial_index.h"
#include "obs/request_trace.h"
#include "tasks/embedding_index.h"
#include "tensor/tensor.h"

namespace sarn::serve {
namespace {

using tasks::EmbeddingIndex;
using tasks::IndexMetric;
using tasks::Neighbor;
using tensor::Tensor;

std::shared_ptr<const EmbeddingIndex> MakeIndex(uint64_t seed, int64_t n = 30,
                                                int64_t d = 8) {
  Rng rng(seed);
  return std::make_shared<EmbeddingIndex>(Tensor::Randn({n, d}, rng),
                                          IndexMetric::kCosine);
}

ServeRequest ById(int64_t id, int k = 5) {
  ServeRequest request;
  request.kind = ServeRequest::Kind::kById;
  request.id = id;
  request.k = k;
  return request;
}

void ExpectSameNeighbors(const std::vector<Neighbor>& a,
                         const std::vector<Neighbor>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].score, b[i].score);
  }
}

ServeOptions Synchronous() {
  ServeOptions options;
  options.threads = 0;
  return options;
}

TEST(QueryEngineTest, SynchronousMatchesDirectIndexQuery) {
  auto index = MakeIndex(1);
  QueryEngine engine(index, nullptr, Synchronous());
  for (int64_t q = 0; q < 30; q += 5) {
    ServeResponse response = engine.Query(ById(q));
    ASSERT_TRUE(response.ok) << response.error;
    EXPECT_EQ(response.epoch, 1u);
    EXPECT_EQ(response.query_id, q);
    ExpectSameNeighbors(response.neighbors, index->QueryById(q, 5));
  }
}

TEST(QueryEngineTest, ByVectorQuery) {
  auto index = MakeIndex(2);
  QueryEngine engine(index, nullptr, Synchronous());
  ServeRequest request;
  request.kind = ServeRequest::Kind::kByVector;
  request.vector.assign(8, 0.5f);
  request.k = 3;
  ServeResponse response = engine.Query(request);
  ASSERT_TRUE(response.ok) << response.error;
  EXPECT_EQ(response.query_id, -1);
  ExpectSameNeighbors(response.neighbors,
                      index->QueryByVector(std::vector<float>(8, 0.5f), 3));
}

TEST(QueryEngineTest, ValidationErrors) {
  QueryEngine engine(MakeIndex(3), nullptr, Synchronous());
  EXPECT_FALSE(engine.Query(ById(-7)).ok);
  EXPECT_FALSE(engine.Query(ById(30)).ok);  // One past the end.
  EXPECT_FALSE(engine.Query(ById(0, -1)).ok);

  ServeRequest bad_dim;
  bad_dim.kind = ServeRequest::Kind::kByVector;
  bad_dim.vector.assign(5, 1.0f);  // Index dim is 8.
  EXPECT_FALSE(engine.Query(bad_dim).ok);

  ServeRequest point;  // No locator configured.
  point.kind = ServeRequest::Kind::kByPoint;
  point.point = geo::LatLng{30.0, 104.0};
  ServeResponse response = engine.Query(point);
  EXPECT_FALSE(response.ok);
  EXPECT_NE(response.error.find("network"), std::string::npos);

  EXPECT_EQ(engine.Stats().errors, 5u);
}

TEST(QueryEngineTest, KZeroIsValidAndEmpty) {
  QueryEngine engine(MakeIndex(4), nullptr, Synchronous());
  ServeResponse response = engine.Query(ById(2, 0));
  ASSERT_TRUE(response.ok);
  EXPECT_TRUE(response.neighbors.empty());
}

TEST(QueryEngineTest, PointQueryResolvesNearestSegment) {
  // Locator over 30 points strung along a meridian; index row i <-> point i.
  std::vector<geo::LatLng> points;
  for (int i = 0; i < 30; ++i) points.push_back(geo::LatLng{30.0 + 0.01 * i, 104.0});
  auto locator = std::make_shared<geo::SpatialIndex>(points, 200.0);
  auto index = MakeIndex(5);
  QueryEngine engine(index, locator, Synchronous());

  ServeRequest request;
  request.kind = ServeRequest::Kind::kByPoint;
  request.point = geo::LatLng{30.071, 104.0002};  // Nearest to point 7.
  request.k = 4;
  ServeResponse response = engine.Query(request);
  ASSERT_TRUE(response.ok) << response.error;
  EXPECT_EQ(response.query_id, 7);
  ExpectSameNeighbors(response.neighbors, index->QueryById(7, 4));
}

TEST(QueryEngineTest, CacheHitOnRepeatSharesByIdAndByPoint) {
  std::vector<geo::LatLng> points;
  for (int i = 0; i < 30; ++i) points.push_back(geo::LatLng{30.0 + 0.01 * i, 104.0});
  auto locator = std::make_shared<geo::SpatialIndex>(points, 200.0);
  QueryEngine engine(MakeIndex(6), locator, Synchronous());

  ServeResponse first = engine.Query(ById(7, 4));
  EXPECT_FALSE(first.cache_hit);
  ServeResponse second = engine.Query(ById(7, 4));
  EXPECT_TRUE(second.cache_hit);
  ExpectSameNeighbors(first.neighbors, second.neighbors);

  // A point resolving to row 7 with the same k reuses the same cache entry.
  ServeRequest point;
  point.kind = ServeRequest::Kind::kByPoint;
  point.point = geo::LatLng{30.07, 104.0};
  point.k = 4;
  ServeResponse third = engine.Query(point);
  EXPECT_TRUE(third.cache_hit);

  // Different k is a different entry.
  EXPECT_FALSE(engine.Query(ById(7, 5)).cache_hit);
  ServeStats stats = engine.Stats();
  EXPECT_EQ(stats.cache_hits, 2u);
  EXPECT_EQ(stats.cache_misses, 2u);
}

TEST(QueryEngineTest, PublishBumpsEpochInvalidatesCacheAndChangesAnswers) {
  auto old_index = MakeIndex(7);
  auto new_index = MakeIndex(8);
  QueryEngine engine(old_index, nullptr, Synchronous());

  ServeResponse before = engine.Query(ById(3));
  EXPECT_EQ(before.epoch, 1u);
  EXPECT_TRUE(engine.Query(ById(3)).cache_hit);

  engine.Publish(new_index);
  EXPECT_EQ(engine.epoch(), 2u);
  ServeResponse after = engine.Query(ById(3));
  EXPECT_EQ(after.epoch, 2u);
  EXPECT_FALSE(after.cache_hit);  // Swap invalidated the cached entry.
  ExpectSameNeighbors(after.neighbors, new_index->QueryById(3, 5));
  EXPECT_EQ(engine.Stats().swaps, 1u);
}

TEST(QueryEngineTest, WorkersMicroBatchRequests) {
  ServeOptions options;
  options.threads = 1;
  options.max_batch = 8;
  options.batch_window_ms = 200.0;  // Submission is far faster than the window.
  auto index = MakeIndex(9);
  QueryEngine engine(index, nullptr, options);

  std::vector<std::future<ServeResponse>> futures;
  for (int i = 0; i < 64; ++i) futures.push_back(engine.Submit(ById(i % 30)));
  for (int i = 0; i < 64; ++i) {
    ServeResponse response = futures[static_cast<size_t>(i)].get();
    ASSERT_TRUE(response.ok) << response.error;
    if (!response.cache_hit) {
      ExpectSameNeighbors(response.neighbors, index->QueryById(i % 30, 5));
    }
  }
  ServeStats stats = engine.Stats();
  EXPECT_EQ(stats.requests, 64u);
  EXPECT_EQ(stats.batched_items, 64u);
  EXPECT_LT(stats.batches, 64u);          // Actually batched, not one-by-one...
  EXPECT_GE(stats.mean_batch_size, 2.0);  // ...and meaningfully so.
}

TEST(QueryEngineTest, DestructorDrainsPendingFutures) {
  std::vector<std::future<ServeResponse>> futures;
  {
    ServeOptions options;
    options.threads = 2;
    options.batch_window_ms = 50.0;
    QueryEngine engine(MakeIndex(10), nullptr, options);
    for (int i = 0; i < 32; ++i) futures.push_back(engine.Submit(ById(i % 30)));
  }  // Destructor joins workers; every future must be resolved.
  for (auto& future : futures) {
    ServeResponse response = future.get();
    EXPECT_TRUE(response.ok) << response.error;
  }
}

// The async-reload contract: PublishAsync runs the (expensive) loader off
// the serving path, so in-flight queries keep flowing at the old epoch for
// the entire duration of the load — pinned here by stalling the loader on a
// gate while queries complete. A loader that fails (returns null) resolves
// the future to 0 and leaves the live snapshot untouched.
TEST(QueryEngineTest, PublishAsyncReloadNeverBlocksServing) {
  auto old_index = MakeIndex(11);
  auto new_index = MakeIndex(12);
  ServeOptions options;
  options.threads = 2;
  options.batch_window_ms = 0.1;
  QueryEngine engine(old_index, nullptr, options);

  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::atomic<bool> loader_entered{false};
  std::future<uint64_t> published = engine.PublishAsync(
      [&]() -> std::shared_ptr<const EmbeddingIndex> {
        loader_entered = true;
        gate.wait();  // Simulates a slow parse / cold mmap load.
        return new_index;
      });

  while (!loader_entered.load()) std::this_thread::yield();
  // The loader is stalled mid-"reload": every query must still complete,
  // answered by the old snapshot.
  for (int i = 0; i < 50; ++i) {
    ServeResponse response = engine.Query(ById(i % 30));
    ASSERT_TRUE(response.ok) << response.error;
    EXPECT_EQ(response.epoch, 1u);
    if (!response.cache_hit) {
      ExpectSameNeighbors(response.neighbors, old_index->QueryById(i % 30, 5));
    }
  }
  EXPECT_EQ(published.wait_for(std::chrono::milliseconds(0)),
            std::future_status::timeout);

  release.set_value();
  EXPECT_EQ(published.get(), 2u);
  ServeResponse after = engine.Query(ById(3));
  ASSERT_TRUE(after.ok);
  EXPECT_EQ(after.epoch, 2u);
  ExpectSameNeighbors(after.neighbors, new_index->QueryById(3, 5));

  std::future<uint64_t> failed = engine.PublishAsync(
      []() -> std::shared_ptr<const EmbeddingIndex> { return nullptr; });
  EXPECT_EQ(failed.get(), 0u);
  EXPECT_EQ(engine.epoch(), 2u);  // A failed reload changes nothing.
}

// A PublishAsync still in flight when the engine is destroyed must complete
// (the destructor joins loader threads before tearing down the snapshot).
TEST(QueryEngineTest, DestructorJoinsInFlightAsyncPublish) {
  std::future<uint64_t> published;
  auto new_index = MakeIndex(13);
  {
    QueryEngine engine(MakeIndex(14), nullptr, Synchronous());
    published = engine.PublishAsync(
        [new_index]() -> std::shared_ptr<const EmbeddingIndex> {
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
          return new_index;
        });
  }  // Destructor must wait for the loader, not race it.
  EXPECT_EQ(published.get(), 2u);
}

// The hot-swap contract under concurrency: publishers swap snapshots while
// clients query, and every single response must match a direct query against
// the *complete* index of the epoch it is tagged with — a torn or mixed
// snapshot would produce neighbors no single epoch can explain. Run under
// TSan via tools/verify.sh (ctest -L serve).
TEST(QueryEngineTest, ConcurrentQueriesDuringHotSwapNeverTear) {
  constexpr int kSwaps = 8;
  constexpr int kClients = 4;
  constexpr int kQueriesPerClient = 120;

  // Pre-build one index per epoch so expected answers are known exactly.
  std::vector<std::shared_ptr<const EmbeddingIndex>> epochs;
  for (int e = 0; e <= kSwaps; ++e) {
    epochs.push_back(MakeIndex(100 + static_cast<uint64_t>(e)));
  }

  ServeOptions options;
  options.threads = 2;
  options.max_batch = 16;
  options.batch_window_ms = 0.2;
  QueryEngine engine(epochs[0], nullptr, options);

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(static_cast<uint64_t>(c) + 1);
      for (int i = 0; i < kQueriesPerClient; ++i) {
        int64_t id = rng.UniformInt(0, 29);
        ServeResponse response = engine.Query(ById(id, 3));
        if (!response.ok || response.epoch < 1 ||
            response.epoch > static_cast<uint64_t>(kSwaps) + 1) {
          ++failures;
          continue;
        }
        std::vector<Neighbor> expected =
            epochs[response.epoch - 1]->QueryById(id, 3);
        if (expected.size() != response.neighbors.size()) {
          ++failures;
          continue;
        }
        for (size_t j = 0; j < expected.size(); ++j) {
          if (expected[j].id != response.neighbors[j].id ||
              expected[j].score != response.neighbors[j].score) {
            ++failures;
            break;
          }
        }
      }
    });
  }
  std::thread publisher([&] {
    for (int e = 1; e <= kSwaps && !done.load(); ++e) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      engine.Publish(epochs[static_cast<size_t>(e)]);
    }
  });
  for (auto& t : clients) t.join();
  done = true;
  publisher.join();

  EXPECT_EQ(failures.load(), 0);
  ServeStats stats = engine.Stats();
  EXPECT_EQ(stats.requests, static_cast<uint64_t>(kClients) * kQueriesPerClient);
  EXPECT_EQ(stats.errors, 0u);
}

// --- Request-scoped tracing (DESIGN.md §14) ---

// With trace_sample_every=1 every request is traced; the five stages
// telescope over [admit, replied], so statsz must attribute (essentially)
// all of the traced end-to-end latency to named stages — the issue's >= 95%
// acceptance bar, which holds at 100% by construction here.
TEST(QueryEngineTraceTest, AttributesAllLatencyToStages) {
  ServeOptions options;
  options.threads = 1;
  options.max_batch = 8;
  options.batch_window_ms = 1.0;
  options.trace_sample_every = 1;
  auto index = MakeIndex(20);
  QueryEngine engine(index, nullptr, options);

  std::vector<std::future<ServeResponse>> futures;
  for (int i = 0; i < 40; ++i) futures.push_back(engine.Submit(ById(i % 30)));
  for (auto& future : futures) ASSERT_TRUE(future.get().ok);

  ServeTraceStats trace = engine.TraceStats();
  EXPECT_TRUE(trace.enabled);
  EXPECT_EQ(trace.sample_every, 1u);
  EXPECT_EQ(trace.admitted, 40u);
  EXPECT_EQ(trace.traced, 40u);
  EXPECT_GT(trace.traced_total_ms, 0.0);
  EXPECT_GE(trace.attributed_fraction, 0.95);
  EXPECT_LE(trace.attributed_fraction, 1.0 + 1e-6);

  ASSERT_EQ(trace.stages.size(), static_cast<size_t>(obs::kRequestStageCount));
  const char* expected_names[] = {"admission", "queue", "cache", "scan",
                                  "reply"};
  for (size_t s = 0; s < trace.stages.size(); ++s) {
    EXPECT_EQ(trace.stages[s].stage, expected_names[s]);
    EXPECT_EQ(trace.stages[s].count, 40u);
  }

  // The ring holds the most recent traced records and at least one request
  // survives in the slowest table; tail exemplar ids point at real requests.
  EXPECT_FALSE(trace.recent.empty());
  ASSERT_FALSE(trace.slowest.empty());
  EXPECT_GT(trace.slowest[0].id, 0u);
  bool any_exemplar = false;
  for (const auto& stage : trace.stages) {
    for (uint64_t id : stage.exemplars) {
      EXPECT_GT(id, 0u);
      EXPECT_LE(id, 40u);
      any_exemplar = true;
    }
  }
  EXPECT_TRUE(any_exemplar);
}

TEST(QueryEngineTraceTest, DisabledTracingReportsInertStats) {
  ServeOptions options;
  options.threads = 0;
  options.trace_sample_every = 0;
  QueryEngine engine(MakeIndex(21), nullptr, options);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(engine.Query(ById(i)).ok);

  ServeTraceStats trace = engine.TraceStats();
  EXPECT_FALSE(trace.enabled);
  EXPECT_EQ(trace.admitted, 10u);
  EXPECT_EQ(trace.traced, 0u);
  EXPECT_TRUE(trace.recent.empty());
  EXPECT_TRUE(trace.slowest.empty());
}

// The PR 3 invariant extended to the serve path: turning tracing on (even
// trace-everything) must not change a single neighbor id or score bit —
// tracing only reads the clock and writes tracer-owned memory.
TEST(QueryEngineTraceTest, TracingOnIsBitwiseIdenticalToTracingOff) {
  auto index = MakeIndex(22);

  ServeOptions off = Synchronous();
  off.trace_sample_every = 0;
  ServeOptions on = Synchronous();
  on.trace_sample_every = 1;

  QueryEngine engine_off(index, nullptr, off);
  QueryEngine engine_on(index, nullptr, on);
  for (int64_t q = 0; q < 30; ++q) {
    ServeResponse a = engine_off.Query(ById(q, 7));
    ServeResponse b = engine_on.Query(ById(q, 7));
    ASSERT_TRUE(a.ok);
    ASSERT_TRUE(b.ok);
    ASSERT_EQ(a.neighbors.size(), b.neighbors.size());
    for (size_t i = 0; i < a.neighbors.size(); ++i) {
      EXPECT_EQ(a.neighbors[i].id, b.neighbors[i].id);
      EXPECT_EQ(a.neighbors[i].score, b.neighbors[i].score);  // Bitwise.
    }
  }
}

TEST(QueryEngineTraceTest, ErrorsAndCacheHitsStillTelescope) {
  ServeOptions options = Synchronous();
  options.trace_sample_every = 1;
  QueryEngine engine(MakeIndex(23), nullptr, options);

  ASSERT_TRUE(engine.Query(ById(5)).ok);
  EXPECT_TRUE(engine.Query(ById(5)).cache_hit);
  EXPECT_FALSE(engine.Query(ById(-1)).ok);  // Validation error.

  ServeTraceStats trace = engine.TraceStats();
  EXPECT_EQ(trace.traced, 3u);
  ASSERT_EQ(trace.recent.size(), 3u);
  EXPECT_TRUE(trace.recent[0].ok);
  EXPECT_FALSE(trace.recent[0].cache_hit);
  EXPECT_TRUE(trace.recent[1].cache_hit);
  EXPECT_FALSE(trace.recent[2].ok);
  for (const obs::RequestRecord& r : trace.recent) {
    uint64_t sum = 0;
    for (int s = 0; s < obs::kRequestStageCount; ++s) {
      sum += r.StageNanos(static_cast<obs::RequestStage>(s));
    }
    EXPECT_EQ(sum, r.TotalNanos());
  }
  // A cache hit's scan stage collapses to the two adjacent clock reads that
  // bracket the (skipped) scan — effectively zero next to any real scan.
  EXPECT_LE(trace.recent[1].StageNanos(obs::RequestStage::kScan), 1000000u);
}

TEST(QueryEngineTraceTest, StatsIncludesSnapshotAndTierGauges) {
  QueryEngine engine(MakeIndex(24), nullptr, Synchronous());
  ServeStats stats = engine.Stats();
  EXPECT_FALSE(stats.simd_tier.empty());
  EXPECT_FALSE(stats.precision.empty());
  EXPECT_GT(stats.index_bytes, 0u);
  // The snapshot.* fields mirror the process-wide registry; no snapshot was
  // loaded in this test binary, so they are present-but-zero.
  EXPECT_EQ(stats.snapshot_load_errors, 0u);
}

}  // namespace
}  // namespace sarn::serve
