#include "core/negative_queue.h"

#include <set>

#include <gtest/gtest.h>

#include "common/binary_io.h"
#include "roadnet/synthetic_city.h"

namespace sarn::core {
namespace {

class NegativeQueueTest : public testing::Test {
 protected:
  NegativeQueueTest() {
    roadnet::SyntheticCityConfig config;
    config.rows = 12;
    config.cols = 12;
    network_ = roadnet::GenerateSyntheticCity(config);
  }

  std::vector<float> Vec(float value) { return std::vector<float>(4, value); }

  roadnet::RoadNetwork network_;
};

TEST_F(NegativeQueueTest, CapacityFromBudget) {
  NegativeQueueStore store(network_, /*cell_side_meters=*/400.0, /*queue_budget=*/100);
  EXPECT_GT(store.num_cells(), 1);
  EXPECT_GE(store.per_cell_capacity(), 2);
  EXPECT_LE(store.per_cell_capacity() * store.num_cells(), 100 + 2 * store.num_cells());
}

TEST_F(NegativeQueueTest, PushAndEvictFifo) {
  NegativeQueueStore store(network_, 400.0, 2 * 100);  // Tiny capacity per cell.
  int capacity = store.per_cell_capacity();
  roadnet::SegmentId s = 0;
  for (int i = 0; i < capacity + 3; ++i) store.Push(s, Vec(static_cast<float>(i)));
  // Only the most recent `capacity` entries remain; s's own entries are
  // excluded from its local negatives, so query from another segment in the
  // same cell if one exists, else check totals.
  EXPECT_EQ(store.TotalStored(), capacity);
}

TEST_F(NegativeQueueTest, LocalNegativesExcludeAnchor) {
  NegativeQueueStore store(network_, 600.0, 1000);
  // Find two segments in the same cell.
  roadnet::SegmentId a = 0, b = -1;
  for (int64_t i = 1; i < network_.num_segments(); ++i) {
    if (store.CellOf(i) == store.CellOf(a)) {
      b = i;
      break;
    }
  }
  ASSERT_GE(b, 0) << "no cell with two segments";
  store.Push(a, Vec(1.0f));
  store.Push(b, Vec(2.0f));
  auto negatives = store.LocalNegatives(a);
  ASSERT_EQ(negatives.size(), 1u);
  EXPECT_EQ(negatives[0]->segment, b);
  EXPECT_EQ(negatives[0]->embedding[0], 2.0f);
}

TEST_F(NegativeQueueTest, GlobalNegativesSkipOwnCell) {
  NegativeQueueStore store(network_, 600.0, 1000);
  // Put entries into the cells of three well-separated segments.
  roadnet::SegmentId a = 0;
  roadnet::SegmentId far1 = network_.num_segments() - 1;
  roadnet::SegmentId far2 = network_.num_segments() / 2;
  store.Push(a, Vec(1.0f));
  store.Push(far1, Vec(2.0f));
  store.Push(far2, Vec(3.0f));
  std::set<int> cells = {store.CellOf(a), store.CellOf(far1), store.CellOf(far2)};
  auto globals = store.GlobalNegatives(a);
  EXPECT_EQ(globals.size(), cells.size() - 1);  // Own cell excluded.
}

TEST_F(NegativeQueueTest, CellAggregateIsMean) {
  NegativeQueueStore store(network_, 600.0, 1000);
  store.Push(0, Vec(1.0f));
  store.Push(0, Vec(3.0f));
  std::vector<float> aggregate = store.OwnCellAggregate(0);
  ASSERT_EQ(aggregate.size(), 4u);
  for (float v : aggregate) EXPECT_FLOAT_EQ(v, 2.0f);
}

TEST_F(NegativeQueueTest, EmptyCellAggregateEmpty) {
  NegativeQueueStore store(network_, 600.0, 1000);
  EXPECT_TRUE(store.OwnCellAggregate(0).empty());
  EXPECT_TRUE(store.GlobalNegatives(0).empty());
  EXPECT_TRUE(store.LocalNegatives(0).empty());
}

TEST_F(NegativeQueueTest, RandomNegativesRespectCountAndAnchor) {
  NegativeQueueStore store(network_, 600.0, 1000);
  Rng rng(3);
  for (int64_t i = 0; i < 50; ++i) {
    store.Push(i % network_.num_segments(), Vec(static_cast<float>(i)));
  }
  auto negatives = store.RandomNegatives(0, 10, rng);
  EXPECT_LE(negatives.size(), 10u);
  for (const QueueEntry* entry : negatives) EXPECT_NE(entry->segment, 0);
}

TEST_F(NegativeQueueTest, NonEmptyCellsTracksPushes) {
  NegativeQueueStore store(network_, 600.0, 1000);
  EXPECT_TRUE(store.NonEmptyCells().empty());
  store.Push(0, Vec(1.0f));
  store.Push(network_.num_segments() - 1, Vec(1.0f));
  auto cells = store.NonEmptyCells();
  EXPECT_GE(cells.size(), 1u);
  EXPECT_LE(cells.size(), 2u);
  for (size_t i = 1; i < cells.size(); ++i) EXPECT_LT(cells[i - 1], cells[i]);
}

// --- Checkpoint state round-trips -------------------------------------------

TEST_F(NegativeQueueTest, StateRoundTripRestoresContents) {
  NegativeQueueStore a(network_, 600.0, 1000);
  Rng rng(3);
  for (int64_t i = 0; i < 80; ++i) {
    a.Push(i % network_.num_segments(), Vec(static_cast<float>(i)));
  }
  ByteWriter writer;
  a.SaveState(writer);

  NegativeQueueStore b(network_, 600.0, 1000);  // Fresh, empty store.
  ByteReader reader(writer.buffer());
  ASSERT_TRUE(b.LoadState(reader));
  EXPECT_TRUE(reader.AtEnd());

  EXPECT_EQ(b.TotalStored(), a.TotalStored());
  EXPECT_EQ(b.NonEmptyCells(), a.NonEmptyCells());
  for (roadnet::SegmentId s : {int64_t{0}, network_.num_segments() / 2,
                               network_.num_segments() - 1}) {
    auto na = a.LocalNegatives(s);
    auto nb = b.LocalNegatives(s);
    ASSERT_EQ(na.size(), nb.size());
    for (size_t i = 0; i < na.size(); ++i) {
      EXPECT_EQ(na[i]->segment, nb[i]->segment);
      EXPECT_EQ(na[i]->embedding, nb[i]->embedding);  // Bitwise float equality.
    }
    EXPECT_EQ(a.OwnCellAggregate(s), b.OwnCellAggregate(s));
  }
}

TEST_F(NegativeQueueTest, LoadStateRejectsMismatchedGrid) {
  NegativeQueueStore a(network_, 600.0, 1000);
  a.Push(0, Vec(1.0f));
  ByteWriter writer;
  a.SaveState(writer);

  // A store over a different grid (cell side) must not accept the state.
  NegativeQueueStore b(network_, 1200.0, 1000);
  b.Push(0, Vec(9.0f));
  ByteReader reader(writer.buffer());
  EXPECT_FALSE(b.LoadState(reader));
  // Failed load leaves the store untouched.
  EXPECT_EQ(b.TotalStored(), 1);
  auto aggregate = b.OwnCellAggregate(0);
  ASSERT_EQ(aggregate.size(), 4u);
  EXPECT_EQ(aggregate[0], 9.0f);
}

TEST_F(NegativeQueueTest, LoadStateRejectsTruncatedInput) {
  NegativeQueueStore a(network_, 600.0, 1000);
  for (int64_t i = 0; i < 20; ++i) a.Push(i, Vec(static_cast<float>(i)));
  ByteWriter writer;
  a.SaveState(writer);
  std::string cut = writer.buffer().substr(0, writer.buffer().size() - 8);

  NegativeQueueStore b(network_, 600.0, 1000);
  ByteReader reader(cut);
  EXPECT_FALSE(b.LoadState(reader));
  EXPECT_EQ(b.TotalStored(), 0);
}

TEST_F(NegativeQueueTest, NearbySegmentsShareCells) {
  NegativeQueueStore store(network_, 1200.0, 1000);
  // Segments whose midpoints are within ~50 m should usually share a cell
  // with a 1200 m grid. Verify for a segment and its topological successor.
  int same = 0, total = 0;
  for (const roadnet::TopoEdge& e : network_.topo_edges()) {
    if (total >= 200) break;
    same += store.CellOf(e.from) == store.CellOf(e.to) ? 1 : 0;
    ++total;
  }
  EXPECT_GT(static_cast<double>(same) / total, 0.8);
}

}  // namespace
}  // namespace sarn::core
