// Tests for the Prometheus text exposition emitter (src/obs/prom_export.h).

#include "obs/prom_export.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace sarn::obs {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(PromMetricNameTest, ReplacesDotsAndInvalidCharacters) {
  EXPECT_EQ(PromMetricName("sarn.serve.requests"), "sarn_serve_requests");
  EXPECT_EQ(PromMetricName("sarn.slo.p99_ms"), "sarn_slo_p99_ms");
  EXPECT_EQ(PromMetricName("weird-name with/slash"), "weird_name_with_slash");
  EXPECT_EQ(PromMetricName("ok_name:sub"), "ok_name:sub");  // ':' is legal.
}

TEST(PromMetricNameTest, LeadingDigitGainsPrefix) {
  EXPECT_EQ(PromMetricName("9lives"), "_9lives");
  EXPECT_EQ(PromMetricName("x9lives"), "x9lives");
}

TEST(PrometheusTextTest, EmitsCounterAndGauge) {
  MetricsRegistry registry;
  registry.GetCounter("sarn.test.requests").Increment(42);
  registry.GetGauge("sarn.test.occupancy").Set(2.5);

  std::string text = PrometheusText(registry.Snapshot());
  EXPECT_NE(text.find("# TYPE sarn_test_requests counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("sarn_test_requests 42\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE sarn_test_occupancy gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("sarn_test_occupancy 2.5\n"), std::string::npos);
  EXPECT_EQ(text.back(), '\n');
}

TEST(PrometheusTextTest, EmitsCumulativeHistogramSeries) {
  MetricsRegistry registry;
  // Power-of-two bounds and samples render exactly under %.17g.
  Histogram& h =
      registry.GetHistogram("sarn.test.latency", {0.25, 0.5, 1.0});
  h.Observe(0.125);  // Bucket le=0.25.
  h.Observe(0.375);  // Bucket le=0.5.
  h.Observe(0.375);
  h.Observe(5.0);    // Overflow -> only le=+Inf.

  std::string text = PrometheusText(registry.Snapshot());
  EXPECT_NE(text.find("# TYPE sarn_test_latency histogram\n"),
            std::string::npos);
  // Buckets are cumulative.
  EXPECT_NE(text.find("sarn_test_latency_bucket{le=\"0.25\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("sarn_test_latency_bucket{le=\"0.5\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("sarn_test_latency_bucket{le=\"1\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("sarn_test_latency_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("sarn_test_latency_count 4\n"), std::string::npos);
  EXPECT_NE(text.find("sarn_test_latency_sum 5.875\n"), std::string::npos);
}

TEST(PrometheusTextTest, BucketCountEqualsInfBucket) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("sarn.test.h", {1.0});
  h.Observe(0.5);
  h.Observe(2.0);

  std::string text = PrometheusText(registry.Snapshot());
  EXPECT_NE(text.find("sarn_test_h_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("sarn_test_h_count 2\n"), std::string::npos);
}

TEST(PrometheusTextTest, EmptySnapshotIsEmptyText) {
  MetricsRegistry registry;
  EXPECT_TRUE(PrometheusText(registry.Snapshot()).empty());
}

TEST(WritePromFileTest, RoundTripsThroughDisk) {
  MetricsRegistry registry;
  registry.GetCounter("sarn.test.writes").Increment(7);
  MetricsSnapshot snapshot = registry.Snapshot();

  std::string path = testing::TempDir() + "/sarn_prom_test.prom";
  ASSERT_TRUE(WritePromFile(snapshot, path));
  EXPECT_EQ(ReadFile(path), PrometheusText(snapshot));

  // Overwrite is atomic (tmp + rename): a second write fully replaces.
  registry.GetCounter("sarn.test.writes").Increment(1);
  snapshot = registry.Snapshot();
  ASSERT_TRUE(WritePromFile(snapshot, path));
  EXPECT_EQ(ReadFile(path), PrometheusText(snapshot));
  EXPECT_NE(ReadFile(path).find("sarn_test_writes 8\n"), std::string::npos);
  std::remove(path.c_str());
}

TEST(WritePromFileTest, FailsOnUnwritablePath) {
  MetricsRegistry registry;
  registry.GetCounter("sarn.test.x").Increment(1);
  EXPECT_FALSE(WritePromFile(registry.Snapshot(),
                             "/nonexistent_dir_xyz/out.prom"));
}

}  // namespace
}  // namespace sarn::obs
