#include <cstdio>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "geo/point.h"
#include "graph/dijkstra.h"
#include "roadnet/features.h"
#include "roadnet/io.h"
#include "roadnet/road_network.h"
#include "roadnet/road_types.h"
#include "roadnet/synthetic_city.h"

namespace sarn::roadnet {
namespace {

TEST(RoadTypesTest, WeightsMatchPaperAnchors) {
  EXPECT_DOUBLE_EQ(HighwayWeight(HighwayType::kMotorway), 6.0);
  EXPECT_DOUBLE_EQ(HighwayWeight(HighwayType::kResidential), 2.0);
}

TEST(RoadTypesTest, WeightsMonotoneInHierarchy) {
  const auto& all = AllHighwayTypes();
  for (size_t i = 0; i + 1 < all.size(); ++i) {
    EXPECT_GT(HighwayWeight(all[i]), HighwayWeight(all[i + 1]));
  }
}

TEST(RoadTypesTest, NameRoundTrip) {
  for (HighwayType type : AllHighwayTypes()) {
    EXPECT_EQ(HighwayFromName(HighwayName(type)).value(), type);
  }
  EXPECT_FALSE(HighwayFromName("spaceway").has_value());
}

TEST(RoadTypesTest, SpeedPoolsNonEmptyAndOrdered) {
  // Faster road classes should offer faster max speeds.
  EXPECT_GT(TypicalSpeedLimits(HighwayType::kMotorway).back(),
            TypicalSpeedLimits(HighwayType::kResidential).back());
  for (HighwayType type : AllHighwayTypes()) {
    EXPECT_FALSE(TypicalSpeedLimits(type).empty());
  }
}

class BuilderTest : public testing::Test {
 protected:
  BuilderTest() : proj_(geo::LatLng{30.0, 104.0}) {}

  int64_t NodeAt(double x, double y) { return builder_.AddNode(proj_.ToLatLng(x, y)); }

  geo::LocalProjection proj_;
  RoadNetworkBuilder builder_;
};

TEST_F(BuilderTest, SegmentGeometryDerived) {
  int64_t a = NodeAt(0, 0);
  int64_t b = NodeAt(100, 0);
  builder_.AddSegment(a, b, HighwayType::kPrimary, 60);
  RoadNetwork network = builder_.Build();
  ASSERT_EQ(network.num_segments(), 1);
  const RoadSegment& s = network.segment(0);
  EXPECT_NEAR(s.length_meters, 100.0, 0.5);
  EXPECT_NEAR(s.radian, 0.0, 1e-4);  // Due east.
  EXPECT_EQ(s.speed_limit_kmh.value(), 60);
  EXPECT_EQ(s.type, HighwayType::kPrimary);
}

TEST_F(BuilderTest, TopologicalEdgesFollowSharedIntersections) {
  int64_t a = NodeAt(0, 0), b = NodeAt(100, 0), c = NodeAt(200, 0);
  SegmentId s0 = builder_.AddSegment(a, b, HighwayType::kMotorway);
  SegmentId s1 = builder_.AddSegment(b, c, HighwayType::kResidential);
  RoadNetwork network = builder_.Build();
  ASSERT_EQ(network.topo_edges().size(), 1u);
  const TopoEdge& e = network.topo_edges()[0];
  EXPECT_EQ(e.from, s0);
  EXPECT_EQ(e.to, s1);
  // Eq. 1: mean of the two type weights.
  EXPECT_DOUBLE_EQ(e.weight, (6.0 + 2.0) / 2.0);
}

TEST_F(BuilderTest, UTurnOntoReverseTwinExcluded) {
  int64_t a = NodeAt(0, 0), b = NodeAt(100, 0);
  builder_.AddSegment(a, b, HighwayType::kResidential);
  builder_.AddSegment(b, a, HighwayType::kResidential);
  RoadNetwork network = builder_.Build();
  EXPECT_TRUE(network.topo_edges().empty());
}

TEST_F(BuilderTest, LengthWeightedGraphForRouting) {
  int64_t a = NodeAt(0, 0), b = NodeAt(100, 0), c = NodeAt(300, 0);
  builder_.AddSegment(a, b, HighwayType::kPrimary);   // 100 m.
  builder_.AddSegment(b, c, HighwayType::kPrimary);   // 200 m.
  RoadNetwork network = builder_.Build();
  graph::CsrGraph g = network.ToLengthWeightedGraph();
  // Midpoint-to-midpoint: (100+200)/2 = 150.
  EXPECT_NEAR(graph::ShortestPathDistance(g, 0, 1).value(), 150.0, 1.0);
}

TEST_F(BuilderTest, BoundingBoxCoversEndpoints) {
  int64_t a = NodeAt(0, 0), b = NodeAt(500, 700);
  builder_.AddSegment(a, b, HighwayType::kPrimary);
  RoadNetwork network = builder_.Build();
  EXPECT_NEAR(network.bounding_box().WidthMeters(), 500.0, 5.0);
  EXPECT_NEAR(network.bounding_box().HeightMeters(), 700.0, 5.0);
}

TEST(SyntheticCityTest, GeneratesRequestedScale) {
  SyntheticCityConfig config;
  config.rows = 16;
  config.cols = 16;
  RoadNetwork network = GenerateSyntheticCity(config);
  // ~2 links per node pair, mostly two-way: between 1.2x and 4x node count.
  EXPECT_GT(network.num_segments(), 16 * 16);
  EXPECT_LT(network.num_segments(), 16 * 16 * 4);
  EXPECT_GT(network.topo_edges().size(), static_cast<size_t>(network.num_segments()));
}

TEST(SyntheticCityTest, DeterministicForSeed) {
  SyntheticCityConfig config;
  config.rows = 10;
  config.cols = 10;
  RoadNetwork a = GenerateSyntheticCity(config);
  RoadNetwork b = GenerateSyntheticCity(config);
  ASSERT_EQ(a.num_segments(), b.num_segments());
  for (int64_t i = 0; i < a.num_segments(); ++i) {
    EXPECT_EQ(a.segment(i).type, b.segment(i).type);
    EXPECT_DOUBLE_EQ(a.segment(i).start.lat, b.segment(i).start.lat);
  }
}

TEST(SyntheticCityTest, ContainsRoadHierarchy) {
  SyntheticCityConfig config;
  config.rows = 20;
  config.cols = 20;
  RoadNetwork network = GenerateSyntheticCity(config);
  std::map<HighwayType, int> counts;
  for (const RoadSegment& s : network.segments()) ++counts[s.type];
  EXPECT_GT(counts[HighwayType::kMotorway], 0);
  EXPECT_GT(counts[HighwayType::kTrunk], 0);
  EXPECT_GT(counts[HighwayType::kPrimary], 0);
  EXPECT_GT(counts[HighwayType::kResidential], 0);
  // Residential should dominate, motorways be rare (ring only).
  EXPECT_GT(counts[HighwayType::kResidential], counts[HighwayType::kMotorway]);
}

TEST(SyntheticCityTest, SegmentGraphWeaklyConnected) {
  SyntheticCityConfig config;
  config.rows = 14;
  config.cols = 14;
  config.street_drop_fraction = 0.15;
  RoadNetwork network = GenerateSyntheticCity(config);
  graph::CsrGraph g = network.ToTypeWeightedGraph();
  EXPECT_EQ(g.CountWeakComponents(), 1);
}

TEST(SyntheticCityTest, MeanSegmentLengthNearBlockSize) {
  SyntheticCityConfig config;
  config.rows = 18;
  config.cols = 18;
  config.block_meters = 100.0;
  RoadNetwork network = GenerateSyntheticCity(config);
  EXPECT_GT(network.MeanSegmentLength(), 60.0);
  EXPECT_LT(network.MeanSegmentLength(), 160.0);
}

TEST(SyntheticCityTest, SpeedLabelsCorrelateWithType) {
  SyntheticCityConfig config;
  config.rows = 20;
  config.cols = 20;
  config.speed_noise = 0.0;
  RoadNetwork network = GenerateSyntheticCity(config);
  // Labels are posted per street line; segments whose sprinkled type differs
  // from the line majority may inherit the line speed, so require only a
  // strong majority to come from the segment's own type pool.
  int in_pool = 0, total = 0;
  for (const RoadSegment& s : network.segments()) {
    ASSERT_TRUE(s.speed_limit_kmh.has_value());
    const std::vector<int>& pool = TypicalSpeedLimits(s.type);
    in_pool += std::find(pool.begin(), pool.end(), *s.speed_limit_kmh) != pool.end();
    ++total;
  }
  EXPECT_GT(static_cast<double>(in_pool) / total, 0.7);
}

TEST(SyntheticCityTest, SpeedLabelsSharedAlongStreets) {
  SyntheticCityConfig config;
  config.rows = 20;
  config.cols = 20;
  RoadNetwork network = GenerateSyntheticCity(config);
  // Topologically consecutive same-type segments (same street, usually the
  // same line) share their posted limit far more often than random pairs.
  int same_street_equal = 0, same_street_total = 0;
  for (const TopoEdge& e : network.topo_edges()) {
    const RoadSegment& a = network.segment(e.from);
    const RoadSegment& b = network.segment(e.to);
    if (a.type != b.type || !a.speed_limit_kmh || !b.speed_limit_kmh) continue;
    same_street_equal += *a.speed_limit_kmh == *b.speed_limit_kmh ? 1 : 0;
    ++same_street_total;
  }
  ASSERT_GT(same_street_total, 50);
  EXPECT_GT(static_cast<double>(same_street_equal) / same_street_total, 0.6);
}

TEST(SyntheticCityTest, LabelFractionRespected) {
  SyntheticCityConfig config;
  config.rows = 20;
  config.cols = 20;
  config.speed_label_fraction = 0.3;
  RoadNetwork network = GenerateSyntheticCity(config);
  int labeled = 0;
  for (const RoadSegment& s : network.segments()) labeled += s.speed_limit_kmh ? 1 : 0;
  double fraction = labeled / static_cast<double>(network.num_segments());
  EXPECT_NEAR(fraction, 0.3, 0.07);
}

TEST(SyntheticCityTest, PresetsScaleSegmentCounts) {
  RoadNetwork small = GenerateSyntheticCity(SanFranciscoLikeConfig(0.02));
  RoadNetwork large = GenerateSyntheticCity(SanFranciscoLikeConfig(0.08));
  EXPECT_GT(large.num_segments(), small.num_segments() * 2);
  EXPECT_LT(large.num_segments(), small.num_segments() * 8);
}

TEST(SyntheticCityTest, CityConfigByNameVariants) {
  EXPECT_GT(GenerateSyntheticCity(CityConfigByName("SF-L", 0.02)).num_segments(),
            GenerateSyntheticCity(CityConfigByName("SF-S", 0.02)).num_segments());
}

TEST(FeaturizerTest, ShapesAndVocabularies) {
  RoadNetwork network = GenerateSyntheticCity(SyntheticCityConfig{});
  SegmentFeatures features = FeaturizeSegments(network);
  ASSERT_EQ(features.ids.size(), static_cast<size_t>(kNumSegmentFeatures));
  ASSERT_EQ(features.vocab_sizes.size(), static_cast<size_t>(kNumSegmentFeatures));
  EXPECT_EQ(features.vocab_sizes[0], kNumHighwayTypes);
  EXPECT_EQ(features.vocab_sizes[2], 36);  // 360 / 10-degree bins.
  for (int f = 0; f < kNumSegmentFeatures; ++f) {
    ASSERT_EQ(features.ids[f].size(), static_cast<size_t>(network.num_segments()));
    for (int64_t id : features.ids[f]) {
      EXPECT_GE(id, 0);
      EXPECT_LT(id, features.vocab_sizes[f]);
    }
  }
}

TEST(FeaturizerTest, NearbySegmentsShareCoordinateBins) {
  RoadNetworkBuilder builder;
  geo::LocalProjection proj(geo::LatLng{30.0, 104.0});
  int64_t a = builder.AddNode(proj.ToLatLng(0, 0));
  int64_t b = builder.AddNode(proj.ToLatLng(10, 0));
  int64_t c = builder.AddNode(proj.ToLatLng(5000, 0));
  int64_t d = builder.AddNode(proj.ToLatLng(5010, 0));
  builder.AddSegment(a, b, HighwayType::kPrimary);
  builder.AddSegment(c, d, HighwayType::kPrimary);
  SegmentFeatures features = FeaturizeSegments(builder.Build());
  // Same 50 m bin for the two endpoints of the short segment...
  EXPECT_EQ(features.ids[4][0], features.ids[6][0]);
  // ...but far-apart segments land in different longitude bins.
  EXPECT_NE(features.ids[4][0], features.ids[4][1]);
}

TEST(FeaturizerTest, DenseFeaturesShape) {
  RoadNetwork network = GenerateSyntheticCity(SyntheticCityConfig{});
  auto dense = DenseSegmentFeatures(network);
  ASSERT_EQ(dense.size(), static_cast<size_t>(network.num_segments()));
  EXPECT_EQ(dense[0].size(), static_cast<size_t>(kNumHighwayTypes + 6));
  // One-hot type sums to 1.
  float type_sum = 0;
  for (int t = 0; t < kNumHighwayTypes; ++t) type_sum += dense[0][static_cast<size_t>(t)];
  EXPECT_FLOAT_EQ(type_sum, 1.0f);
}

TEST(IoTest, SaveLoadRoundTrip) {
  SyntheticCityConfig config;
  config.rows = 8;
  config.cols = 8;
  RoadNetwork original = GenerateSyntheticCity(config);
  std::string path = testing::TempDir() + "/sarn_roadnet_io_test.csv";
  ASSERT_TRUE(SaveRoadNetworkCsv(original, path));
  auto loaded = LoadRoadNetworkCsv(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->num_segments(), original.num_segments());
  EXPECT_EQ(loaded->topo_edges().size(), original.topo_edges().size());
  for (int64_t i = 0; i < original.num_segments(); ++i) {
    EXPECT_EQ(loaded->segment(i).type, original.segment(i).type);
    EXPECT_EQ(loaded->segment(i).speed_limit_kmh, original.segment(i).speed_limit_kmh);
    EXPECT_NEAR(loaded->segment(i).length_meters, original.segment(i).length_meters, 0.1);
  }
  std::remove(path.c_str());
}

TEST(IoTest, LoadMissingFileFails) {
  EXPECT_FALSE(LoadRoadNetworkCsv("/nonexistent/net.csv").has_value());
}

}  // namespace
}  // namespace sarn::roadnet
