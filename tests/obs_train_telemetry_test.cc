// End-to-end telemetry tests: SarnModel::Train with a MetricsSink attached
// emits one well-formed EpochRecord per epoch plus checkpoint lifecycle
// events, the JSONL file stays continuous across a kill+resume, and — the
// PR's core invariant — attaching telemetry does not perturb the numerics
// (epoch losses are bitwise identical with and without a sink).

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "core/sarn_model.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/metrics_sink.h"
#include "obs/trace.h"
#include "roadnet/synthetic_city.h"

namespace sarn::core {
namespace {

SarnConfig SmallConfig() {
  SarnConfig config;
  config.hidden_dim = 16;
  config.embedding_dim = 16;
  config.projection_dim = 8;
  config.gat_layers = 2;
  config.gat_heads = 2;
  config.feature_dim_per_feature = 4;
  config.max_epochs = 4;
  config.batch_size = 128;
  config.queue_budget = 400;
  return config;
}

class CollectingSink : public obs::MetricsSink {
 public:
  void OnEpoch(const obs::EpochRecord& record) override {
    epochs.push_back(record);
  }
  void OnCheckpoint(const obs::CheckpointEvent& event) override {
    checkpoints.push_back(event);
  }
  void Flush() override { ++flushes; }

  std::vector<obs::EpochRecord> epochs;
  std::vector<obs::CheckpointEvent> checkpoints;
  int flushes = 0;
};

double PhaseSeconds(const obs::EpochRecord& record, const std::string& name) {
  for (const auto& [phase, seconds] : record.phase_seconds) {
    if (phase == name) return seconds;
  }
  return -1.0;
}

class TrainTelemetryTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    roadnet::SyntheticCityConfig city;
    city.rows = 8;
    city.cols = 8;
    network_ = new roadnet::RoadNetwork(roadnet::GenerateSyntheticCity(city));
  }
  static void TearDownTestSuite() {
    delete network_;
    network_ = nullptr;
  }

  static roadnet::RoadNetwork* network_;
};

roadnet::RoadNetwork* TrainTelemetryTest::network_ = nullptr;

TEST_F(TrainTelemetryTest, EmitsOneRecordPerEpochWithSaneFields) {
  SarnModel model(*network_, SmallConfig());
  CollectingSink sink;
  TrainOptions options;
  options.metrics_sink = &sink;
  TrainStats stats = model.Train(options);

  ASSERT_EQ(static_cast<int>(sink.epochs.size()), stats.epochs_run);
  EXPECT_GE(sink.flushes, 1);
  for (int i = 0; i < stats.epochs_run; ++i) {
    const obs::EpochRecord& record = sink.epochs[static_cast<size_t>(i)];
    EXPECT_EQ(record.run, "sarn");
    EXPECT_EQ(record.epoch, i);
    EXPECT_TRUE(std::isfinite(record.loss));
    EXPECT_DOUBLE_EQ(record.loss, stats.epoch_losses[static_cast<size_t>(i)]);
    EXPECT_GT(record.grad_norm, 0.0);
    EXPECT_GT(record.learning_rate, 0.0);
    EXPECT_GT(record.batches, 0);
    EXPECT_GT(record.epoch_seconds, 0.0);
    EXPECT_FALSE(record.resumed);
    // The big phases must have been measured.
    EXPECT_GT(PhaseSeconds(record, "online_forward"), 0.0);
    EXPECT_GT(PhaseSeconds(record, "target_forward"), 0.0);
    EXPECT_GT(PhaseSeconds(record, "backward"), 0.0);
    EXPECT_GE(PhaseSeconds(record, "augmentation"), 0.0);
    // SARN has negative queues: occupancy is reported.
    EXPECT_GE(record.queue_stored, 0);
    EXPECT_GT(record.queue_pushes, 0u);
  }
}

TEST_F(TrainTelemetryTest, RegistryTracksEpochsAndLoss) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  uint64_t epochs_before = registry.GetCounter("sarn.train.epochs").Value();
  SarnModel model(*network_, SmallConfig());
  TrainStats stats = model.Train(TrainOptions{});
  EXPECT_EQ(registry.GetCounter("sarn.train.epochs").Value(),
            epochs_before + static_cast<uint64_t>(stats.epochs_run));
  EXPECT_DOUBLE_EQ(registry.GetGauge("sarn.train.loss").Value(), stats.final_loss);
}

TEST_F(TrainTelemetryTest, TelemetryDoesNotPerturbTraining) {
  // Bitwise invariance: a run with a sink + tracing enabled must produce
  // exactly the losses of a run with telemetry off (telemetry only measures).
  SarnConfig config = SmallConfig();
  TrainStats plain;
  {
    SarnModel model(*network_, config);
    plain = model.Train(TrainOptions{});
  }
  TrainStats instrumented;
  CollectingSink sink;
  obs::Tracer::Instance().SetEnabled(true);
  {
    SarnModel model(*network_, config);
    TrainOptions options;
    options.metrics_sink = &sink;
    instrumented = model.Train(options);
  }
  obs::Tracer::Instance().SetEnabled(false);
  obs::Tracer::Instance().Drain();

  ASSERT_EQ(plain.epochs_run, instrumented.epochs_run);
  ASSERT_EQ(plain.epoch_losses.size(), instrumented.epoch_losses.size());
  for (size_t i = 0; i < plain.epoch_losses.size(); ++i) {
    EXPECT_EQ(plain.epoch_losses[i], instrumented.epoch_losses[i])
        << "epoch " << i << " diverged with telemetry attached";
  }
}

TEST_F(TrainTelemetryTest, CheckpointEventsAndJsonlContinuityAcrossResume) {
  namespace fs = std::filesystem;
  fs::path dir = fs::path(::testing::TempDir()) / "obs_telemetry_resume";
  fs::remove_all(dir);
  fs::create_directories(dir);
  std::string jsonl = (dir / "metrics.jsonl").string();
  SarnConfig config = SmallConfig();

  // Phase 1: train to 2 of 4 epochs, then "die".
  {
    obs::JsonlMetricsSink sink(jsonl);
    ASSERT_TRUE(sink.ok());
    SarnModel model(*network_, config);
    TrainOptions options;
    options.checkpoint_dir = (dir / "ckpt").string();
    options.max_epochs = 2;
    options.metrics_sink = &sink;
    TrainStats stats = model.Train(options);
    EXPECT_EQ(stats.epochs_run, 2);
  }
  // Phase 2: fresh process/model resumes and finishes; same JSONL path.
  {
    obs::JsonlMetricsSink sink(jsonl);
    ASSERT_TRUE(sink.ok());
    CollectingSink mirror;  // Not used here; keeps the type exercised.
    SarnModel model(*network_, config);
    TrainOptions options;
    options.checkpoint_dir = (dir / "ckpt").string();
    options.metrics_sink = &sink;
    TrainStats stats = model.Train(options);
    EXPECT_EQ(stats.resumed_from_epoch, 2);
    EXPECT_EQ(stats.epochs_run, config.max_epochs);
  }

  std::ifstream file(jsonl);
  ASSERT_TRUE(file.is_open());
  std::ostringstream buffer;
  buffer << file.rdbuf();
  std::string text = buffer.str();
  std::string error;
  EXPECT_TRUE(obs::JsonLinesValid(text, &error)) << error;

  // The epoch series must be continuous: 0, 1 from the first run and 2, 3
  // from the resumed one (restored epochs are not re-emitted), with the
  // resumed run's checkpoint events interleaved.
  std::vector<int> epoch_series;
  bool saw_resumed_from = false;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find("\"event\":\"epoch\"") != std::string::npos) {
      size_t at = line.find("\"epoch\":");
      ASSERT_NE(at, std::string::npos);
      epoch_series.push_back(std::atoi(line.c_str() + at + 8));
    }
    if (line.find("\"action\":\"resumed_from\"") != std::string::npos) {
      saw_resumed_from = true;
    }
  }
  ASSERT_EQ(epoch_series.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(epoch_series[static_cast<size_t>(i)], i);
  EXPECT_TRUE(saw_resumed_from);
  EXPECT_NE(text.find("\"action\":\"written\""), std::string::npos);
  EXPECT_NE(text.find("\"resumed\":true"), std::string::npos);

  fs::remove_all(dir);
}

// Kill+resume trace-span export (ISSUE 8 satellite): the Chrome trace from a
// resumed run must stay one valid JSON document holding spans from BOTH
// process lifetimes — the first run writes the file, the resumed run splices
// its spans in via AppendChromeTrace (the same call CmdTrain makes when
// resumed_from_epoch > 0).
TEST_F(TrainTelemetryTest, ChromeTraceSurvivesKillAndResume) {
  namespace fs = std::filesystem;
  fs::path dir = fs::path(::testing::TempDir()) / "obs_telemetry_trace_resume";
  fs::remove_all(dir);
  fs::create_directories(dir);
  std::string trace_path = (dir / "trace.json").string();
  SarnConfig config = SmallConfig();

  // Phase 1: train 2 of 4 epochs with tracing on, export, then "die".
  size_t first_life_spans = 0;
  {
    obs::Tracer::Instance().SetEnabled(true);
    obs::Tracer::Instance().Drain();
    SarnModel model(*network_, config);
    TrainOptions options;
    options.checkpoint_dir = (dir / "ckpt").string();
    options.max_epochs = 2;
    model.Train(options);
    std::vector<obs::TraceEvent> events = obs::Tracer::Instance().Drain();
    obs::Tracer::Instance().SetEnabled(false);
    first_life_spans = events.size();
    ASSERT_GT(first_life_spans, 0u);
    ASSERT_TRUE(obs::Tracer::WriteChromeTrace(trace_path, events));
  }
  // Phase 2: a fresh "process" resumes from the checkpoint and appends its
  // spans to the same trace file.
  size_t second_life_spans = 0;
  {
    obs::Tracer::Instance().SetEnabled(true);
    obs::Tracer::Instance().Drain();
    SarnModel model(*network_, config);
    TrainOptions options;
    options.checkpoint_dir = (dir / "ckpt").string();
    TrainStats stats = model.Train(options);
    EXPECT_EQ(stats.resumed_from_epoch, 2);
    std::vector<obs::TraceEvent> events = obs::Tracer::Instance().Drain();
    obs::Tracer::Instance().SetEnabled(false);
    second_life_spans = events.size();
    ASSERT_GT(second_life_spans, 0u);
    ASSERT_TRUE(obs::Tracer::AppendChromeTrace(trace_path, events));
  }

  std::ifstream file(trace_path);
  ASSERT_TRUE(file.is_open());
  std::ostringstream buffer;
  buffer << file.rdbuf();
  std::string text = buffer.str();
  std::string error;
  ASSERT_TRUE(obs::JsonValid(text, &error)) << error;

  // Exactly one spliced traceEvents array with every span from both
  // lifetimes present.
  size_t span_count = 0;
  for (size_t pos = text.find("\"ph\":\"X\""); pos != std::string::npos;
       pos = text.find("\"ph\":\"X\"", pos + 1)) {
    ++span_count;
  }
  EXPECT_EQ(span_count, first_life_spans + second_life_spans);
  EXPECT_EQ(text.find("\"traceEvents\""),
            text.rfind("\"traceEvents\""));  // Single array.

  fs::remove_all(dir);
}

}  // namespace
}  // namespace sarn::core
