#include "tensor/ops.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "tensor/matmul_kernels.h"
#include "tensor/tensor.h"

namespace sarn::tensor {
namespace {

void ExpectTensorNear(const Tensor& t, const std::vector<float>& expected,
                      float tol = 1e-5f) {
  ASSERT_EQ(t.numel(), static_cast<int64_t>(expected.size()));
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(t.data()[i], expected[i], tol) << "index " << i;
  }
}

TEST(OpsTest, AddSameShape) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({2, 2}, {10, 20, 30, 40});
  ExpectTensorNear(Add(a, b), {11, 22, 33, 44});
}

TEST(OpsTest, AddRowBroadcast) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor bias = Tensor::FromVector({3}, {10, 20, 30});
  ExpectTensorNear(Add(a, bias), {11, 22, 33, 14, 25, 36});
}

TEST(OpsTest, AddScalarBroadcastEitherSide) {
  Tensor a = Tensor::FromVector({3}, {1, 2, 3});
  Tensor s = Tensor::FromVector({1}, {100});
  ExpectTensorNear(Add(a, s), {101, 102, 103});
  ExpectTensorNear(Add(s, a), {101, 102, 103});
}

TEST(OpsTest, SubAndDiv) {
  Tensor a = Tensor::FromVector({2}, {6, 9});
  Tensor b = Tensor::FromVector({2}, {2, 3});
  ExpectTensorNear(Sub(a, b), {4, 6});
  ExpectTensorNear(Div(a, b), {3, 3});
}

TEST(OpsTest, SubWithSmallerLeftOperand) {
  Tensor s = Tensor::FromVector({1}, {10});
  Tensor b = Tensor::FromVector({3}, {1, 2, 3});
  ExpectTensorNear(Sub(s, b), {9, 8, 7});
}

TEST(OpsTest, MulElementwiseAndBroadcast) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor row = Tensor::FromVector({1, 2}, {10, 100});
  ExpectTensorNear(Mul(a, row), {10, 200, 30, 400});
}

TEST(OpsTest, UnaryFunctions) {
  Tensor a = Tensor::FromVector({4}, {-2, -0.5, 0.5, 2});
  ExpectTensorNear(Neg(a), {2, 0.5, -0.5, -2});
  ExpectTensorNear(Abs(a), {2, 0.5, 0.5, 2});
  ExpectTensorNear(Relu(a), {0, 0, 0.5, 2});
  ExpectTensorNear(LeakyRelu(a, 0.1f), {-0.2f, -0.05f, 0.5f, 2.0f});
  ExpectTensorNear(Square(a), {4, 0.25, 0.25, 4});
  ExpectTensorNear(ClampMin(a, 0.0f), {0, 0, 0.5, 2});
}

TEST(OpsTest, ExpLogSqrt) {
  Tensor a = Tensor::FromVector({3}, {1, 4, 9});
  ExpectTensorNear(Sqrt(a), {1, 2, 3});
  ExpectTensorNear(Log(a), {0.0f, std::log(4.0f), std::log(9.0f)});
  Tensor b = Tensor::FromVector({2}, {0, 1});
  ExpectTensorNear(Exp(b), {1.0f, std::exp(1.0f)});
}

TEST(OpsTest, EluMatchesDefinition) {
  Tensor a = Tensor::FromVector({2}, {-1.0f, 2.0f});
  ExpectTensorNear(Elu(a, 1.0f), {std::exp(-1.0f) - 1.0f, 2.0f});
}

TEST(OpsTest, SigmoidStableInTails) {
  Tensor a = Tensor::FromVector({3}, {-100.0f, 0.0f, 100.0f});
  Tensor s = Sigmoid(a);
  EXPECT_NEAR(s.at(0), 0.0f, 1e-6f);
  EXPECT_NEAR(s.at(1), 0.5f, 1e-6f);
  EXPECT_NEAR(s.at(2), 1.0f, 1e-6f);
  for (float v : s.data()) EXPECT_FALSE(std::isnan(v));
}

TEST(OpsTest, TanhValues) {
  Tensor a = Tensor::FromVector({2}, {0.0f, 1.0f});
  ExpectTensorNear(Tanh(a), {0.0f, std::tanh(1.0f)});
}

TEST(OpsTest, MatMulKnownResult) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({3, 2}, {7, 8, 9, 10, 11, 12});
  ExpectTensorNear(MatMul(a, b), {58, 64, 139, 154});
}

TEST(OpsTest, MatMulIdentity) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor eye = Tensor::FromVector({2, 2}, {1, 0, 0, 1});
  ExpectTensorNear(MatMul(a, eye), {1, 2, 3, 4});
}

// --- Blocked-kernel equivalence ---------------------------------------------
// The register-tiled kernels must reproduce the seed's naive loops. Sizes
// deliberately include multiples of the tile (4/16), sub-tile remainders and
// degenerate 1-wide shapes so every edge path runs.

struct MatMulDims {
  int64_t m, k, n;
};

class MatMulKernelEquivalence : public ::testing::TestWithParam<MatMulDims> {};

TEST_P(MatMulKernelEquivalence, ForwardMatchesNaive) {
  auto [m, k, n] = GetParam();
  Rng rng(42 + m + k + n);
  Tensor a = Tensor::Randn({m, k}, rng);
  Tensor b = Tensor::Randn({k, n}, rng);
  std::vector<float> naive(static_cast<size_t>(m * n), 0.0f);
  std::vector<float> blocked(static_cast<size_t>(m * n), 0.0f);
  kernels::MatMulNaive(a.data().data(), b.data().data(), naive.data(), 0, m, k, n);
  kernels::MatMulBlocked(a.data().data(), b.data().data(), blocked.data(), 0, m, k, n);
  for (size_t i = 0; i < naive.size(); ++i) {
    // Same per-element reduction order: bitwise equality, not just tolerance.
    EXPECT_EQ(blocked[i], naive[i]) << "index " << i;
  }
}

TEST_P(MatMulKernelEquivalence, InitOverwritesGarbageAndMatchesNaive) {
  auto [m, k, n] = GetParam();
  Rng rng(42 + m + k + n);
  Tensor a = Tensor::Randn({m, k}, rng);
  Tensor b = Tensor::Randn({k, n}, rng);
  std::vector<float> naive(static_cast<size_t>(m * n), 0.0f);
  // Poisoned output: the init kernel must overwrite every element without
  // reading it, so garbage (including NaN) must not leak into the result.
  std::vector<float> init(static_cast<size_t>(m * n),
                          std::numeric_limits<float>::quiet_NaN());
  kernels::MatMulNaive(a.data().data(), b.data().data(), naive.data(), 0, m, k, n);
  kernels::MatMulBlockedInit(a.data().data(), b.data().data(), init.data(), 0, m, k, n);
  for (size_t i = 0; i < naive.size(); ++i) {
    EXPECT_EQ(init[i], naive[i]) << "index " << i;
  }
}

TEST_P(MatMulKernelEquivalence, GradAMatchesNaive) {
  auto [m, k, n] = GetParam();
  Rng rng(77 + m + k + n);
  Tensor g = Tensor::Randn({m, n}, rng);
  Tensor b = Tensor::Randn({k, n}, rng);
  std::vector<float> naive(static_cast<size_t>(m * k), 0.5f);  // Accumulates on top.
  std::vector<float> blocked(static_cast<size_t>(m * k), 0.5f);
  kernels::MatMulGradANaive(g.data().data(), b.data().data(), naive.data(), 0, m, k, n);
  kernels::MatMulGradABlocked(g.data().data(), b.data().data(), blocked.data(), 0, m, k, n);
  for (size_t i = 0; i < naive.size(); ++i) {
    EXPECT_EQ(blocked[i], naive[i]) << "index " << i;
  }
}

TEST_P(MatMulKernelEquivalence, GradBMatchesNaive) {
  auto [m, k, n] = GetParam();
  Rng rng(99 + m + k + n);
  Tensor a = Tensor::Randn({m, k}, rng);
  Tensor g = Tensor::Randn({m, n}, rng);
  std::vector<float> naive(static_cast<size_t>(k * n), -0.25f);
  std::vector<float> blocked(static_cast<size_t>(k * n), -0.25f);
  kernels::MatMulGradBNaive(a.data().data(), g.data().data(), naive.data(), 0, k, m, k, n);
  kernels::MatMulGradBBlocked(a.data().data(), g.data().data(), blocked.data(), 0, k, m, k,
                              n);
  for (size_t i = 0; i < naive.size(); ++i) {
    EXPECT_EQ(blocked[i], naive[i]) << "index " << i;
  }
}

#if defined(SARN_HAVE_AVX2_KERNELS)
// Compiled (plan-executor) AVX2 kernels: vector lanes are distinct output
// elements, so they must match the scalar blocked kernels bit for bit —
// including on inputs with exact zeros (post-ReLU activations) and on
// shapes with sub-tile remainders.

TEST_P(MatMulKernelEquivalence, InitAvx2MatchesBlockedInit) {
  if (!kernels::MatMulAvx2Supported()) GTEST_SKIP() << "host lacks AVX2";
  auto [m, k, n] = GetParam();
  Rng rng(42 + m + k + n);
  Tensor a = Tensor::Randn({m, k}, rng);
  Tensor b = Tensor::Randn({k, n}, rng);
  for (size_t i = 0; i < a.data().size(); i += 3) a.mutable_data()[i] = 0.0f;
  std::vector<float> blocked(static_cast<size_t>(m * n),
                             std::numeric_limits<float>::quiet_NaN());
  std::vector<float> avx2(static_cast<size_t>(m * n),
                          std::numeric_limits<float>::quiet_NaN());
  kernels::MatMulBlockedInit(a.data().data(), b.data().data(), blocked.data(), 0, m, k, n);
  kernels::MatMulInitAvx2(a.data().data(), b.data().data(), avx2.data(), 0, m, k, n);
  for (size_t i = 0; i < blocked.size(); ++i) {
    EXPECT_EQ(avx2[i], blocked[i]) << "index " << i;
  }
}

TEST_P(MatMulKernelEquivalence, GradATAvx2MatchesBlocked) {
  if (!kernels::MatMulAvx2Supported()) GTEST_SKIP() << "host lacks AVX2";
  auto [m, k, n] = GetParam();
  Rng rng(77 + m + k + n);
  Tensor g = Tensor::Randn({m, n}, rng);
  Tensor b = Tensor::Randn({k, n}, rng);
  std::vector<float> blocked(static_cast<size_t>(m * k), 0.5f);  // Accumulates on top.
  std::vector<float> avx2(static_cast<size_t>(m * k), 0.5f);
  kernels::MatMulGradABlocked(g.data().data(), b.data().data(), blocked.data(), 0, m, k, n);
  // The AVX2 kernel takes B pre-transposed ([n, k]) — build it as MatMul does.
  std::vector<float> bt(static_cast<size_t>(n * k));
  for (int64_t kk = 0; kk < k; ++kk) {
    for (int64_t j = 0; j < n; ++j) bt[j * k + kk] = b.data()[kk * n + j];
  }
  kernels::MatMulGradATAvx2(g.data().data(), bt.data(), avx2.data(), 0, m, k, n);
  for (size_t i = 0; i < blocked.size(); ++i) {
    EXPECT_EQ(avx2[i], blocked[i]) << "index " << i;
  }
}

TEST_P(MatMulKernelEquivalence, GradBAvx2MatchesBlocked) {
  if (!kernels::MatMulAvx2Supported()) GTEST_SKIP() << "host lacks AVX2";
  auto [m, k, n] = GetParam();
  Rng rng(99 + m + k + n);
  Tensor a = Tensor::Randn({m, k}, rng);
  Tensor g = Tensor::Randn({m, n}, rng);
  for (size_t i = 0; i < a.data().size(); i += 3) a.mutable_data()[i] = 0.0f;
  std::vector<float> blocked(static_cast<size_t>(k * n), -0.25f);
  std::vector<float> avx2(static_cast<size_t>(k * n), -0.25f);
  kernels::MatMulGradBBlocked(a.data().data(), g.data().data(), blocked.data(), 0, k, m, k,
                              n);
  kernels::MatMulGradBAvx2(a.data().data(), g.data().data(), avx2.data(), 0, k, m, k, n);
  for (size_t i = 0; i < blocked.size(); ++i) {
    EXPECT_EQ(avx2[i], blocked[i]) << "index " << i;
  }
}
#endif  // SARN_HAVE_AVX2_KERNELS

TEST_P(MatMulKernelEquivalence, RowRangeCoversPartition) {
  // Kernels run on arbitrary row sub-ranges under ParallelFor; a partition
  // at non-tile-aligned boundaries must produce the same matrix.
  auto [m, k, n] = GetParam();
  Rng rng(123 + m + k + n);
  Tensor a = Tensor::Randn({m, k}, rng);
  Tensor b = Tensor::Randn({k, n}, rng);
  std::vector<float> whole(static_cast<size_t>(m * n), 0.0f);
  std::vector<float> split(static_cast<size_t>(m * n), 0.0f);
  kernels::MatMulBlocked(a.data().data(), b.data().data(), whole.data(), 0, m, k, n);
  int64_t mid = m / 2 + (m > 2 ? 1 : 0);  // Deliberately off-center.
  kernels::MatMulBlocked(a.data().data(), b.data().data(), split.data(), 0, mid, k, n);
  kernels::MatMulBlocked(a.data().data(), b.data().data(), split.data(), mid, m, k, n);
  for (size_t i = 0; i < whole.size(); ++i) {
    EXPECT_EQ(split[i], whole[i]) << "index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatMulKernelEquivalence,
                         ::testing::Values(MatMulDims{1, 1, 1}, MatMulDims{3, 5, 7},
                                           MatMulDims{4, 16, 16}, MatMulDims{5, 17, 19},
                                           MatMulDims{8, 32, 16}, MatMulDims{13, 9, 33},
                                           MatMulDims{16, 8, 1}, MatMulDims{33, 64, 47}));

TEST(OpsTest, MatMulOpMatchesNaiveKernelsThroughAutograd) {
  // End-to-end: the MatMul op (blocked kernels + ParallelFor) vs a serial
  // naive-kernel reference for the forward and both gradients.
  const int64_t m = 21, k = 34, n = 29;
  Rng rng(7);
  Tensor a = Tensor::Randn({m, k}, rng).RequiresGrad();
  Tensor b = Tensor::Randn({k, n}, rng).RequiresGrad();
  Tensor y = MatMul(a, b);
  y.Backward(std::vector<float>(static_cast<size_t>(m * n), 1.0f));

  std::vector<float> ref_y(static_cast<size_t>(m * n), 0.0f);
  kernels::MatMulNaive(a.data().data(), b.data().data(), ref_y.data(), 0, m, k, n);
  std::vector<float> ones(static_cast<size_t>(m * n), 1.0f);
  std::vector<float> ref_da(static_cast<size_t>(m * k), 0.0f);
  std::vector<float> ref_db(static_cast<size_t>(k * n), 0.0f);
  kernels::MatMulGradANaive(ones.data(), b.data().data(), ref_da.data(), 0, m, k, n);
  kernels::MatMulGradBNaive(a.data().data(), ones.data(), ref_db.data(), 0, k, m, k, n);

  for (int64_t i = 0; i < m * n; ++i) EXPECT_EQ(y.data()[i], ref_y[i]) << i;
  for (int64_t i = 0; i < m * k; ++i) EXPECT_EQ(a.grad()[i], ref_da[i]) << i;
  for (int64_t i = 0; i < k * n; ++i) EXPECT_EQ(b.grad()[i], ref_db[i]) << i;
}

TEST(OpsTest, MatMulIdenticalAcrossThreadCounts) {
  // Row-partitioned kernels write disjoint outputs, so the thread count must
  // not change a single bit of the result.
  const int64_t m = 64, k = 48, n = 40;
  Rng rng(11);
  Tensor a = Tensor::Randn({m, k}, rng);
  Tensor b = Tensor::Randn({k, n}, rng);
  size_t original = GetParallelThreads();
  SetParallelThreads(1);
  Tensor serial = MatMul(a, b);
  SetParallelThreads(4);
  Tensor parallel = MatMul(a, b);
  SetParallelThreads(original);
  for (int64_t i = 0; i < m * n; ++i) {
    EXPECT_EQ(serial.data()[i], parallel.data()[i]) << "index " << i;
  }
}

TEST(OpsDeathTest, MatMulShapeMismatch) {
  Tensor a = Tensor::Zeros({2, 3});
  Tensor b = Tensor::Zeros({2, 3});
  EXPECT_DEATH(MatMul(a, b), "MatMul");
}

TEST(OpsTest, TransposeRoundTrip) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = Transpose(a);
  EXPECT_EQ(t.shape(), (Shape{3, 2}));
  EXPECT_EQ(t.at(0, 1), 4.0f);
  ExpectTensorNear(Transpose(t), {1, 2, 3, 4, 5, 6});
}

TEST(OpsTest, ReshapePreservesData) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = Reshape(a, {3, 2});
  EXPECT_EQ(r.shape(), (Shape{3, 2}));
  ExpectTensorNear(r, {1, 2, 3, 4, 5, 6});
}

TEST(OpsTest, Reductions) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_FLOAT_EQ(Sum(a).item(), 21.0f);
  EXPECT_FLOAT_EQ(Mean(a).item(), 3.5f);
  ExpectTensorNear(SumAxis(a, 0), {5, 7, 9});
  ExpectTensorNear(SumAxis(a, 1), {6, 15});
  ExpectTensorNear(MeanAxis(a, 0), {2.5, 3.5, 4.5});
  ExpectTensorNear(MeanAxis(a, 1), {2, 5});
}

TEST(OpsTest, RowSoftmaxRowsSumToOne) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 1000, 1001, 1002});
  Tensor s = RowSoftmax(a);
  for (int64_t i = 0; i < 2; ++i) {
    float sum = s.at(i, 0) + s.at(i, 1) + s.at(i, 2);
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
  // Shift invariance: both rows should be identical distributions.
  for (int64_t j = 0; j < 3; ++j) EXPECT_NEAR(s.at(0, j), s.at(1, j), 1e-5f);
  for (float v : s.data()) EXPECT_FALSE(std::isnan(v));
}

TEST(OpsTest, RowLogSoftmaxConsistentWithSoftmax) {
  Tensor a = Tensor::FromVector({1, 4}, {0.5f, -1.0f, 2.0f, 0.0f});
  Tensor ls = RowLogSoftmax(a);
  Tensor s = RowSoftmax(a);
  for (int64_t j = 0; j < 4; ++j) EXPECT_NEAR(std::exp(ls.at(0, j)), s.at(0, j), 1e-5f);
}

TEST(OpsTest, RowL2NormalizeUnitNorm) {
  Tensor a = Tensor::FromVector({2, 2}, {3, 4, 0, 0});
  Tensor n = RowL2Normalize(a);
  EXPECT_NEAR(n.at(0, 0), 0.6f, 1e-5f);
  EXPECT_NEAR(n.at(0, 1), 0.8f, 1e-5f);
  // Zero row stays finite (zero).
  EXPECT_EQ(n.at(1, 0), 0.0f);
}

TEST(OpsTest, DotRowsValues) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({2, 2}, {5, 6, 7, 8});
  ExpectTensorNear(DotRows(a, b), {17, 53});
}

TEST(OpsTest, RowsGather) {
  Tensor a = Tensor::FromVector({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor g = Rows(a, {2, 0, 2});
  ExpectTensorNear(g, {5, 6, 1, 2, 5, 6});
}

TEST(OpsTest, TakePerRowValues) {
  Tensor a = Tensor::FromVector({3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  ExpectTensorNear(TakePerRow(a, {0, 2, 1}), {1, 6, 8});
}

TEST(OpsTest, ColsRangeValues) {
  Tensor a = Tensor::FromVector({2, 4}, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor mid = ColsRange(a, 1, 2);
  EXPECT_EQ(mid.shape(), (Shape{2, 2}));
  ExpectTensorNear(mid, {2, 3, 6, 7});
  ExpectTensorNear(ColsRange(a, 0, 4), {1, 2, 3, 4, 5, 6, 7, 8});
  ExpectTensorNear(ColsRange(a, 3, 1), {4, 8});
}

TEST(OpsTest, ColsRangeBackwardScattersIntoSlice) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6}).RequiresGrad();
  Tensor s = ColsRange(a, 1, 2);
  Sum(Mul(s, s)).Backward();  // d/dx sum(x^2) = 2x on the slice, 0 elsewhere.
  ExpectTensorNear(Tensor::FromVector({6}, a.grad().ToVector()), {0, 4, 6, 0, 10, 12});
}

TEST(OpsTest, ColsRangeInverseOfConcat) {
  Rng rng(3);
  Tensor left = Tensor::Randn({3, 2}, rng);
  Tensor right = Tensor::Randn({3, 5}, rng);
  Tensor joined = Concat({left, right}, 1);
  ExpectTensorNear(ColsRange(joined, 0, 2), left.data().ToVector());
  ExpectTensorNear(ColsRange(joined, 2, 5), right.data().ToVector());
}

TEST(OpsDeathTest, ColsRangeOutOfBounds) {
  Tensor a = Tensor::Zeros({2, 3});
  EXPECT_DEATH(ColsRange(a, 2, 2), "ColsRange");
}

TEST(OpsTest, ConcatAxis0) {
  Tensor a = Tensor::FromVector({1, 2}, {1, 2});
  Tensor b = Tensor::FromVector({2, 2}, {3, 4, 5, 6});
  Tensor c = Concat({a, b}, 0);
  EXPECT_EQ(c.shape(), (Shape{3, 2}));
  ExpectTensorNear(c, {1, 2, 3, 4, 5, 6});
}

TEST(OpsTest, ConcatAxis1) {
  Tensor a = Tensor::FromVector({2, 1}, {1, 2});
  Tensor b = Tensor::FromVector({2, 2}, {3, 4, 5, 6});
  Tensor c = Concat({a, b}, 1);
  EXPECT_EQ(c.shape(), (Shape{2, 3}));
  ExpectTensorNear(c, {1, 3, 4, 2, 5, 6});
}

TEST(OpsTest, DropoutZeroPIsIdentity) {
  Rng rng(1);
  Tensor a = Tensor::FromVector({4}, {1, 2, 3, 4});
  Tensor d = Dropout(a, 0.0f, rng);
  ExpectTensorNear(d, {1, 2, 3, 4});
}

TEST(OpsTest, DropoutKeepsExpectationAndMasks) {
  Rng rng(2);
  Tensor a = Tensor::Ones({10000});
  Tensor d = Dropout(a, 0.4f, rng);
  int zeros = 0;
  double sum = 0.0;
  for (float v : d.data()) {
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(v, 1.0f / 0.6f, 1e-5f);
    }
    sum += v;
  }
  EXPECT_NEAR(zeros / 10000.0, 0.4, 0.03);
  EXPECT_NEAR(sum / 10000.0, 1.0, 0.05);  // Inverted dropout preserves E[x].
}

TEST(OpsTest, EdgeSoftmaxGroupsSumToOne) {
  // Edges into vertex 0: {0,1}; into vertex 1: {2,3,4}.
  Tensor scores = Tensor::FromVector({5}, {1.0f, 2.0f, -1.0f, 0.0f, 1.0f});
  std::vector<int64_t> dst = {0, 0, 1, 1, 1};
  Tensor alpha = EdgeSoftmax(scores, dst, 2);
  EXPECT_NEAR(alpha.at(0) + alpha.at(1), 1.0f, 1e-5f);
  EXPECT_NEAR(alpha.at(2) + alpha.at(3) + alpha.at(4), 1.0f, 1e-5f);
  EXPECT_GT(alpha.at(1), alpha.at(0));  // Higher score, higher weight.
}

TEST(OpsTest, EdgeSoftmaxSingleEdgeGroupIsOne) {
  Tensor scores = Tensor::FromVector({1}, {-5.0f});
  Tensor alpha = EdgeSoftmax(scores, {0}, 3);
  EXPECT_NEAR(alpha.at(0), 1.0f, 1e-6f);
}

TEST(OpsTest, ScatterAddRowsAggregates) {
  Tensor messages = Tensor::FromVector({3, 2}, {1, 2, 10, 20, 100, 200});
  std::vector<int64_t> dst = {1, 1, 0};
  Tensor out = ScatterAddRows(messages, dst, 2);
  ExpectTensorNear(out, {100, 200, 11, 22});
}

TEST(OpsTest, ScatterAddRowsIsolatedVertexIsZero) {
  Tensor messages = Tensor::FromVector({1, 2}, {1, 1});
  Tensor out = ScatterAddRows(messages, {0}, 3);
  ExpectTensorNear(out, {1, 1, 0, 0, 0, 0});
}

}  // namespace
}  // namespace sarn::tensor
