#include "core/augmentation.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "roadnet/synthetic_city.h"

namespace sarn::core {
namespace {

class AugmentationTest : public testing::Test {
 protected:
  AugmentationTest() {
    roadnet::SyntheticCityConfig config;
    config.rows = 12;
    config.cols = 12;
    network_ = roadnet::GenerateSyntheticCity(config);
    spatial_edges_ = BuildSpatialEdges(network_, SpatialSimilarityConfig{});
  }

  roadnet::RoadNetwork network_;
  std::vector<SpatialEdge> spatial_edges_;
};

TEST(SigmaEpsilonTest, MapsIntoClampedRange) {
  EXPECT_DOUBLE_EQ(SigmaEpsilon(0.0, 0.05), 0.05);
  EXPECT_DOUBLE_EQ(SigmaEpsilon(1.0, 0.05), 0.95);
  EXPECT_DOUBLE_EQ(SigmaEpsilon(0.5, 0.05), 0.5);
}

TEST(CorruptionProbabilityTest, HeavierEdgesLessLikelyRemoved) {
  // Eq. 6: weight at max -> minimum probability epsilon.
  EXPECT_DOUBLE_EQ(TopoCorruptionProbability(6.0, 2.0, 6.0, 0.05), 0.05);
  EXPECT_DOUBLE_EQ(TopoCorruptionProbability(2.0, 2.0, 6.0, 0.05), 0.95);
  EXPECT_GT(TopoCorruptionProbability(3.0, 2.0, 6.0, 0.05),
            TopoCorruptionProbability(5.0, 2.0, 6.0, 0.05));
}

TEST(CorruptionProbabilityTest, DegenerateWeightRange) {
  // All weights equal: probability is the clamped midpoint, not NaN.
  double p = TopoCorruptionProbability(4.0, 4.0, 4.0, 0.05);
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 1.0);
}

TEST(CorruptionProbabilityTest, SpatialUsesWeightDirectly) {
  // Eq. 7: higher similarity -> lower removal probability.
  EXPECT_GT(SpatialCorruptionProbability(0.2, 0.05),
            SpatialCorruptionProbability(0.9, 0.05));
  EXPECT_DOUBLE_EQ(SpatialCorruptionProbability(1.0, 0.05), 0.05);
}

TEST_F(AugmentationTest, RemovesRequestedFractions) {
  AugmentationConfig config;
  config.rho_t = 0.4;
  config.rho_s = 0.4;
  config.couple_dual_typed = false;  // Exact counts without coupling.
  Rng rng(1);
  GraphView view = AugmentGraph(network_.topo_edges(), spatial_edges_, config, rng);
  int64_t expected_topo = static_cast<int64_t>(
      network_.topo_edges().size() - std::llround(0.4 * network_.topo_edges().size()));
  int64_t expected_spatial = static_cast<int64_t>(
      spatial_edges_.size() - std::llround(0.4 * spatial_edges_.size()));
  EXPECT_EQ(view.surviving_topo, expected_topo);
  EXPECT_EQ(view.surviving_spatial, expected_spatial);
  // Spatial edges contribute two directed edges each.
  EXPECT_EQ(static_cast<int64_t>(view.edges.size()),
            view.surviving_topo + 2 * view.surviving_spatial);
}

TEST_F(AugmentationTest, CouplingOnlyRemovesMore) {
  AugmentationConfig coupled;
  AugmentationConfig uncoupled;
  uncoupled.couple_dual_typed = false;
  Rng rng1(2), rng2(2);
  GraphView with = AugmentGraph(network_.topo_edges(), spatial_edges_, coupled, rng1);
  GraphView without =
      AugmentGraph(network_.topo_edges(), spatial_edges_, uncoupled, rng2);
  EXPECT_LE(with.surviving_topo, without.surviving_topo);
  EXPECT_LE(with.surviving_spatial, without.surviving_spatial);
}

TEST_F(AugmentationTest, ZeroRateKeepsEverything) {
  AugmentationConfig config;
  config.rho_t = 0.0;
  config.rho_s = 0.0;
  Rng rng(3);
  GraphView view = AugmentGraph(network_.topo_edges(), spatial_edges_, config, rng);
  EXPECT_EQ(view.surviving_topo, static_cast<int64_t>(network_.topo_edges().size()));
  EXPECT_EQ(view.surviving_spatial, static_cast<int64_t>(spatial_edges_.size()));
}

TEST_F(AugmentationTest, ImportantEdgesSurviveMoreOften) {
  // Across repeated draws, motorway-motorway topological edges (weight 6.0)
  // must survive clearly more often than residential ones (weight 2.0).
  AugmentationConfig config;
  config.couple_dual_typed = false;
  Rng rng(4);
  std::map<double, std::pair<int, int>> survival_by_weight;  // weight -> (kept, total)
  for (int trial = 0; trial < 40; ++trial) {
    std::set<std::pair<int64_t, int64_t>> kept;
    GraphView view = AugmentGraph(network_.topo_edges(), spatial_edges_, config, rng);
    // Reconstruct kept directed topo edges from the view prefix.
    for (int64_t e = 0; e < view.surviving_topo; ++e) {
      kept.emplace(view.edges.src[static_cast<size_t>(e)],
                   view.edges.dst[static_cast<size_t>(e)]);
    }
    for (const roadnet::TopoEdge& e : network_.topo_edges()) {
      auto& [kept_count, total] = survival_by_weight[e.weight];
      kept_count += kept.count({e.from, e.to}) > 0 ? 1 : 0;
      ++total;
    }
  }
  double min_weight = survival_by_weight.begin()->first;
  double max_weight = survival_by_weight.rbegin()->first;
  ASSERT_GT(max_weight, min_weight);
  auto rate = [&](double w) {
    auto [kept_count, total] = survival_by_weight[w];
    return static_cast<double>(kept_count) / total;
  };
  EXPECT_GT(rate(max_weight), rate(min_weight) + 0.15);
}

TEST_F(AugmentationTest, ViewsDifferBetweenDraws) {
  AugmentationConfig config;
  Rng rng(5);
  GraphView a = AugmentGraph(network_.topo_edges(), spatial_edges_, config, rng);
  GraphView b = AugmentGraph(network_.topo_edges(), spatial_edges_, config, rng);
  EXPECT_NE(a.edges.src, b.edges.src);
}

TEST_F(AugmentationTest, FullEdgeListCountsBothTypes) {
  nn::EdgeList full = FullEdgeList(network_.topo_edges(), spatial_edges_);
  EXPECT_EQ(full.size(), network_.topo_edges().size() + 2 * spatial_edges_.size());
}

TEST_F(AugmentationTest, ViewEdgesAreSubsetOfFull) {
  AugmentationConfig config;
  Rng rng(6);
  GraphView view = AugmentGraph(network_.topo_edges(), spatial_edges_, config, rng);
  std::set<std::pair<int64_t, int64_t>> full_set;
  nn::EdgeList full = FullEdgeList(network_.topo_edges(), spatial_edges_);
  for (size_t e = 0; e < full.size(); ++e) full_set.emplace(full.src[e], full.dst[e]);
  for (size_t e = 0; e < view.edges.size(); ++e) {
    EXPECT_TRUE(full_set.count({view.edges.src[e], view.edges.dst[e]}) > 0);
  }
}

}  // namespace
}  // namespace sarn::core
