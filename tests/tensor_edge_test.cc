// Edge-case behavior of the autograd engine: tape consumption, detach
// semantics, gradient accumulation across backward passes, interaction with
// NoGradGuard mid-graph.

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace sarn::tensor {
namespace {

TEST(TensorEdgeTest, TapeConsumedAfterBackward) {
  Tensor x = Tensor::FromVector({1}, {3.0f});
  x.RequiresGrad();
  Tensor y = Square(x);
  y.Backward({1.0f});
  EXPECT_FLOAT_EQ(x.grad()[0], 6.0f);
  // Second backward on the same consumed tape must not double-accumulate
  // (the backward closure was cleared).
  y.Backward({1.0f});
  EXPECT_FLOAT_EQ(x.grad()[0], 6.0f);
}

TEST(TensorEdgeTest, GradAccumulatesAcrossFreshGraphs) {
  Tensor x = Tensor::FromVector({1}, {3.0f});
  x.RequiresGrad();
  Square(x).Backward({1.0f});
  Square(x).Backward({1.0f});  // New graph, same leaf.
  EXPECT_FLOAT_EQ(x.grad()[0], 12.0f);
  x.ZeroGrad();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.0f);
}

TEST(TensorEdgeTest, DetachBlocksGradientFlow) {
  Tensor x = Tensor::FromVector({1}, {2.0f});
  x.RequiresGrad();
  Tensor y = Square(x).Detach();
  EXPECT_FALSE(y.requires_grad());
  y.RequiresGrad();
  Tensor z = Square(y);
  z.Backward({1.0f});
  EXPECT_FLOAT_EQ(y.grad()[0], 8.0f);   // dz/dy = 2y = 8.
  EXPECT_FLOAT_EQ(x.grad()[0], 0.0f);   // Cut by Detach.
}

TEST(TensorEdgeTest, MixedGradAndNoGradInputs) {
  Tensor w = Tensor::FromVector({1}, {2.0f});
  w.RequiresGrad();
  Tensor constant = Tensor::FromVector({1}, {5.0f});  // No grad.
  Tensor y = Mul(w, constant);
  y.Backward({1.0f});
  EXPECT_FLOAT_EQ(w.grad()[0], 5.0f);
  EXPECT_FLOAT_EQ(constant.grad()[0], 0.0f);  // Never touched.
}

TEST(TensorEdgeTest, NoGradSegmentInsideGradGraph) {
  Tensor x = Tensor::FromVector({1}, {2.0f});
  x.RequiresGrad();
  Tensor frozen;
  {
    NoGradGuard guard;
    frozen = Square(x);  // Constant w.r.t. autograd.
  }
  Tensor y = Mul(Square(x), frozen);  // y = x^2 * c, c = 4.
  y.Backward({1.0f});
  EXPECT_FLOAT_EQ(x.grad()[0], 2.0f * 2.0f * 4.0f);  // d(x^2)*c only.
}

TEST(TensorEdgeTest, DiamondGraphAccumulatesOnce) {
  // y = a + a (same tensor twice): dy/da = 2.
  Tensor a = Tensor::FromVector({1}, {1.0f});
  a.RequiresGrad();
  Tensor y = Add(a, a);
  y.Backward({1.0f});
  EXPECT_FLOAT_EQ(a.grad()[0], 2.0f);
}

TEST(TensorEdgeTest, SharedSubexpressionBackpropagatesOnce) {
  // s = x^2; y = s*s = x^4; dy/dx = 4x^3 = 32 at x=2. Requires the topo
  // sort to run s's backward exactly once with the accumulated grad.
  Tensor x = Tensor::FromVector({1}, {2.0f});
  x.RequiresGrad();
  Tensor s = Square(x);
  Tensor y = Mul(s, s);
  y.Backward({1.0f});
  EXPECT_FLOAT_EQ(x.grad()[0], 32.0f);
}

TEST(TensorEdgeTest, CloneIsDeepForValues) {
  Tensor a = Tensor::FromVector({2}, {1.0f, 2.0f});
  Tensor b = a.Clone();
  b.set(0, 99.0f);
  EXPECT_FLOAT_EQ(a.at(0), 1.0f);
}

TEST(TensorEdgeTest, EmptyMatMulRows) {
  // Zero-row matrices are legal (empty minibatch edge case).
  Tensor a = Tensor::Zeros({0, 4});
  Tensor b = Tensor::Zeros({4, 3});
  Tensor y = MatMul(a, b);
  EXPECT_EQ(y.shape(), (Shape{0, 3}));
  EXPECT_EQ(y.numel(), 0);
}

TEST(TensorEdgeTest, RowsWithEmptyIndexList) {
  Tensor a = Tensor::FromVector({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor empty = Rows(a, {});
  EXPECT_EQ(empty.shape(), (Shape{0, 2}));
}

}  // namespace
}  // namespace sarn::tensor
