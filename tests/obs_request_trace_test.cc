// Tests for the request-scoped serve tracer (src/obs/request_trace.h) and
// the SLO watchdog's windowed evaluation (src/obs/slo.h).
//
// The concurrent publish+snapshot test doubles as the TSan surface for the
// seqlock ring (tools/verify.sh runs this binary under -fsanitize=thread).

#include "obs/request_trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/slo.h"

namespace sarn::obs {
namespace {

RequestRecord MakeRecord(uint64_t id, uint64_t base_ns, uint64_t total_ns) {
  RequestRecord r;
  r.id = id;
  r.admit_ns = base_ns;
  r.enqueued_ns = base_ns + total_ns / 5;
  r.batch_formed_ns = base_ns + 2 * total_ns / 5;
  r.scan_begin_ns = base_ns + 3 * total_ns / 5;
  r.scan_end_ns = base_ns + 4 * total_ns / 5;
  r.replied_ns = base_ns + total_ns;
  return r;
}

TEST(RequestRecordTest, StagesTelescopeToTotal) {
  RequestRecord r = MakeRecord(7, 1000, 550);
  uint64_t sum = 0;
  for (int s = 0; s < kRequestStageCount; ++s) {
    sum += r.StageNanos(static_cast<RequestStage>(s));
  }
  EXPECT_EQ(sum, r.TotalNanos());
  EXPECT_EQ(r.TotalNanos(), 550u);
}

TEST(RequestRecordTest, StageNamesAreDistinct) {
  std::vector<std::string> names;
  for (int s = 0; s < kRequestStageCount; ++s) {
    names.push_back(RequestStageName(static_cast<RequestStage>(s)));
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

TEST(RequestTracerTest, AssignsMonotonicIdsAndSamplesUniformly) {
  RequestTracer::Options options;
  options.sample_every = 4;
  RequestTracer tracer(options);
  ASSERT_TRUE(tracer.enabled());

  uint64_t prev_id = 0;
  int traced = 0;
  for (int i = 0; i < 16; ++i) {
    RequestContext ctx = tracer.Admit();
    EXPECT_GT(ctx.id(), prev_id);
    prev_id = ctx.id();
    if (ctx.traced()) ++traced;
    ctx.Finish(true);
  }
  // Ids start at 1, so of 1..16 exactly 4, 8, 12, 16 are sampled.
  EXPECT_EQ(traced, 4);

  RequestTracer::TraceSnapshot snap = tracer.Snapshot();
  EXPECT_EQ(snap.admitted, 16u);
  EXPECT_EQ(snap.traced, 4u);
  EXPECT_EQ(snap.recent.size(), 4u);
}

TEST(RequestTracerTest, DisabledTracerIsInert) {
  RequestTracer::Options options;
  options.sample_every = 0;
  RequestTracer tracer(options);
  EXPECT_FALSE(tracer.enabled());

  for (int i = 0; i < 8; ++i) {
    RequestContext ctx = tracer.Admit();
    EXPECT_GT(ctx.id(), 0u);  // Ids are still assigned.
    EXPECT_FALSE(ctx.traced());
    ctx.MarkEnqueued();
    ctx.MarkScanBegin();
    EXPECT_EQ(ctx.Finish(true), 0u);
  }
  RequestTracer::TraceSnapshot snap = tracer.Snapshot();
  EXPECT_EQ(snap.admitted, 8u);
  EXPECT_EQ(snap.traced, 0u);
  EXPECT_TRUE(snap.recent.empty());
  EXPECT_TRUE(snap.slowest.empty());
}

TEST(RequestTracerTest, DefaultConstructedContextIsInert) {
  RequestContext ctx;
  EXPECT_EQ(ctx.id(), 0u);
  EXPECT_FALSE(ctx.traced());
  ctx.MarkBatchFormed();
  EXPECT_EQ(ctx.Finish(false), 0u);
}

TEST(RequestTracerTest, FinishBackFillsUnstampedStages) {
  RequestTracer::Options options;
  options.sample_every = 1;
  RequestTracer tracer(options);

  // Stamp only enqueued: later stages must collapse to zero, never go
  // negative, and the telescoping invariant must hold.
  RequestContext ctx = tracer.Admit();
  ASSERT_TRUE(ctx.traced());
  ctx.MarkEnqueued();
  uint64_t total = ctx.Finish(true);
  const RequestRecord& r = ctx.record();
  EXPECT_EQ(r.replied_ns - r.admit_ns, total);
  EXPECT_LE(r.admit_ns, r.enqueued_ns);
  EXPECT_LE(r.enqueued_ns, r.batch_formed_ns);
  EXPECT_LE(r.batch_formed_ns, r.scan_begin_ns);
  EXPECT_LE(r.scan_begin_ns, r.scan_end_ns);
  EXPECT_LE(r.scan_end_ns, r.replied_ns);
  uint64_t sum = 0;
  for (int s = 0; s < kRequestStageCount; ++s) {
    sum += r.StageNanos(static_cast<RequestStage>(s));
  }
  EXPECT_EQ(sum, total);
}

TEST(RequestTracerTest, FinishIsIdempotent) {
  RequestTracer::Options options;
  options.sample_every = 1;
  RequestTracer tracer(options);
  RequestContext ctx = tracer.Admit();
  ctx.Finish(true);
  EXPECT_EQ(ctx.Finish(true), 0u);  // Second call is a no-op.
  EXPECT_EQ(tracer.Snapshot().traced, 1u);
}

TEST(RequestTracerTest, RecordsOkFlagAndCacheHit) {
  RequestTracer::Options options;
  options.sample_every = 1;
  RequestTracer tracer(options);

  RequestContext hit = tracer.Admit();
  hit.MarkCacheHit();
  hit.Finish(true);
  RequestContext err = tracer.Admit();
  err.Finish(false);

  RequestTracer::TraceSnapshot snap = tracer.Snapshot();
  ASSERT_EQ(snap.recent.size(), 2u);
  EXPECT_TRUE(snap.recent[0].cache_hit);
  EXPECT_TRUE(snap.recent[0].ok);
  EXPECT_FALSE(snap.recent[1].cache_hit);
  EXPECT_FALSE(snap.recent[1].ok);
}

TEST(RequestTracerTest, RingWrapsKeepingNewestRecords) {
  RequestTracer::Options options;
  options.sample_every = 1;
  options.ring_capacity = 8;  // Already a power of two.
  options.slowest_capacity = 2;
  RequestTracer tracer(options);

  for (int i = 0; i < 20; ++i) {
    tracer.Admit().Finish(true);
  }
  RequestTracer::TraceSnapshot snap = tracer.Snapshot();
  EXPECT_EQ(snap.traced, 20u);
  EXPECT_EQ(snap.recent.size(), 8u);
  // The ring keeps the newest 8 records, oldest first.
  for (size_t i = 0; i < snap.recent.size(); ++i) {
    EXPECT_EQ(snap.recent[i].id, 13 + i);
  }
}

TEST(RequestTracerTest, RingCapacityRoundsUpToPowerOfTwo) {
  RequestTracer::Options options;
  options.sample_every = 1;
  options.ring_capacity = 5;  // Rounds up to 8.
  RequestTracer tracer(options);
  for (int i = 0; i < 8; ++i) tracer.Admit().Finish(true);
  EXPECT_EQ(tracer.Snapshot().recent.size(), 8u);
}

TEST(RequestTracerTest, SlowestTableSurvivesRingWrap) {
  RequestTracer::Options options;
  options.sample_every = 1;
  options.ring_capacity = 4;
  options.slowest_capacity = 3;
  RequestTracer tracer(options);

  // Publish synthetic records directly through the context path is clock
  // driven, so drive Publish via the snapshot invariants instead: every
  // traced record lands in the slowest table until it fills, after which
  // only slower records displace entries. With a busy-wait making one
  // request clearly slower, it must survive a full ring wrap.
  RequestContext slow = tracer.Admit();
  ASSERT_TRUE(slow.traced());
  // Burn enough clock to dominate the near-instant requests below.
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(20);
  while (std::chrono::steady_clock::now() < until) {
  }
  slow.Finish(true);
  const uint64_t slow_id = slow.id();

  for (int i = 0; i < 16; ++i) {
    tracer.Admit().Finish(true);
  }

  RequestTracer::TraceSnapshot snap = tracer.Snapshot();
  EXPECT_EQ(snap.recent.size(), 4u);  // The slow request aged out of the ring.
  ASSERT_FALSE(snap.slowest.empty());
  EXPECT_LE(snap.slowest.size(), 3u);
  // Slowest-first ordering, and the deliberately slow request leads.
  EXPECT_EQ(snap.slowest[0].id, slow_id);
  for (size_t i = 1; i < snap.slowest.size(); ++i) {
    EXPECT_GE(snap.slowest[i - 1].TotalNanos(), snap.slowest[i].TotalNanos());
  }
}

TEST(RequestTracerTest, ConcurrentPublishAndSnapshotStaysConsistent) {
  RequestTracer::Options options;
  options.sample_every = 1;
  options.ring_capacity = 16;
  options.slowest_capacity = 4;
  RequestTracer tracer(options);

  constexpr int kWriters = 4;
  constexpr int kPerWriter = 2000;
  std::atomic<bool> stop{false};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      RequestTracer::TraceSnapshot snap = tracer.Snapshot();
      // Every decoded record must be internally consistent — a torn read
      // would violate the telescoping invariant (ids are stamped with
      // strictly increasing timestamps by the writers).
      for (const RequestRecord& r : snap.recent) {
        EXPECT_GT(r.id, 0u);
        EXPECT_LE(r.admit_ns, r.replied_ns);
        uint64_t sum = 0;
        for (int s = 0; s < kRequestStageCount; ++s) {
          sum += r.StageNanos(static_cast<RequestStage>(s));
        }
        EXPECT_EQ(sum, r.TotalNanos());
      }
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&] {
      for (int i = 0; i < kPerWriter; ++i) {
        RequestContext ctx = tracer.Admit();
        ctx.MarkEnqueued();
        ctx.MarkBatchFormed();
        ctx.MarkScanBegin();
        ctx.MarkScanEnd();
        ctx.Finish(true);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  RequestTracer::TraceSnapshot snap = tracer.Snapshot();
  EXPECT_EQ(snap.admitted, uint64_t{kWriters} * kPerWriter);
  EXPECT_EQ(snap.traced, uint64_t{kWriters} * kPerWriter);
  EXPECT_EQ(snap.recent.size(), 16u);
}

// --- SloWatchdog::Evaluate (pure windowed math, no threads) ---

TEST(SloEvaluateTest, EmptyWindowHasNoSamples) {
  std::vector<double> bounds = {0.001, 0.01, 0.1};
  std::vector<uint64_t> counts(bounds.size() + 1, 0);
  SloWatchdog::Evaluation eval =
      SloWatchdog::Evaluate(bounds, counts, counts, 50.0);
  EXPECT_FALSE(eval.has_samples);
  EXPECT_EQ(eval.window_count, 0u);
  EXPECT_FALSE(eval.breached);
}

TEST(SloEvaluateTest, IdenticalSnapshotsHaveEmptyDelta) {
  std::vector<double> bounds = {0.001, 0.01, 0.1};
  std::vector<uint64_t> cumulative = {5, 10, 2, 0};
  SloWatchdog::Evaluation eval =
      SloWatchdog::Evaluate(bounds, cumulative, cumulative, 50.0);
  EXPECT_FALSE(eval.has_samples);
  EXPECT_FALSE(eval.breached);
}

TEST(SloEvaluateTest, DetectsBreachFromWindowDelta) {
  std::vector<double> bounds = {0.001, 0.01, 0.1};  // Seconds.
  std::vector<uint64_t> oldest = {100, 0, 0, 0};
  // 100 fast samples before the window; in-window: 50 fast + 1 in
  // (0.01, 0.1] s. The p99 rank (0.99 * 51 = 50.49) falls past the 50 fast
  // samples, so the windowed p99 lands in the slow bucket.
  std::vector<uint64_t> newest = {150, 0, 1, 0};
  SloWatchdog::Evaluation eval =
      SloWatchdog::Evaluate(bounds, oldest, newest, 50.0);
  EXPECT_TRUE(eval.has_samples);
  EXPECT_EQ(eval.window_count, 51u);
  EXPECT_GT(eval.p99_ms, 10.0);  // In the (10ms, 100ms] bucket.
  EXPECT_TRUE(eval.breached);

  // A generous budget is not breached by the same window.
  SloWatchdog::Evaluation ok_eval =
      SloWatchdog::Evaluate(bounds, oldest, newest, 1000.0);
  EXPECT_TRUE(ok_eval.has_samples);
  EXPECT_FALSE(ok_eval.breached);
}

TEST(SloEvaluateTest, ReportsMilliseconds) {
  std::vector<double> bounds = {0.010, 0.020};  // 10ms, 20ms.
  std::vector<uint64_t> oldest = {0, 0, 0};
  std::vector<uint64_t> newest = {1, 0, 0};  // One sample <= 10ms.
  SloWatchdog::Evaluation eval =
      SloWatchdog::Evaluate(bounds, oldest, newest, 50.0);
  EXPECT_TRUE(eval.has_samples);
  // Single sample: bucket midpoint of [0, 10ms] = 5ms.
  EXPECT_NEAR(eval.p99_ms, 5.0, 1e-9);
}

}  // namespace
}  // namespace sarn::obs
