// Tests for the trace-span subsystem: recording semantics, multi-thread
// buffers, per-phase aggregation and Chrome trace_event export.

#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/trace.h"

namespace sarn::obs {
namespace {

// The tracer is a process-wide singleton; each test drains it and restores
// the disabled state so tests stay independent.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Instance().SetEnabled(false);
    Tracer::Instance().Drain();
  }
  void TearDown() override {
    Tracer::Instance().SetEnabled(false);
    Tracer::Instance().Drain();
  }
};

TEST_F(TraceTest, DisabledTracerRecordsNothing) {
  {
    SARN_TRACE_SPAN("ignored");
  }
  EXPECT_TRUE(Tracer::Instance().Drain().empty());
}

#if defined(SARN_OBS_NO_TRACE)
TEST_F(TraceTest, MacroIsCompiledOutUnderKillSwitch) {
  Tracer::Instance().SetEnabled(true);
  {
    SARN_TRACE_SPAN("never_recorded");
  }
  EXPECT_TRUE(Tracer::Instance().Drain().empty());
}
#endif

// Recording-semantics tests construct TraceSpan directly: the class always
// exists; only the SARN_TRACE_SPAN macro is removed by SARN_OBS_NO_TRACE.
TEST_F(TraceTest, EnabledSpanRecordsOneEvent) {
  Tracer::Instance().SetEnabled(true);
  {
    TraceSpan span("unit_of_work");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::vector<TraceEvent> events = Tracer::Instance().Drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "unit_of_work");
  EXPECT_GT(events[0].dur_us, 0u);
  EXPECT_GT(events[0].tid, 0u);
  // Drain removes: a second drain is empty.
  EXPECT_TRUE(Tracer::Instance().Drain().empty());
}

TEST_F(TraceTest, SpanOpenedWhileDisabledStaysInert) {
  std::vector<TraceEvent> events;
  {
    TraceSpan span("opened_disabled");
    Tracer::Instance().SetEnabled(true);
  }
  events = Tracer::Instance().Drain();
  EXPECT_TRUE(events.empty());
}

TEST_F(TraceTest, EventsFromMultipleThreadsAreCollected) {
  Tracer::Instance().SetEnabled(true);
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 25;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        TraceSpan span("worker_span");
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  std::vector<TraceEvent> events = Tracer::Instance().Drain();
  EXPECT_EQ(events.size(), static_cast<size_t>(kThreads) * kSpansPerThread);
  // Drain returns events ordered by begin time.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].begin_us, events[i].begin_us);
  }
}

TEST_F(TraceTest, AggregateSumsPerName) {
  std::vector<TraceEvent> events = {
      {"alpha", 1, 0, 100},
      {"beta", 1, 100, 5000},
      {"alpha", 2, 200, 300},
  };
  std::vector<Tracer::PhaseTotal> totals = Tracer::Aggregate(events);
  ASSERT_EQ(totals.size(), 2u);
  // Descending by total wall time: beta (5000us) first.
  EXPECT_EQ(totals[0].name, "beta");
  EXPECT_EQ(totals[0].count, 1u);
  EXPECT_NEAR(totals[0].seconds, 5000e-6, 1e-12);
  EXPECT_EQ(totals[1].name, "alpha");
  EXPECT_EQ(totals[1].count, 2u);
  EXPECT_NEAR(totals[1].seconds, 400e-6, 1e-12);
}

TEST_F(TraceTest, ChromeTraceJsonIsValidAndComplete) {
  std::vector<TraceEvent> events = {
      {"gat_forward", 1, 10, 42},
      {"loss \"quoted\"\\", 2, 60, 7},  // Name requiring escaping.
  };
  std::string json = Tracer::ToChromeTraceJson(events);
  std::string error;
  EXPECT_TRUE(JsonValid(json, &error)) << error;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"gat_forward\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":42"), std::string::npos);
}

TEST_F(TraceTest, EmptyTraceIsStillValidJson) {
  std::string json = Tracer::ToChromeTraceJson({});
  std::string error;
  EXPECT_TRUE(JsonValid(json, &error)) << error;
}

TEST_F(TraceTest, WriteChromeTraceRoundTrips) {
  Tracer::Instance().SetEnabled(true);
  {
    TraceSpan span("persisted");
  }
  std::vector<TraceEvent> events = Tracer::Instance().Drain();
  std::string path = ::testing::TempDir() + "/obs_trace_test.json";
  ASSERT_TRUE(Tracer::WriteChromeTrace(path, events));
  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  std::string text;
  char buffer[4096];
  size_t read = 0;
  while ((read = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    text.append(buffer, read);
  }
  std::fclose(file);
  std::string error;
  EXPECT_TRUE(JsonValid(text, &error)) << error;
  EXPECT_NE(text.find("persisted"), std::string::npos);
}

// --- AppendChromeTrace: merging spans across process lifetimes ---

namespace {

std::string ReadWholeFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return {};
  std::string text;
  char buffer[4096];
  size_t read = 0;
  while ((read = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    text.append(buffer, read);
  }
  std::fclose(file);
  return text;
}

size_t CountOccurrences(const std::string& text, const std::string& needle) {
  size_t count = 0;
  for (size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

}  // namespace

TEST_F(TraceTest, AppendToMissingFileWritesFreshTrace) {
  std::string path = ::testing::TempDir() + "/obs_trace_append_fresh.json";
  std::remove(path.c_str());
  std::vector<TraceEvent> events = {{"first_life", 1, 10, 42}};
  ASSERT_TRUE(Tracer::AppendChromeTrace(path, events));
  std::string text = ReadWholeFile(path);
  std::string error;
  EXPECT_TRUE(JsonValid(text, &error)) << error;
  EXPECT_NE(text.find("first_life"), std::string::npos);
}

// The kill+resume contract: a trace written by one process lifetime, then
// appended to by a resumed run, must stay one valid Chrome trace holding
// spans from BOTH lifetimes (ISSUE 8 satellite; CmdTrain uses this when
// resuming from a checkpoint).
TEST_F(TraceTest, AppendMergesSpansAcrossLifetimes) {
  std::string path = ::testing::TempDir() + "/obs_trace_append_merge.json";
  std::remove(path.c_str());
  std::vector<TraceEvent> first = {{"epoch_0", 1, 10, 100},
                                   {"epoch_1", 1, 120, 100}};
  ASSERT_TRUE(Tracer::WriteChromeTrace(path, first));

  std::vector<TraceEvent> second = {{"epoch_2_resumed", 7, 10, 90}};
  ASSERT_TRUE(Tracer::AppendChromeTrace(path, second));

  std::string text = ReadWholeFile(path);
  std::string error;
  ASSERT_TRUE(JsonValid(text, &error)) << error << "\n" << text;
  EXPECT_NE(text.find("epoch_0"), std::string::npos);
  EXPECT_NE(text.find("epoch_1"), std::string::npos);
  EXPECT_NE(text.find("epoch_2_resumed"), std::string::npos);
  // Still exactly one traceEvents array (spliced, not concatenated).
  EXPECT_EQ(CountOccurrences(text, "\"traceEvents\""), 1u);

  // A third lifetime appends again — the splice is repeatable.
  ASSERT_TRUE(Tracer::AppendChromeTrace(path, {{"epoch_3", 9, 10, 80}}));
  text = ReadWholeFile(path);
  ASSERT_TRUE(JsonValid(text, &error)) << error;
  EXPECT_EQ(CountOccurrences(text, "\"ph\":\"X\""), 4u);  // All four spans.
}

TEST_F(TraceTest, AppendToEmptyPriorTraceStaysValid) {
  std::string path = ::testing::TempDir() + "/obs_trace_append_empty.json";
  std::remove(path.c_str());
  ASSERT_TRUE(Tracer::WriteChromeTrace(path, {}));  // No spans recorded.
  ASSERT_TRUE(Tracer::AppendChromeTrace(path, {{"later", 1, 5, 10}}));
  std::string text = ReadWholeFile(path);
  std::string error;
  EXPECT_TRUE(JsonValid(text, &error)) << error << "\n" << text;
  EXPECT_NE(text.find("later"), std::string::npos);
}

TEST_F(TraceTest, AppendNoNewEventsKeepsFileValid) {
  std::string path = ::testing::TempDir() + "/obs_trace_append_none.json";
  std::remove(path.c_str());
  ASSERT_TRUE(Tracer::WriteChromeTrace(path, {{"only", 1, 5, 10}}));
  ASSERT_TRUE(Tracer::AppendChromeTrace(path, {}));
  std::string text = ReadWholeFile(path);
  std::string error;
  EXPECT_TRUE(JsonValid(text, &error)) << error << "\n" << text;
  EXPECT_EQ(CountOccurrences(text, "\"ph\":\"X\""), 1u);
}

TEST_F(TraceTest, AppendToForeignFileFallsBackToFreshTrace) {
  std::string path = ::testing::TempDir() + "/obs_trace_append_foreign.json";
  {
    std::FILE* file = std::fopen(path.c_str(), "wb");
    ASSERT_NE(file, nullptr);
    std::fputs("this is not a chrome trace", file);
    std::fclose(file);
  }
  ASSERT_TRUE(Tracer::AppendChromeTrace(path, {{"fresh", 1, 5, 10}}));
  std::string text = ReadWholeFile(path);
  std::string error;
  EXPECT_TRUE(JsonValid(text, &error)) << error << "\n" << text;
  EXPECT_NE(text.find("fresh"), std::string::npos);
  EXPECT_EQ(text.find("not a chrome trace"), std::string::npos);
}

}  // namespace
}  // namespace sarn::obs
