// Tests for the trace-span subsystem: recording semantics, multi-thread
// buffers, per-phase aggregation and Chrome trace_event export.

#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/trace.h"

namespace sarn::obs {
namespace {

// The tracer is a process-wide singleton; each test drains it and restores
// the disabled state so tests stay independent.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Instance().SetEnabled(false);
    Tracer::Instance().Drain();
  }
  void TearDown() override {
    Tracer::Instance().SetEnabled(false);
    Tracer::Instance().Drain();
  }
};

TEST_F(TraceTest, DisabledTracerRecordsNothing) {
  {
    SARN_TRACE_SPAN("ignored");
  }
  EXPECT_TRUE(Tracer::Instance().Drain().empty());
}

#if defined(SARN_OBS_NO_TRACE)
TEST_F(TraceTest, MacroIsCompiledOutUnderKillSwitch) {
  Tracer::Instance().SetEnabled(true);
  {
    SARN_TRACE_SPAN("never_recorded");
  }
  EXPECT_TRUE(Tracer::Instance().Drain().empty());
}
#endif

// Recording-semantics tests construct TraceSpan directly: the class always
// exists; only the SARN_TRACE_SPAN macro is removed by SARN_OBS_NO_TRACE.
TEST_F(TraceTest, EnabledSpanRecordsOneEvent) {
  Tracer::Instance().SetEnabled(true);
  {
    TraceSpan span("unit_of_work");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::vector<TraceEvent> events = Tracer::Instance().Drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "unit_of_work");
  EXPECT_GT(events[0].dur_us, 0u);
  EXPECT_GT(events[0].tid, 0u);
  // Drain removes: a second drain is empty.
  EXPECT_TRUE(Tracer::Instance().Drain().empty());
}

TEST_F(TraceTest, SpanOpenedWhileDisabledStaysInert) {
  std::vector<TraceEvent> events;
  {
    TraceSpan span("opened_disabled");
    Tracer::Instance().SetEnabled(true);
  }
  events = Tracer::Instance().Drain();
  EXPECT_TRUE(events.empty());
}

TEST_F(TraceTest, EventsFromMultipleThreadsAreCollected) {
  Tracer::Instance().SetEnabled(true);
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 25;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        TraceSpan span("worker_span");
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  std::vector<TraceEvent> events = Tracer::Instance().Drain();
  EXPECT_EQ(events.size(), static_cast<size_t>(kThreads) * kSpansPerThread);
  // Drain returns events ordered by begin time.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].begin_us, events[i].begin_us);
  }
}

TEST_F(TraceTest, AggregateSumsPerName) {
  std::vector<TraceEvent> events = {
      {"alpha", 1, 0, 100},
      {"beta", 1, 100, 5000},
      {"alpha", 2, 200, 300},
  };
  std::vector<Tracer::PhaseTotal> totals = Tracer::Aggregate(events);
  ASSERT_EQ(totals.size(), 2u);
  // Descending by total wall time: beta (5000us) first.
  EXPECT_EQ(totals[0].name, "beta");
  EXPECT_EQ(totals[0].count, 1u);
  EXPECT_NEAR(totals[0].seconds, 5000e-6, 1e-12);
  EXPECT_EQ(totals[1].name, "alpha");
  EXPECT_EQ(totals[1].count, 2u);
  EXPECT_NEAR(totals[1].seconds, 400e-6, 1e-12);
}

TEST_F(TraceTest, ChromeTraceJsonIsValidAndComplete) {
  std::vector<TraceEvent> events = {
      {"gat_forward", 1, 10, 42},
      {"loss \"quoted\"\\", 2, 60, 7},  // Name requiring escaping.
  };
  std::string json = Tracer::ToChromeTraceJson(events);
  std::string error;
  EXPECT_TRUE(JsonValid(json, &error)) << error;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"gat_forward\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":42"), std::string::npos);
}

TEST_F(TraceTest, EmptyTraceIsStillValidJson) {
  std::string json = Tracer::ToChromeTraceJson({});
  std::string error;
  EXPECT_TRUE(JsonValid(json, &error)) << error;
}

TEST_F(TraceTest, WriteChromeTraceRoundTrips) {
  Tracer::Instance().SetEnabled(true);
  {
    TraceSpan span("persisted");
  }
  std::vector<TraceEvent> events = Tracer::Instance().Drain();
  std::string path = ::testing::TempDir() + "/obs_trace_test.json";
  ASSERT_TRUE(Tracer::WriteChromeTrace(path, events));
  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  std::string text;
  char buffer[4096];
  size_t read = 0;
  while ((read = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    text.append(buffer, read);
  }
  std::fclose(file);
  std::string error;
  EXPECT_TRUE(JsonValid(text, &error)) << error;
  EXPECT_NE(text.find("persisted"), std::string::npos);
}

}  // namespace
}  // namespace sarn::obs
