#include "tasks/splits.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace sarn::tasks {
namespace {

TEST(SplitsTest, PartitionCoversEverythingOnce) {
  Split split = MakeSplit(100, 1);
  EXPECT_EQ(split.train.size(), 60u);
  EXPECT_EQ(split.val.size(), 20u);
  EXPECT_EQ(split.test.size(), 20u);
  std::set<int64_t> all;
  for (const auto* part : {&split.train, &split.val, &split.test}) {
    for (int64_t id : *part) EXPECT_TRUE(all.insert(id).second) << "duplicate " << id;
  }
  EXPECT_EQ(all.size(), 100u);
  EXPECT_EQ(*all.begin(), 0);
  EXPECT_EQ(*all.rbegin(), 99);
}

TEST(SplitsTest, DeterministicPerSeed) {
  Split a = MakeSplit(50, 7);
  Split b = MakeSplit(50, 7);
  EXPECT_EQ(a.train, b.train);
  EXPECT_EQ(a.test, b.test);
  Split c = MakeSplit(50, 8);
  EXPECT_NE(a.train, c.train);
}

TEST(SplitsTest, SplitIsShuffled) {
  Split split = MakeSplit(1000, 3);
  // The train set should not be the sorted prefix.
  std::vector<int64_t> sorted = split.train;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_NE(split.train, sorted);
}

TEST(SplitsTest, CustomFractions) {
  Split split = MakeSplit(10, 1, 0.8, 0.1);
  EXPECT_EQ(split.train.size(), 8u);
  EXPECT_EQ(split.val.size(), 1u);
  EXPECT_EQ(split.test.size(), 1u);
}

TEST(SplitsTest, SplitOfCustomIds) {
  Split split = MakeSplitOf({100, 200, 300, 400, 500}, 2, 0.6, 0.2);
  std::set<int64_t> all;
  for (const auto* part : {&split.train, &split.val, &split.test}) {
    for (int64_t id : *part) all.insert(id);
  }
  EXPECT_EQ(all, (std::set<int64_t>{100, 200, 300, 400, 500}));
}

}  // namespace
}  // namespace sarn::tasks
