#!/bin/bash
for b in bench_table3_datasets bench_fig4_learning_time bench_table4_road_property bench_table6_spd bench_table5_traj_similarity bench_table7_traj_length bench_table8_network_size bench_fig5_ablation bench_fig6_params bench_ext_travel_time bench_ablation_design; do
  echo "== $b start $(date +%T)"
  ./build/bench/$b > bench_out/$b.txt 2>&1
  echo "== $b done $(date +%T)"
done
./build/bench/bench_micro_kernels --benchmark_min_time=0.2s > bench_out/bench_micro_kernels.txt 2>&1
echo "== bench_serve_loadgen start $(date +%T)"
SARN_SERVE_JSON=bench_out/BENCH_serve.json \
SARN_SNAPSHOT_JSON=bench_out/BENCH_snapshot.json \
SARN_OBS_JSON=bench_out/BENCH_obs.json \
  ./build/bench/bench_serve_loadgen > bench_out/bench_serve_loadgen.txt 2>&1
echo "== bench_serve_loadgen done $(date +%T)"
echo "== bench_train_plan start $(date +%T)"
SARN_PLAN_JSON=bench_out/BENCH_plan.json \
  ./build/bench/bench_train_plan > bench_out/bench_train_plan.txt 2>&1
echo "== bench_train_plan done $(date +%T)"
echo ALL-DONE
