# Empty compiler generated dependencies file for bench_ext_travel_time.
# This may be replaced when dependencies are built.
