file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_travel_time.dir/bench_ext_travel_time.cc.o"
  "CMakeFiles/bench_ext_travel_time.dir/bench_ext_travel_time.cc.o.d"
  "bench_ext_travel_time"
  "bench_ext_travel_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_travel_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
