file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_network_size.dir/bench_table8_network_size.cc.o"
  "CMakeFiles/bench_table8_network_size.dir/bench_table8_network_size.cc.o.d"
  "bench_table8_network_size"
  "bench_table8_network_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_network_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
