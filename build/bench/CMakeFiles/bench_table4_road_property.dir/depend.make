# Empty dependencies file for bench_table4_road_property.
# This may be replaced when dependencies are built.
