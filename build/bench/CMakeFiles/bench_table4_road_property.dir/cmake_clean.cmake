file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_road_property.dir/bench_table4_road_property.cc.o"
  "CMakeFiles/bench_table4_road_property.dir/bench_table4_road_property.cc.o.d"
  "bench_table4_road_property"
  "bench_table4_road_property.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_road_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
