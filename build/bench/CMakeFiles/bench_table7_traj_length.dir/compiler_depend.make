# Empty compiler generated dependencies file for bench_table7_traj_length.
# This may be replaced when dependencies are built.
