file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_traj_length.dir/bench_table7_traj_length.cc.o"
  "CMakeFiles/bench_table7_traj_length.dir/bench_table7_traj_length.cc.o.d"
  "bench_table7_traj_length"
  "bench_table7_traj_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_traj_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
