file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_spd.dir/bench_table6_spd.cc.o"
  "CMakeFiles/bench_table6_spd.dir/bench_table6_spd.cc.o.d"
  "bench_table6_spd"
  "bench_table6_spd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_spd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
