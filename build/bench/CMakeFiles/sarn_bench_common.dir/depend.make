# Empty dependencies file for sarn_bench_common.
# This may be replaced when dependencies are built.
