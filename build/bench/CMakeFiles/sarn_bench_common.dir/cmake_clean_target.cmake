file(REMOVE_RECURSE
  "libsarn_bench_common.a"
)
