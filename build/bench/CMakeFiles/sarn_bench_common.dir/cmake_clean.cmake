file(REMOVE_RECURSE
  "CMakeFiles/sarn_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/sarn_bench_common.dir/bench_common.cc.o.d"
  "libsarn_bench_common.a"
  "libsarn_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sarn_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
