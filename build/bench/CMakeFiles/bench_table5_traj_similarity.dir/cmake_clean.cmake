file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_traj_similarity.dir/bench_table5_traj_similarity.cc.o"
  "CMakeFiles/bench_table5_traj_similarity.dir/bench_table5_traj_similarity.cc.o.d"
  "bench_table5_traj_similarity"
  "bench_table5_traj_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_traj_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
