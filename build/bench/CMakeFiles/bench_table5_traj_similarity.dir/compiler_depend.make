# Empty compiler generated dependencies file for bench_table5_traj_similarity.
# This may be replaced when dependencies are built.
