file(REMOVE_RECURSE
  "CMakeFiles/sarn_cli.dir/sarn_cli.cc.o"
  "CMakeFiles/sarn_cli.dir/sarn_cli.cc.o.d"
  "sarn"
  "sarn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sarn_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
