# Empty compiler generated dependencies file for sarn_cli.
# This may be replaced when dependencies are built.
