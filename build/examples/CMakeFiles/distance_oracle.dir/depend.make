# Empty dependencies file for distance_oracle.
# This may be replaced when dependencies are built.
