file(REMOVE_RECURSE
  "CMakeFiles/trajectory_search.dir/trajectory_search.cpp.o"
  "CMakeFiles/trajectory_search.dir/trajectory_search.cpp.o.d"
  "trajectory_search"
  "trajectory_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trajectory_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
