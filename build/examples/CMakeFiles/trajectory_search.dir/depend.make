# Empty dependencies file for trajectory_search.
# This may be replaced when dependencies are built.
