# Empty dependencies file for embedding_atlas.
# This may be replaced when dependencies are built.
