file(REMOVE_RECURSE
  "CMakeFiles/embedding_atlas.dir/embedding_atlas.cpp.o"
  "CMakeFiles/embedding_atlas.dir/embedding_atlas.cpp.o.d"
  "embedding_atlas"
  "embedding_atlas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedding_atlas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
