file(REMOVE_RECURSE
  "libsarn_traj.a"
)
