file(REMOVE_RECURSE
  "CMakeFiles/sarn_traj.dir/frechet.cc.o"
  "CMakeFiles/sarn_traj.dir/frechet.cc.o.d"
  "CMakeFiles/sarn_traj.dir/io.cc.o"
  "CMakeFiles/sarn_traj.dir/io.cc.o.d"
  "CMakeFiles/sarn_traj.dir/map_matching.cc.o"
  "CMakeFiles/sarn_traj.dir/map_matching.cc.o.d"
  "CMakeFiles/sarn_traj.dir/similarity_metrics.cc.o"
  "CMakeFiles/sarn_traj.dir/similarity_metrics.cc.o.d"
  "CMakeFiles/sarn_traj.dir/trajectory.cc.o"
  "CMakeFiles/sarn_traj.dir/trajectory.cc.o.d"
  "CMakeFiles/sarn_traj.dir/trajectory_generator.cc.o"
  "CMakeFiles/sarn_traj.dir/trajectory_generator.cc.o.d"
  "libsarn_traj.a"
  "libsarn_traj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sarn_traj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
