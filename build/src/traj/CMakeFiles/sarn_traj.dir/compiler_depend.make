# Empty compiler generated dependencies file for sarn_traj.
# This may be replaced when dependencies are built.
