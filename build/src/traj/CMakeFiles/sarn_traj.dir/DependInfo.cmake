
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traj/frechet.cc" "src/traj/CMakeFiles/sarn_traj.dir/frechet.cc.o" "gcc" "src/traj/CMakeFiles/sarn_traj.dir/frechet.cc.o.d"
  "/root/repo/src/traj/io.cc" "src/traj/CMakeFiles/sarn_traj.dir/io.cc.o" "gcc" "src/traj/CMakeFiles/sarn_traj.dir/io.cc.o.d"
  "/root/repo/src/traj/map_matching.cc" "src/traj/CMakeFiles/sarn_traj.dir/map_matching.cc.o" "gcc" "src/traj/CMakeFiles/sarn_traj.dir/map_matching.cc.o.d"
  "/root/repo/src/traj/similarity_metrics.cc" "src/traj/CMakeFiles/sarn_traj.dir/similarity_metrics.cc.o" "gcc" "src/traj/CMakeFiles/sarn_traj.dir/similarity_metrics.cc.o.d"
  "/root/repo/src/traj/trajectory.cc" "src/traj/CMakeFiles/sarn_traj.dir/trajectory.cc.o" "gcc" "src/traj/CMakeFiles/sarn_traj.dir/trajectory.cc.o.d"
  "/root/repo/src/traj/trajectory_generator.cc" "src/traj/CMakeFiles/sarn_traj.dir/trajectory_generator.cc.o" "gcc" "src/traj/CMakeFiles/sarn_traj.dir/trajectory_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sarn_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/sarn_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sarn_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/roadnet/CMakeFiles/sarn_roadnet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
