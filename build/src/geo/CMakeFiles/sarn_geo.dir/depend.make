# Empty dependencies file for sarn_geo.
# This may be replaced when dependencies are built.
