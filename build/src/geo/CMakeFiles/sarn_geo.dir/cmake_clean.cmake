file(REMOVE_RECURSE
  "CMakeFiles/sarn_geo.dir/grid.cc.o"
  "CMakeFiles/sarn_geo.dir/grid.cc.o.d"
  "CMakeFiles/sarn_geo.dir/point.cc.o"
  "CMakeFiles/sarn_geo.dir/point.cc.o.d"
  "CMakeFiles/sarn_geo.dir/spatial_index.cc.o"
  "CMakeFiles/sarn_geo.dir/spatial_index.cc.o.d"
  "libsarn_geo.a"
  "libsarn_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sarn_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
