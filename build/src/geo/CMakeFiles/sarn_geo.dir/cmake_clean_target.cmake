file(REMOVE_RECURSE
  "libsarn_geo.a"
)
