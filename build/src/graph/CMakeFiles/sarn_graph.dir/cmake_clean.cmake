file(REMOVE_RECURSE
  "CMakeFiles/sarn_graph.dir/csr_graph.cc.o"
  "CMakeFiles/sarn_graph.dir/csr_graph.cc.o.d"
  "CMakeFiles/sarn_graph.dir/dijkstra.cc.o"
  "CMakeFiles/sarn_graph.dir/dijkstra.cc.o.d"
  "CMakeFiles/sarn_graph.dir/random_walk.cc.o"
  "CMakeFiles/sarn_graph.dir/random_walk.cc.o.d"
  "libsarn_graph.a"
  "libsarn_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sarn_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
