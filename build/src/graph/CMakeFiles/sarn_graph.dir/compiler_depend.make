# Empty compiler generated dependencies file for sarn_graph.
# This may be replaced when dependencies are built.
