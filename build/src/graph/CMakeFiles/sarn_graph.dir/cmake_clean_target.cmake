file(REMOVE_RECURSE
  "libsarn_graph.a"
)
