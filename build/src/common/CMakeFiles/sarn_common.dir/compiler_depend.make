# Empty compiler generated dependencies file for sarn_common.
# This may be replaced when dependencies are built.
