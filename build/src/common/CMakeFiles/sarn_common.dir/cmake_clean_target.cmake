file(REMOVE_RECURSE
  "libsarn_common.a"
)
