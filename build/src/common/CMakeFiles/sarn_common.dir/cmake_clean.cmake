file(REMOVE_RECURSE
  "CMakeFiles/sarn_common.dir/csv.cc.o"
  "CMakeFiles/sarn_common.dir/csv.cc.o.d"
  "CMakeFiles/sarn_common.dir/logging.cc.o"
  "CMakeFiles/sarn_common.dir/logging.cc.o.d"
  "CMakeFiles/sarn_common.dir/parallel.cc.o"
  "CMakeFiles/sarn_common.dir/parallel.cc.o.d"
  "CMakeFiles/sarn_common.dir/rng.cc.o"
  "CMakeFiles/sarn_common.dir/rng.cc.o.d"
  "CMakeFiles/sarn_common.dir/string_util.cc.o"
  "CMakeFiles/sarn_common.dir/string_util.cc.o.d"
  "libsarn_common.a"
  "libsarn_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sarn_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
