# Empty dependencies file for sarn_tasks.
# This may be replaced when dependencies are built.
