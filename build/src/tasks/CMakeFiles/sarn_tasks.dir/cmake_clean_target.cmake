file(REMOVE_RECURSE
  "libsarn_tasks.a"
)
