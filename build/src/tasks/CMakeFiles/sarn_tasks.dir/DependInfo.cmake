
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tasks/embedding_index.cc" "src/tasks/CMakeFiles/sarn_tasks.dir/embedding_index.cc.o" "gcc" "src/tasks/CMakeFiles/sarn_tasks.dir/embedding_index.cc.o.d"
  "/root/repo/src/tasks/metrics.cc" "src/tasks/CMakeFiles/sarn_tasks.dir/metrics.cc.o" "gcc" "src/tasks/CMakeFiles/sarn_tasks.dir/metrics.cc.o.d"
  "/root/repo/src/tasks/representation_quality.cc" "src/tasks/CMakeFiles/sarn_tasks.dir/representation_quality.cc.o" "gcc" "src/tasks/CMakeFiles/sarn_tasks.dir/representation_quality.cc.o.d"
  "/root/repo/src/tasks/road_property_task.cc" "src/tasks/CMakeFiles/sarn_tasks.dir/road_property_task.cc.o" "gcc" "src/tasks/CMakeFiles/sarn_tasks.dir/road_property_task.cc.o.d"
  "/root/repo/src/tasks/spd_task.cc" "src/tasks/CMakeFiles/sarn_tasks.dir/spd_task.cc.o" "gcc" "src/tasks/CMakeFiles/sarn_tasks.dir/spd_task.cc.o.d"
  "/root/repo/src/tasks/splits.cc" "src/tasks/CMakeFiles/sarn_tasks.dir/splits.cc.o" "gcc" "src/tasks/CMakeFiles/sarn_tasks.dir/splits.cc.o.d"
  "/root/repo/src/tasks/traj_similarity_task.cc" "src/tasks/CMakeFiles/sarn_tasks.dir/traj_similarity_task.cc.o" "gcc" "src/tasks/CMakeFiles/sarn_tasks.dir/traj_similarity_task.cc.o.d"
  "/root/repo/src/tasks/travel_time_task.cc" "src/tasks/CMakeFiles/sarn_tasks.dir/travel_time_task.cc.o" "gcc" "src/tasks/CMakeFiles/sarn_tasks.dir/travel_time_task.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/sarn_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sarn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/traj/CMakeFiles/sarn_traj.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/sarn_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/sarn_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/roadnet/CMakeFiles/sarn_roadnet.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/sarn_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sarn_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sarn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
