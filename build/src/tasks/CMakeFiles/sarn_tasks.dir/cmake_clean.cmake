file(REMOVE_RECURSE
  "CMakeFiles/sarn_tasks.dir/embedding_index.cc.o"
  "CMakeFiles/sarn_tasks.dir/embedding_index.cc.o.d"
  "CMakeFiles/sarn_tasks.dir/metrics.cc.o"
  "CMakeFiles/sarn_tasks.dir/metrics.cc.o.d"
  "CMakeFiles/sarn_tasks.dir/representation_quality.cc.o"
  "CMakeFiles/sarn_tasks.dir/representation_quality.cc.o.d"
  "CMakeFiles/sarn_tasks.dir/road_property_task.cc.o"
  "CMakeFiles/sarn_tasks.dir/road_property_task.cc.o.d"
  "CMakeFiles/sarn_tasks.dir/spd_task.cc.o"
  "CMakeFiles/sarn_tasks.dir/spd_task.cc.o.d"
  "CMakeFiles/sarn_tasks.dir/splits.cc.o"
  "CMakeFiles/sarn_tasks.dir/splits.cc.o.d"
  "CMakeFiles/sarn_tasks.dir/traj_similarity_task.cc.o"
  "CMakeFiles/sarn_tasks.dir/traj_similarity_task.cc.o.d"
  "CMakeFiles/sarn_tasks.dir/travel_time_task.cc.o"
  "CMakeFiles/sarn_tasks.dir/travel_time_task.cc.o.d"
  "libsarn_tasks.a"
  "libsarn_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sarn_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
