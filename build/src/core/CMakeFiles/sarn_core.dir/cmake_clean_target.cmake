file(REMOVE_RECURSE
  "libsarn_core.a"
)
