file(REMOVE_RECURSE
  "CMakeFiles/sarn_core.dir/augmentation.cc.o"
  "CMakeFiles/sarn_core.dir/augmentation.cc.o.d"
  "CMakeFiles/sarn_core.dir/negative_queue.cc.o"
  "CMakeFiles/sarn_core.dir/negative_queue.cc.o.d"
  "CMakeFiles/sarn_core.dir/sarn_model.cc.o"
  "CMakeFiles/sarn_core.dir/sarn_model.cc.o.d"
  "CMakeFiles/sarn_core.dir/spatial_similarity.cc.o"
  "CMakeFiles/sarn_core.dir/spatial_similarity.cc.o.d"
  "libsarn_core.a"
  "libsarn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sarn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
