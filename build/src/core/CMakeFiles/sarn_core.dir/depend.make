# Empty dependencies file for sarn_core.
# This may be replaced when dependencies are built.
