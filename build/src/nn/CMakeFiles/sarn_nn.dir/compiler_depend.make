# Empty compiler generated dependencies file for sarn_nn.
# This may be replaced when dependencies are built.
