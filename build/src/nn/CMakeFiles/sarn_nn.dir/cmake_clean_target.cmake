file(REMOVE_RECURSE
  "libsarn_nn.a"
)
