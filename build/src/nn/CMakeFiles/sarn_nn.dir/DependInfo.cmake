
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/embedding.cc" "src/nn/CMakeFiles/sarn_nn.dir/embedding.cc.o" "gcc" "src/nn/CMakeFiles/sarn_nn.dir/embedding.cc.o.d"
  "/root/repo/src/nn/gat.cc" "src/nn/CMakeFiles/sarn_nn.dir/gat.cc.o" "gcc" "src/nn/CMakeFiles/sarn_nn.dir/gat.cc.o.d"
  "/root/repo/src/nn/gru.cc" "src/nn/CMakeFiles/sarn_nn.dir/gru.cc.o" "gcc" "src/nn/CMakeFiles/sarn_nn.dir/gru.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/nn/CMakeFiles/sarn_nn.dir/linear.cc.o" "gcc" "src/nn/CMakeFiles/sarn_nn.dir/linear.cc.o.d"
  "/root/repo/src/nn/losses.cc" "src/nn/CMakeFiles/sarn_nn.dir/losses.cc.o" "gcc" "src/nn/CMakeFiles/sarn_nn.dir/losses.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/nn/CMakeFiles/sarn_nn.dir/module.cc.o" "gcc" "src/nn/CMakeFiles/sarn_nn.dir/module.cc.o.d"
  "/root/repo/src/nn/projection_head.cc" "src/nn/CMakeFiles/sarn_nn.dir/projection_head.cc.o" "gcc" "src/nn/CMakeFiles/sarn_nn.dir/projection_head.cc.o.d"
  "/root/repo/src/nn/sequence_util.cc" "src/nn/CMakeFiles/sarn_nn.dir/sequence_util.cc.o" "gcc" "src/nn/CMakeFiles/sarn_nn.dir/sequence_util.cc.o.d"
  "/root/repo/src/nn/serialization.cc" "src/nn/CMakeFiles/sarn_nn.dir/serialization.cc.o" "gcc" "src/nn/CMakeFiles/sarn_nn.dir/serialization.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/sarn_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/sarn_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sarn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
