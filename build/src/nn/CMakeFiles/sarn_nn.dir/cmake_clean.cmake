file(REMOVE_RECURSE
  "CMakeFiles/sarn_nn.dir/embedding.cc.o"
  "CMakeFiles/sarn_nn.dir/embedding.cc.o.d"
  "CMakeFiles/sarn_nn.dir/gat.cc.o"
  "CMakeFiles/sarn_nn.dir/gat.cc.o.d"
  "CMakeFiles/sarn_nn.dir/gru.cc.o"
  "CMakeFiles/sarn_nn.dir/gru.cc.o.d"
  "CMakeFiles/sarn_nn.dir/linear.cc.o"
  "CMakeFiles/sarn_nn.dir/linear.cc.o.d"
  "CMakeFiles/sarn_nn.dir/losses.cc.o"
  "CMakeFiles/sarn_nn.dir/losses.cc.o.d"
  "CMakeFiles/sarn_nn.dir/module.cc.o"
  "CMakeFiles/sarn_nn.dir/module.cc.o.d"
  "CMakeFiles/sarn_nn.dir/projection_head.cc.o"
  "CMakeFiles/sarn_nn.dir/projection_head.cc.o.d"
  "CMakeFiles/sarn_nn.dir/sequence_util.cc.o"
  "CMakeFiles/sarn_nn.dir/sequence_util.cc.o.d"
  "CMakeFiles/sarn_nn.dir/serialization.cc.o"
  "CMakeFiles/sarn_nn.dir/serialization.cc.o.d"
  "libsarn_nn.a"
  "libsarn_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sarn_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
