file(REMOVE_RECURSE
  "CMakeFiles/sarn_tensor.dir/ops.cc.o"
  "CMakeFiles/sarn_tensor.dir/ops.cc.o.d"
  "CMakeFiles/sarn_tensor.dir/optimizer.cc.o"
  "CMakeFiles/sarn_tensor.dir/optimizer.cc.o.d"
  "CMakeFiles/sarn_tensor.dir/pca.cc.o"
  "CMakeFiles/sarn_tensor.dir/pca.cc.o.d"
  "CMakeFiles/sarn_tensor.dir/tensor.cc.o"
  "CMakeFiles/sarn_tensor.dir/tensor.cc.o.d"
  "libsarn_tensor.a"
  "libsarn_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sarn_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
