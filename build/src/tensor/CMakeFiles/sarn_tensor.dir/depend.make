# Empty dependencies file for sarn_tensor.
# This may be replaced when dependencies are built.
