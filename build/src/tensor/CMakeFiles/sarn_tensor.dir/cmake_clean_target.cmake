file(REMOVE_RECURSE
  "libsarn_tensor.a"
)
