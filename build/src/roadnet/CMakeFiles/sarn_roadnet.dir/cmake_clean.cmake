file(REMOVE_RECURSE
  "CMakeFiles/sarn_roadnet.dir/features.cc.o"
  "CMakeFiles/sarn_roadnet.dir/features.cc.o.d"
  "CMakeFiles/sarn_roadnet.dir/geojson.cc.o"
  "CMakeFiles/sarn_roadnet.dir/geojson.cc.o.d"
  "CMakeFiles/sarn_roadnet.dir/io.cc.o"
  "CMakeFiles/sarn_roadnet.dir/io.cc.o.d"
  "CMakeFiles/sarn_roadnet.dir/osm_import.cc.o"
  "CMakeFiles/sarn_roadnet.dir/osm_import.cc.o.d"
  "CMakeFiles/sarn_roadnet.dir/road_network.cc.o"
  "CMakeFiles/sarn_roadnet.dir/road_network.cc.o.d"
  "CMakeFiles/sarn_roadnet.dir/road_types.cc.o"
  "CMakeFiles/sarn_roadnet.dir/road_types.cc.o.d"
  "CMakeFiles/sarn_roadnet.dir/synthetic_city.cc.o"
  "CMakeFiles/sarn_roadnet.dir/synthetic_city.cc.o.d"
  "libsarn_roadnet.a"
  "libsarn_roadnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sarn_roadnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
