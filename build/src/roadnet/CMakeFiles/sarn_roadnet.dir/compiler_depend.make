# Empty compiler generated dependencies file for sarn_roadnet.
# This may be replaced when dependencies are built.
