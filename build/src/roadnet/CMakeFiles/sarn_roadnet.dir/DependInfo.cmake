
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/roadnet/features.cc" "src/roadnet/CMakeFiles/sarn_roadnet.dir/features.cc.o" "gcc" "src/roadnet/CMakeFiles/sarn_roadnet.dir/features.cc.o.d"
  "/root/repo/src/roadnet/geojson.cc" "src/roadnet/CMakeFiles/sarn_roadnet.dir/geojson.cc.o" "gcc" "src/roadnet/CMakeFiles/sarn_roadnet.dir/geojson.cc.o.d"
  "/root/repo/src/roadnet/io.cc" "src/roadnet/CMakeFiles/sarn_roadnet.dir/io.cc.o" "gcc" "src/roadnet/CMakeFiles/sarn_roadnet.dir/io.cc.o.d"
  "/root/repo/src/roadnet/osm_import.cc" "src/roadnet/CMakeFiles/sarn_roadnet.dir/osm_import.cc.o" "gcc" "src/roadnet/CMakeFiles/sarn_roadnet.dir/osm_import.cc.o.d"
  "/root/repo/src/roadnet/road_network.cc" "src/roadnet/CMakeFiles/sarn_roadnet.dir/road_network.cc.o" "gcc" "src/roadnet/CMakeFiles/sarn_roadnet.dir/road_network.cc.o.d"
  "/root/repo/src/roadnet/road_types.cc" "src/roadnet/CMakeFiles/sarn_roadnet.dir/road_types.cc.o" "gcc" "src/roadnet/CMakeFiles/sarn_roadnet.dir/road_types.cc.o.d"
  "/root/repo/src/roadnet/synthetic_city.cc" "src/roadnet/CMakeFiles/sarn_roadnet.dir/synthetic_city.cc.o" "gcc" "src/roadnet/CMakeFiles/sarn_roadnet.dir/synthetic_city.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sarn_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/sarn_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sarn_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
