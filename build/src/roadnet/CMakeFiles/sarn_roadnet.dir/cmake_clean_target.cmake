file(REMOVE_RECURSE
  "libsarn_roadnet.a"
)
