file(REMOVE_RECURSE
  "CMakeFiles/sarn_baselines.dir/gca.cc.o"
  "CMakeFiles/sarn_baselines.dir/gca.cc.o.d"
  "CMakeFiles/sarn_baselines.dir/graphcl.cc.o"
  "CMakeFiles/sarn_baselines.dir/graphcl.cc.o.d"
  "CMakeFiles/sarn_baselines.dir/hrnr_lite.cc.o"
  "CMakeFiles/sarn_baselines.dir/hrnr_lite.cc.o.d"
  "CMakeFiles/sarn_baselines.dir/neutraj_lite.cc.o"
  "CMakeFiles/sarn_baselines.dir/neutraj_lite.cc.o.d"
  "CMakeFiles/sarn_baselines.dir/node2vec.cc.o"
  "CMakeFiles/sarn_baselines.dir/node2vec.cc.o.d"
  "CMakeFiles/sarn_baselines.dir/rne_lite.cc.o"
  "CMakeFiles/sarn_baselines.dir/rne_lite.cc.o.d"
  "CMakeFiles/sarn_baselines.dir/srn2vec.cc.o"
  "CMakeFiles/sarn_baselines.dir/srn2vec.cc.o.d"
  "libsarn_baselines.a"
  "libsarn_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sarn_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
