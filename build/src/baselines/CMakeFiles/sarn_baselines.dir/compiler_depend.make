# Empty compiler generated dependencies file for sarn_baselines.
# This may be replaced when dependencies are built.
