file(REMOVE_RECURSE
  "libsarn_baselines.a"
)
