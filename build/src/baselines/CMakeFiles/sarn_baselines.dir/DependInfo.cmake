
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/gca.cc" "src/baselines/CMakeFiles/sarn_baselines.dir/gca.cc.o" "gcc" "src/baselines/CMakeFiles/sarn_baselines.dir/gca.cc.o.d"
  "/root/repo/src/baselines/graphcl.cc" "src/baselines/CMakeFiles/sarn_baselines.dir/graphcl.cc.o" "gcc" "src/baselines/CMakeFiles/sarn_baselines.dir/graphcl.cc.o.d"
  "/root/repo/src/baselines/hrnr_lite.cc" "src/baselines/CMakeFiles/sarn_baselines.dir/hrnr_lite.cc.o" "gcc" "src/baselines/CMakeFiles/sarn_baselines.dir/hrnr_lite.cc.o.d"
  "/root/repo/src/baselines/neutraj_lite.cc" "src/baselines/CMakeFiles/sarn_baselines.dir/neutraj_lite.cc.o" "gcc" "src/baselines/CMakeFiles/sarn_baselines.dir/neutraj_lite.cc.o.d"
  "/root/repo/src/baselines/node2vec.cc" "src/baselines/CMakeFiles/sarn_baselines.dir/node2vec.cc.o" "gcc" "src/baselines/CMakeFiles/sarn_baselines.dir/node2vec.cc.o.d"
  "/root/repo/src/baselines/rne_lite.cc" "src/baselines/CMakeFiles/sarn_baselines.dir/rne_lite.cc.o" "gcc" "src/baselines/CMakeFiles/sarn_baselines.dir/rne_lite.cc.o.d"
  "/root/repo/src/baselines/srn2vec.cc" "src/baselines/CMakeFiles/sarn_baselines.dir/srn2vec.cc.o" "gcc" "src/baselines/CMakeFiles/sarn_baselines.dir/srn2vec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sarn_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/sarn_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sarn_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/sarn_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/roadnet/CMakeFiles/sarn_roadnet.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/sarn_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
