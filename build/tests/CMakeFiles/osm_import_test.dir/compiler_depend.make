# Empty compiler generated dependencies file for osm_import_test.
# This may be replaced when dependencies are built.
