file(REMOVE_RECURSE
  "CMakeFiles/osm_import_test.dir/osm_import_test.cc.o"
  "CMakeFiles/osm_import_test.dir/osm_import_test.cc.o.d"
  "osm_import_test"
  "osm_import_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osm_import_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
