# Empty dependencies file for sarn_model_test.
# This may be replaced when dependencies are built.
