file(REMOVE_RECURSE
  "CMakeFiles/sarn_model_test.dir/sarn_model_test.cc.o"
  "CMakeFiles/sarn_model_test.dir/sarn_model_test.cc.o.d"
  "sarn_model_test"
  "sarn_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sarn_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
