file(REMOVE_RECURSE
  "CMakeFiles/representation_quality_test.dir/representation_quality_test.cc.o"
  "CMakeFiles/representation_quality_test.dir/representation_quality_test.cc.o.d"
  "representation_quality_test"
  "representation_quality_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/representation_quality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
