# Empty dependencies file for representation_quality_test.
# This may be replaced when dependencies are built.
