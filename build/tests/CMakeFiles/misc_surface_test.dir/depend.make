# Empty dependencies file for misc_surface_test.
# This may be replaced when dependencies are built.
