file(REMOVE_RECURSE
  "CMakeFiles/misc_surface_test.dir/misc_surface_test.cc.o"
  "CMakeFiles/misc_surface_test.dir/misc_surface_test.cc.o.d"
  "misc_surface_test"
  "misc_surface_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/misc_surface_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
