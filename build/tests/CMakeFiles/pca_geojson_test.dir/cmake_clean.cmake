file(REMOVE_RECURSE
  "CMakeFiles/pca_geojson_test.dir/pca_geojson_test.cc.o"
  "CMakeFiles/pca_geojson_test.dir/pca_geojson_test.cc.o.d"
  "pca_geojson_test"
  "pca_geojson_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pca_geojson_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
