# Empty dependencies file for pca_geojson_test.
# This may be replaced when dependencies are built.
