file(REMOVE_RECURSE
  "CMakeFiles/similarity_metrics_test.dir/similarity_metrics_test.cc.o"
  "CMakeFiles/similarity_metrics_test.dir/similarity_metrics_test.cc.o.d"
  "similarity_metrics_test"
  "similarity_metrics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/similarity_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
