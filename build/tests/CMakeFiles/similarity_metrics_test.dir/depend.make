# Empty dependencies file for similarity_metrics_test.
# This may be replaced when dependencies are built.
