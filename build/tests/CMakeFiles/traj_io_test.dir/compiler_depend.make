# Empty compiler generated dependencies file for traj_io_test.
# This may be replaced when dependencies are built.
