file(REMOVE_RECURSE
  "CMakeFiles/traj_io_test.dir/traj_io_test.cc.o"
  "CMakeFiles/traj_io_test.dir/traj_io_test.cc.o.d"
  "traj_io_test"
  "traj_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traj_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
