file(REMOVE_RECURSE
  "CMakeFiles/negative_queue_test.dir/negative_queue_test.cc.o"
  "CMakeFiles/negative_queue_test.dir/negative_queue_test.cc.o.d"
  "negative_queue_test"
  "negative_queue_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/negative_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
