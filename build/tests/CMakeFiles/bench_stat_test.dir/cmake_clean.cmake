file(REMOVE_RECURSE
  "CMakeFiles/bench_stat_test.dir/bench_stat_test.cc.o"
  "CMakeFiles/bench_stat_test.dir/bench_stat_test.cc.o.d"
  "bench_stat_test"
  "bench_stat_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
