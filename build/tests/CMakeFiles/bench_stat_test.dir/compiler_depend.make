# Empty compiler generated dependencies file for bench_stat_test.
# This may be replaced when dependencies are built.
