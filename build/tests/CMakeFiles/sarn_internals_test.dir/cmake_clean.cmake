file(REMOVE_RECURSE
  "CMakeFiles/sarn_internals_test.dir/sarn_internals_test.cc.o"
  "CMakeFiles/sarn_internals_test.dir/sarn_internals_test.cc.o.d"
  "sarn_internals_test"
  "sarn_internals_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sarn_internals_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
