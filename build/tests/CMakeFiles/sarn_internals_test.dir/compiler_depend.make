# Empty compiler generated dependencies file for sarn_internals_test.
# This may be replaced when dependencies are built.
