file(REMOVE_RECURSE
  "CMakeFiles/roadnet_property_test.dir/roadnet_property_test.cc.o"
  "CMakeFiles/roadnet_property_test.dir/roadnet_property_test.cc.o.d"
  "roadnet_property_test"
  "roadnet_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roadnet_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
