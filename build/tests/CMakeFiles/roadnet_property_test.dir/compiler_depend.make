# Empty compiler generated dependencies file for roadnet_property_test.
# This may be replaced when dependencies are built.
