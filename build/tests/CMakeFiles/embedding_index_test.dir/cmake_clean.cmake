file(REMOVE_RECURSE
  "CMakeFiles/embedding_index_test.dir/embedding_index_test.cc.o"
  "CMakeFiles/embedding_index_test.dir/embedding_index_test.cc.o.d"
  "embedding_index_test"
  "embedding_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedding_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
