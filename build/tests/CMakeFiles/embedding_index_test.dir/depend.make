# Empty dependencies file for embedding_index_test.
# This may be replaced when dependencies are built.
