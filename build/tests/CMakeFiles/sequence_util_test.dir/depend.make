# Empty dependencies file for sequence_util_test.
# This may be replaced when dependencies are built.
