file(REMOVE_RECURSE
  "CMakeFiles/sequence_util_test.dir/sequence_util_test.cc.o"
  "CMakeFiles/sequence_util_test.dir/sequence_util_test.cc.o.d"
  "sequence_util_test"
  "sequence_util_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sequence_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
