# Empty dependencies file for nn_gat_test.
# This may be replaced when dependencies are built.
