file(REMOVE_RECURSE
  "CMakeFiles/nn_gat_test.dir/nn_gat_test.cc.o"
  "CMakeFiles/nn_gat_test.dir/nn_gat_test.cc.o.d"
  "nn_gat_test"
  "nn_gat_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_gat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
