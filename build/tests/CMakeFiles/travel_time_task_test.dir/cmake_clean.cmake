file(REMOVE_RECURSE
  "CMakeFiles/travel_time_task_test.dir/travel_time_task_test.cc.o"
  "CMakeFiles/travel_time_task_test.dir/travel_time_task_test.cc.o.d"
  "travel_time_task_test"
  "travel_time_task_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/travel_time_task_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
