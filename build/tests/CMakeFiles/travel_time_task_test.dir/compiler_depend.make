# Empty compiler generated dependencies file for travel_time_task_test.
# This may be replaced when dependencies are built.
