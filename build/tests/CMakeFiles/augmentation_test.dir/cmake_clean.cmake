file(REMOVE_RECURSE
  "CMakeFiles/augmentation_test.dir/augmentation_test.cc.o"
  "CMakeFiles/augmentation_test.dir/augmentation_test.cc.o.d"
  "augmentation_test"
  "augmentation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/augmentation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
