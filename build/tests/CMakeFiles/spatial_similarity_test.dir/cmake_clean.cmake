file(REMOVE_RECURSE
  "CMakeFiles/spatial_similarity_test.dir/spatial_similarity_test.cc.o"
  "CMakeFiles/spatial_similarity_test.dir/spatial_similarity_test.cc.o.d"
  "spatial_similarity_test"
  "spatial_similarity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatial_similarity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
