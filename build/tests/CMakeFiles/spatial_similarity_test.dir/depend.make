# Empty dependencies file for spatial_similarity_test.
# This may be replaced when dependencies are built.
